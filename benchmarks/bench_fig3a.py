"""Figure 3a — Deletion across queries (QOCO / QOCO− / Random).

Regenerates the paper's panel: for Q1, Q2, Q3 with 5 wrong answers at
the default noise profile, the stacked bars (results to verify /
questions asked / questions avoided) per deletion strategy.

Expected shape (paper Section 7.2): QOCO <= QOCO− <= Random, with the
Random baseline avoiding nothing and the QOCO-vs-QOCO− gap appearing on
the larger queries.
"""

from conftest import run_figure

from repro.experiments.figures import fig3a

QUESTIONS = 3


def test_fig3a_deletion_multiple_queries(benchmark):
    result = run_figure(benchmark, fig3a)
    for group in ("Q1", "Q2", "Q3"):
        rows = result.by_algorithm(group)
        assert rows["QOCO"][QUESTIONS] <= rows["QOCO-"][QUESTIONS]
        assert rows["QOCO"][QUESTIONS] < rows["Random"][QUESTIONS]
