"""Figure 3e — Insertion on Q3 with 2 / 5 / 10 missing answers.

Expected shape: cost grows with the number of missing answers for every
split, the Provenance split stays best or tied.
"""

from conftest import run_figure

from repro.experiments.figures import fig3e

QUESTIONS = 3


def test_fig3e_insertion_varying_missing(benchmark):
    result = run_figure(benchmark, fig3e)
    previous = 0
    for n in (2, 5, 10):
        rows = result.by_algorithm(f"missing={n}")
        prov = rows["Provenance"][QUESTIONS]
        assert prov <= rows["Random"][QUESTIONS]
        assert prov >= previous
        previous = prov
