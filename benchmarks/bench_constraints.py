"""Constraint-repair benchmark: oracle-guided vs exhaustive questioning.

The contract (ISSUE 10): on a seeded noisy CSV workload derived from the
worldcup generator, :class:`~repro.constraints.repairer.OracleRepairer`
must reach a consistent instance with **strictly fewer** oracle
questions than the exhaustive ask-every-involved-fact baseline, and on
the duplicate-row workload the repaired database must be byte-identical
(state digest) to the clean load.

The workload goes through the real ingestion path — the clean games
table is written to CSV, pushed through seeded
:mod:`repro.ingest.noise` pipelines with :func:`make_noisy_csv`, and
both sides are re-loaded with :func:`load_csv` — so the bench also pins
CSV round-trip determinism end to end.

Run under pytest (``pytest benchmarks/bench_constraints.py``) or as a
script (``python benchmarks/bench_constraints.py [out.json]``), which
writes ``BENCH_constraints.json``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from bench_common import metric, write_payload
from repro.constraints import find_violations, repair, satisfies
from repro.datasets.worldcup import worldcup_database
from repro.ingest import (
    DuplicateRows,
    MixedFormats,
    NoisePipeline,
    TypePollution,
    load_csv,
    make_noisy_csv,
    write_csv,
)
from repro.oracle.perfect import PerfectOracle

SEED = 23
ROWS = 150
HEADER = ["date", "winner", "runner_up", "stage", "result"]
FDS = ["games: date -> winner, runner_up, stage, result"]

#: FD-breaking noise only: perturbed duplicates keep every true row, so
#: a perfect repair restores the clean instance bit-for-bit.
DUP_NOISE = NoisePipeline(
    (DuplicateRows(rate=0.15, perturb_columns=(1, 4)),), seed=SEED
)

#: The kitchen sink: junk cells and reformatted values ride along with
#: the duplicates.  Those rows are damaged, not duplicated, so the gate
#: here is consistency + question counts, not full restoration.
MIXED_NOISE = NoisePipeline(
    (
        TypePollution(rate=0.02),
        MixedFormats(rate=0.05),
        DuplicateRows(rate=0.10, perturb_columns=(1, 4)),
    ),
    seed=SEED,
)


def games_rows() -> list[list[str]]:
    """The first ROWS worldcup finals/games, deterministic order."""
    db = worldcup_database()
    facts = sorted(db.facts("games"), key=lambda f: f.values)
    return [[str(v) for v in f.values] for f in facts[:ROWS]]


def build_workload(workdir: Path, name: str, noise: NoisePipeline):
    """clean CSV → seeded noisy CSV → (truth load, dirty load)."""
    clean_csv = workdir / "games.csv"
    dirty_csv = workdir / f"games_{name}.csv"
    write_csv(clean_csv, HEADER, games_rows())
    make_noisy_csv(clean_csv, dirty_csv, noise)
    truth = load_csv(clean_csv, relation="games")
    dirty = load_csv(dirty_csv, relation="games")
    return truth, dirty


def run_workload(workdir: Path, name: str, noise: NoisePipeline) -> dict:
    truth, dirty_for_oracle = build_workload(workdir, name, noise)
    _, dirty_for_exhaustive = build_workload(workdir, name, noise)
    assert dirty_for_oracle == dirty_for_exhaustive  # seeded determinism

    violations = len(find_violations(dirty_for_oracle, FDS))
    guided = repair(dirty_for_oracle, FDS, PerfectOracle(truth), strategy="oracle")
    exhaustive = repair(
        dirty_for_exhaustive, FDS, PerfectOracle(truth), strategy="exhaustive"
    )
    return {
        "noise": name,
        "facts_clean": len(truth),
        "facts_dirty": len(dirty_for_exhaustive) + len(guided.edits),
        "violations": violations,
        "oracle_questions": guided.questions_asked,
        "oracle_inferred": guided.inferred,
        "oracle_free_deletions": guided.free_deletions,
        "exhaustive_questions": exhaustive.questions_asked,
        "questions_saved": exhaustive.questions_asked - guided.questions_asked,
        "oracle_consistent": guided.consistent,
        "exhaustive_consistent": exhaustive.consistent,
        "same_repair": dirty_for_oracle.state_digest()
        == dirty_for_exhaustive.state_digest(),
        "restored_clean": dirty_for_oracle.state_digest() == truth.state_digest(),
        "oracle_satisfies": satisfies(dirty_for_oracle, FDS),
    }


def backend_agreement(workdir: Path) -> dict:
    """Naive and columnar detection must see the identical violations."""
    _, dirty = build_workload(workdir, "agree", DUP_NOISE)
    naive = find_violations(dirty, FDS, backend="naive")
    columnar = find_violations(dirty, FDS, backend="columnar")
    return {
        "naive": len(naive),
        "columnar": len(columnar),
        "agree": naive == columnar,
    }


def bench_report() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        dup = run_workload(workdir, "dup", DUP_NOISE)
        mixed = run_workload(workdir, "mixed", MIXED_NOISE)
        backends = backend_agreement(workdir)
    result = {
        "workload": {
            "dataset": "worldcup-games-csv",
            "rows": ROWS,
            "fds": FDS,
            "seed": SEED,
        },
        "dup": dup,
        "mixed": mixed,
        "backends": backends,
    }
    result["metrics"] = {
        # seeded counters: bit-exact across runs
        "dup_violations": metric(dup["violations"]),
        "dup_oracle_questions": metric(dup["oracle_questions"]),
        "dup_exhaustive_questions": metric(dup["exhaustive_questions"]),
        "dup_questions_saved": metric(dup["questions_saved"], "higher", 0.0),
        "dup_restored_clean": metric(int(dup["restored_clean"])),
        "mixed_violations": metric(mixed["violations"]),
        "mixed_oracle_questions": metric(mixed["oracle_questions"]),
        "mixed_questions_saved": metric(mixed["questions_saved"], "higher", 0.0),
        "mixed_oracle_consistent": metric(int(mixed["oracle_consistent"])),
        "backends_agree": metric(int(backends["agree"])),
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    for name in ("dup", "mixed"):
        row = result[name]
        if row["violations"] < 1:
            failures.append(f"{name}: the noise produced no violations to repair")
        if not row["oracle_consistent"]:
            failures.append(f"{name}: oracle-guided repair left violations")
        if not row["exhaustive_consistent"]:
            failures.append(f"{name}: exhaustive repair left violations")
        if row["questions_saved"] < 1:
            failures.append(
                f"{name}: oracle-guided repair did not strictly beat exhaustive "
                f"({row['oracle_questions']} vs {row['exhaustive_questions']})"
            )
        if not row["same_repair"]:
            failures.append(f"{name}: the two strategies repaired differently")
    if not result["dup"]["restored_clean"]:
        failures.append("dup: repair did not restore the clean instance")
    if not result["backends"]["agree"]:
        failures.append("naive and columnar detection disagree")
    return failures


def test_constraints_contract():
    """The ISSUE 10 acceptance gate, end to end."""
    result = bench_report()
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_constraints.json"
    result = bench_report()
    write_payload(out, result)
    for name in ("dup", "mixed"):
        row = result[name]
        print(
            f"{name:5s} {row['violations']:>3d} violation(s): "
            f"oracle {row['oracle_questions']:>3d} question(s) "
            f"(inferred {row['oracle_inferred']}, free {row['oracle_free_deletions']}) "
            f"vs exhaustive {row['exhaustive_questions']:>3d} "
            f"— saved {row['questions_saved']}"
        )
    failures = check(result)
    for failure in failures:
        print(f"FAIL {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
