"""Microbenchmark: incremental view maintenance vs full recomputation.

QOCO's monitor deployment keeps user views materialized while cleaning
edits the base tables; incremental maintenance must beat recomputing
``Q(D)`` per edit for that to scale.  Measured on the 5k-tuple Soccer
database with the running-example view.
"""


from repro.db.tuples import fact
from repro.query.evaluator import evaluate
from repro.views.materialized import ViewManager
from repro.workloads import EX1

NEW_GAME = fact("games", "01.01.2030", "GER", "BRA", "Final", "2:1")


def test_incremental_update(benchmark, worldcup_gt):
    db = worldcup_gt.copy()
    manager = ViewManager(db)
    view = manager.register(EX1)

    def toggle():
        manager.insert(NEW_GAME)
        manager.delete(NEW_GAME)
        return view.answers()

    answers = benchmark(toggle)
    assert answers == evaluate(EX1, db)


def test_full_recompute_baseline(benchmark, worldcup_gt):
    db = worldcup_gt.copy()

    def toggle():
        db.insert(NEW_GAME)
        first = evaluate(EX1, db)
        db.delete(NEW_GAME)
        return evaluate(EX1, db)

    answers = benchmark(toggle)
    assert answers == evaluate(EX1, worldcup_gt)
