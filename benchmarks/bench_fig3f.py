"""Figure 3f — Question-type distribution of the Mixed algorithm (Q3).

Regenerates the stacked distribution of crowd question types (verify
answers / verify tuples / fill missing) for (2,2), (5,5), (10,10)
missing+wrong answers.

Expected shape: tuple-verification and fill-missing work grows with the
number of errors.
"""

from conftest import run_figure

from repro.experiments.figures import fig3f

VERIFY_TUPLES, FILL_MISSING = 2, 3


def test_fig3f_question_type_distribution(benchmark):
    result = run_figure(benchmark, fig3f)
    tuples_col = [row[VERIFY_TUPLES] for row in result.rows]
    fill_col = [row[FILL_MISSING] for row in result.rows]
    assert tuples_col == sorted(tuples_col)
    assert fill_col == sorted(fill_col)
