"""Adaptive question planner benchmark (gated): mixed workload contract.

The contract (PR 9): on a mixed worldcup + dbgroup workload — several
query shapes, several noise rounds each — one shared
``BanditPlanner`` driving every clean must

* spend **no more than 10% more questions** than the best static split
  strategy run end-to-end on the same workload, and
* stay **strictly cheaper** (crowd cost) than the worst static strategy,

i.e. adaptivity pays its exploration bill.  Every run is seeded, so
question counts and final database digests reproduce bit-for-bit and
are gated ``exact`` through ``benchmarks/check_regression.py``.

Run under pytest (reduced rounds) or as a script, which writes
``BENCH_planner.json``::

    python benchmarks/bench_planner.py BENCH_planner.json
    python benchmarks/check_regression.py BENCH_planner.json
"""

from __future__ import annotations

import random
import sys

from bench_common import json_digest, metric, write_payload
from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.dbgroup import dbgroup_database
from repro.datasets.noise import inject_result_errors
from repro.datasets.worldcup import worldcup_database
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.plan import BanditPlanner, DEFAULT_ARMS
from repro.workloads import EX1, G1, G3, Q3

#: The static arms the adaptive planner competes against.
ARMS = DEFAULT_ARMS
#: (cell name, dataset key, query, wrong, missing) — two soccer shapes,
#: two DBGroup shapes, mixed result-error profiles.
CELLS = [
    ("worldcup/Q3", "worldcup", Q3, 1, 2),
    ("worldcup/EX1", "worldcup", EX1, 1, 1),
    ("dbgroup/G1", "dbgroup", G1, 0, 2),
    ("dbgroup/G3", "dbgroup", G3, 1, 1),
]
#: Noise rounds per cell — enough episodes for UCB1 to amortise its
#: forced exploration of each arm.
ROUNDS = 4
QUESTION_HEADROOM = 1.10


def build_datasets() -> dict:
    return {"worldcup": worldcup_database(), "dbgroup": dbgroup_database()}


def run_workload(datasets: dict, *, split=None, planner=None, rounds=ROUNDS) -> dict:
    """Clean every (cell, round) with one strategy policy; sum the bill."""
    questions = 0
    cost = 0.0
    digests = []
    converged = True
    for name, dataset, query, n_wrong, n_missing in CELLS:
        truth = datasets[dataset]
        for round_no in range(rounds):
            errors = inject_result_errors(
                truth, query, n_wrong, n_missing,
                rng=random.Random(1000 + round_no),
            )
            dirty = errors.dirty.copy()
            oracle = AccountingOracle(PerfectOracle(truth))
            config = QOCOConfig(
                split=split if split is not None else "provenance",
                planner=planner,
                seed=round_no,
            )
            report = QOCO(dirty, oracle, config).clean(query)
            converged = converged and report.converged
            questions += oracle.log.question_count
            cost += oracle.log.total_cost
            digests.append(dirty.state_digest())
    return {
        "questions": questions,
        "cost": cost,
        "converged": converged,
        "digest": json_digest(digests),
    }


def bench_report(rounds: int = ROUNDS) -> dict:
    datasets = build_datasets()
    statics = {
        arm: run_workload(datasets, split=arm, rounds=rounds) for arm in ARMS
    }
    # one shared planner across every cell and round: cross-session
    # learning is the point of the shared cost model
    planner = BanditPlanner(arms=ARMS, seed=0)
    adaptive = run_workload(datasets, planner=planner, rounds=rounds)

    best_q = min(s["questions"] for s in statics.values())
    worst_q = max(s["questions"] for s in statics.values())
    best_cost = min(s["cost"] for s in statics.values())
    worst_cost = max(s["cost"] for s in statics.values())

    result = {
        "workload": {
            "cells": [c[0] for c in CELLS],
            "rounds": rounds,
            "arms": list(ARMS),
        },
        "static": statics,
        "adaptive": adaptive,
        "bounds": {
            "best_static_questions": best_q,
            "worst_static_questions": worst_q,
            "best_static_cost": best_cost,
            "worst_static_cost": worst_cost,
        },
        "metrics": {
            # deterministic, seeded: must replay bit-for-bit
            "adaptive_questions": metric(adaptive["questions"]),
            "adaptive_cost": metric(adaptive["cost"]),
            "adaptive_digest": metric(adaptive["digest"]),
            "best_static_questions": metric(best_q),
            "worst_static_cost": metric(worst_cost),
            # the contract ratios (gated exact; recomputed by check())
            "question_overhead_vs_best": metric(
                round(adaptive["questions"] / best_q, 6) if best_q else 0.0
            ),
            "cost_saving_vs_worst": metric(
                round(worst_cost - adaptive["cost"], 6)
            ),
        },
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    adaptive = result["adaptive"]
    bounds = result["bounds"]
    if not adaptive["converged"]:
        failures.append("an adaptive clean did not converge")
    for arm, static in result["static"].items():
        if not static["converged"]:
            failures.append(f"static {arm} did not converge")
    ceiling = bounds["best_static_questions"] * QUESTION_HEADROOM
    if adaptive["questions"] > ceiling:
        failures.append(
            f"adaptive spent {adaptive['questions']} questions; the best "
            f"static needs {bounds['best_static_questions']} "
            f"(ceiling {ceiling:.1f})"
        )
    if adaptive["cost"] >= bounds["worst_static_cost"]:
        failures.append(
            f"adaptive cost {adaptive['cost']} not strictly below the "
            f"worst static ({bounds['worst_static_cost']})"
        )
    return failures


def test_planner_contract():
    """The adaptive-vs-static contract at reduced rounds (fast enough
    for a test job; the full gate runs in script mode)."""
    result = bench_report(rounds=2)
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_planner.json"
    result = bench_report()
    write_payload(out, result)
    adaptive, bounds = result["adaptive"], result["bounds"]
    print(
        f"adaptive: {adaptive['questions']} questions / "
        f"{adaptive['cost']:.1f} cost; statics span "
        f"[{bounds['best_static_questions']}, "
        f"{bounds['worst_static_questions']}] questions, "
        f"[{bounds['best_static_cost']:.1f}, "
        f"{bounds['worst_static_cost']:.1f}] cost"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
