"""Benchmarks for the §2/§9 extension cleaners (UCQ, negation, COUNT).

Not paper figures — these keep the extension paths honest at the full
Soccer scale: each benchmark cleans a planted error through the richer
view language and asserts convergence.
"""

import random


from repro.aggregates.count import AggregateQOCO, CountView
from repro.core.negation import remove_wrong_answer_with_negation
from repro.core.ucq import UCQCleaner
from repro.db.tuples import fact
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.query.evaluator import evaluate
from repro.query.parser import parse_query
from repro.query.union import parse_union

FINALISTS = parse_union(
    """
    finalists(x) :- games(d, x, y, "Final", r).
    finalists(x) :- games(d, y, x, "Final", r).
    """
)

TITLES = parse_query('titles(x, d) :- games(d, x, y, "Final", u).')

NEVER_WON = parse_query(
    'q(x) :- games(d, y, x, "Final", r), not games(e, x, z, "Final", u).'
)


def test_ucq_cleaning(benchmark, worldcup_gt):
    def run():
        dirty = worldcup_gt.copy()
        dirty.insert(fact("games", "01.01.2031", "XXX", "GER", "Final", "1:0"))
        dirty.insert(fact("games", "02.01.2031", "GER", "XXX", "Final", "2:0"))
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        UCQCleaner(dirty, oracle, seed=0).clean(FINALISTS)
        return dirty, oracle

    dirty, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    assert FINALISTS.answers(dirty) == FINALISTS.answers(worldcup_gt)
    benchmark.extra_info["questions"] = oracle.log.question_count


def test_negation_cleaning(benchmark, worldcup_gt):
    def run():
        dirty = worldcup_gt.copy()
        # ARG appears as a never-winner if its titles vanish
        for game in sorted(dirty.facts("games")):
            if game.values[1] == "ARG" and game.values[3] == "Final":
                dirty.delete(game)
        wrong = sorted(
            evaluate(NEVER_WON, dirty) - evaluate(NEVER_WON, worldcup_gt)
        )
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        for answer in wrong:
            if answer in evaluate(NEVER_WON, dirty):
                remove_wrong_answer_with_negation(
                    NEVER_WON, dirty, answer, oracle, random.Random(0)
                )
        return dirty, oracle

    dirty, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    assert evaluate(NEVER_WON, dirty) == evaluate(NEVER_WON, worldcup_gt)
    benchmark.extra_info["questions"] = oracle.log.question_count


def test_aggregate_cleaning(benchmark, worldcup_gt):
    view = CountView(TITLES, group_arity=1)

    def run():
        dirty = worldcup_gt.copy()
        dirty.insert(fact("games", "03.01.2031", "ESP", "NED", "Final", "1:0"))
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        AggregateQOCO(dirty, oracle, seed=0).clean_group(view, ("ESP",))
        return dirty, oracle

    dirty, oracle = benchmark.pedantic(run, rounds=1, iterations=1)
    assert view.evaluate(dirty)[("ESP",)] == view.evaluate(worldcup_gt)[("ESP",)]
    benchmark.extra_info["questions"] = oracle.log.question_count
