"""Section 7.1 — the DBGroup case study.

Runs the four grant-report queries over the seeded-dirty DBGroup
database and regenerates the case-study numbers: wrong/missing answers
discovered, edits applied, questions asked per query.

Expected shape: QOCO discovers the planted errors and every query's
result matches the ground truth afterwards (the paper reports 5 wrong +
7 missing answers found and 6 deletions + 8 insertions applied on its
real instance).
"""

from conftest import run_figure

from repro.experiments.figures import dbgroup_case_study

MATCHES = 6


def test_dbgroup_case_study(benchmark):
    result = run_figure(benchmark, dbgroup_case_study)
    assert all(row[MATCHES] for row in result.rows)
    assert sum(row[1] for row in result.rows) >= 2  # wrong answers found
    assert sum(row[2] for row in result.rows) >= 5  # missing answers found
