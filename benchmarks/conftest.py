"""Benchmark helpers: run each figure once, print it, keep its rows."""

from __future__ import annotations

import pytest


def run_figure(benchmark, figure_fn, **kwargs):
    """Benchmark a figure driver (single round — these are experiments,
    not microbenchmarks) and surface its rendered table."""
    result = benchmark.pedantic(
        lambda: figure_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["rows"] = [list(map(str, row)) for row in result.rows]
    print()
    print(result.render())
    return result


@pytest.fixture(scope="session")
def worldcup_gt():
    from repro.datasets.worldcup import worldcup_database

    return worldcup_database()
