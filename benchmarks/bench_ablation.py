"""Ablations of QOCO's design choices (DESIGN.md §3).

Not a paper figure — these isolate the individual ingredients the paper
bundles together:

* the Theorem 4.5 unique-minimal-hitting-set shortcut (QOCO vs QOCO−);
* the most-frequent-tuple heuristic vs a random pick *with* the
  shortcut kept (separating heuristic from inference);
* the majority-vote sample size vs residual error under noisy experts;
* the insertion candidate cap (crowd patience) vs question volume.
"""

from __future__ import annotations

import random

from repro.core.deletion import DeletionStrategy, crowd_remove_wrong_answer
from repro.core.insertion import InsertionConfig
from repro.core.qoco import QOCO, QOCOConfig
from repro.experiments.harness import make_strategy, plant_errors, run_insertion
from repro.experiments.reporting import render_table
from repro.oracle.aggregator import MajorityVote
from repro.oracle.base import AccountingOracle
from repro.oracle.crowd import Crowd
from repro.oracle.imperfect import ImperfectOracle
from repro.oracle.perfect import PerfectOracle
from repro.oracle.questions import QuestionKind
from repro.query.evaluator import Evaluator
from repro.workloads import Q3, Q5


class RandomWithInference(DeletionStrategy):
    """Random tuple order but keeping the Theorem 4.5 singleton rule —
    isolates the greedy heuristic from the free inference."""

    name = "Random+Thm4.5"
    infer_singletons = True

    def choose(self, sets, rng):
        pool = sorted({f for s in sets for f in s}, key=repr)
        return rng.choice(pool)


def _deletion_cost(gt, errors, strategy, seed=0):
    dirty = errors.dirty.copy()
    oracle = AccountingOracle(PerfectOracle(gt))
    rng = random.Random(seed)
    for answer in sorted(errors.wrong_answers, key=repr):
        if answer in Evaluator(Q3, dirty).answers():
            crowd_remove_wrong_answer(Q3, dirty, answer, oracle, strategy, rng)
    return oracle.log.cost_of([QuestionKind.VERIFY_FACT])


def test_ablation_singleton_shortcut_and_heuristic(benchmark, worldcup_gt):
    """Theorem 4.5 and the greedy order each pay for themselves."""

    def run():
        errors = plant_errors(worldcup_gt, Q3, n_wrong=10, n_missing=0, seed=202)
        return {
            "QOCO (greedy + Thm4.5)": _deletion_cost(
                worldcup_gt, errors, make_strategy("QOCO")
            ),
            "QOCO- (greedy only)": _deletion_cost(
                worldcup_gt, errors, make_strategy("QOCO-")
            ),
            "Random + Thm4.5": _deletion_cost(
                worldcup_gt, errors, RandomWithInference()
            ),
            "Random (neither)": _deletion_cost(
                worldcup_gt, errors, make_strategy("Random")
            ),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["variant", "fact questions"], list(costs.items())))
    assert costs["QOCO (greedy + Thm4.5)"] <= costs["QOCO- (greedy only)"]
    assert costs["QOCO (greedy + Thm4.5)"] <= costs["Random (neither)"]
    benchmark.extra_info["costs"] = costs


def test_ablation_majority_sample_size(benchmark, worldcup_gt):
    """Bigger vote samples cost more answers but leave fewer residuals."""

    def residual_and_cost(sample_size, trials=3, p=0.2):
        residuals = cost = 0
        errors = plant_errors(worldcup_gt, Q3, n_wrong=3, n_missing=0, seed=203)
        for trial in range(trials):
            rng = random.Random(500 + trial)
            members = [
                ImperfectOracle(worldcup_gt, p, random.Random(rng.randrange(1 << 30)))
                for _ in range(sample_size)
            ]
            crowd = Crowd(members, MajorityVote(sample_size))
            dirty = errors.dirty.copy()
            oracle = AccountingOracle(crowd)
            QOCO(dirty, oracle, QOCOConfig(seed=trial, max_iterations=5)).clean(Q3)
            residuals += len(
                Evaluator(Q3, dirty).answers()
                ^ Evaluator(Q3, worldcup_gt).answers()
            )
            cost += crowd.stats.total
        return residuals / trials, cost / trials

    def run():
        return {k: residual_and_cost(k) for k in (1, 3, 5)}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (k, f"{res:.2f}", f"{cost:.0f}") for k, (res, cost) in outcome.items()
    ]
    print()
    print(render_table(["sample size", "mean residual", "mean crowd answers"], rows))
    # Larger samples never leave more residual errors than a single expert.
    assert outcome[5][0] <= outcome[1][0]
    benchmark.extra_info["outcome"] = {str(k): v for k, v in outcome.items()}


def test_ablation_composite_questions(benchmark, worldcup_gt):
    """§9 composite questions: fewer interactions, same judgments."""
    from repro.core.composite import crowd_remove_wrong_answer_composite

    def run():
        errors = plant_errors(worldcup_gt, Q3, n_wrong=10, n_missing=0, seed=205)
        result = {}
        for batch_size in (1, 3, 5):
            dirty = errors.dirty.copy()
            oracle = AccountingOracle(PerfectOracle(worldcup_gt))
            rng = random.Random(0)
            for answer in sorted(errors.wrong_answers, key=repr):
                if answer in Evaluator(Q3, dirty).answers():
                    crowd_remove_wrong_answer_composite(
                        Q3, dirty, answer, oracle, batch_size, rng
                    )
            result[batch_size] = oracle.log.question_count
        return result

    interactions = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["batch size", "interactions"], list(interactions.items())))
    assert interactions[3] <= interactions[1]
    assert interactions[5] <= interactions[3]
    benchmark.extra_info["interactions"] = {
        str(k): v for k, v in interactions.items()
    }


def test_ablation_candidate_cap(benchmark, worldcup_gt):
    """The crowd-patience cap trades subquery splitting against floods."""

    def run():
        errors = plant_errors(worldcup_gt, Q5, n_wrong=0, n_missing=5, seed=204)
        result = {}
        for cap in (2, 12, 48):
            bar = run_insertion(
                worldcup_gt,
                Q5,
                errors,
                "Provenance",
                seed=1,
                insertion_config=InsertionConfig(max_candidates_per_subquery=cap),
            )
            result[cap] = bar.questions
        return result

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["candidate cap", "questions"], list(costs.items())))
    assert all(cost > 0 for cost in costs.values())
    benchmark.extra_info["costs"] = {str(k): v for k, v in costs.items()}
