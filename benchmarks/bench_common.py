"""Shared helpers for the contract benchmarks.

Two conventions every gated bench follows:

* **Normalized payloads.**  A ``BENCH_*.json`` stores summary statistics
  and content *digests*, never raw fact lists or interaction logs — the
  in-memory objects are still compared exactly inside the bench, but the
  artifact on disk stays diff-reviewable (``json_digest`` /
  ``Database.state_digest``).
* **A ``metrics`` block.**  Each payload carries a flat
  ``{"name": {"value", "direction", "tolerance"}}`` mapping consumed by
  ``benchmarks/check_regression.py``, which compares a fresh run against
  the committed baseline in ``benchmarks/baselines/``.  ``direction``
  says which way regressions point: ``"exact"`` for deterministic
  counters (seeded runs must reproduce them bit-for-bit), ``"lower"`` /
  ``"higher"`` for measured quantities, with ``tolerance`` the relative
  band a loaded CI runner is allowed to wander within.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

DIRECTIONS = ("exact", "lower", "higher")


def json_digest(obj: Any) -> str:
    """A stable content hash of any JSON-serializable artifact."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def metric(value, direction: str = "exact", tolerance: float = 0.0) -> dict:
    """One entry of a bench's ``metrics`` block."""
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    return {"value": value, "direction": direction, "tolerance": tolerance}


def percentile(values, q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` without the
    import, so benches that only need p50/p95/p99 stay stdlib.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile() of empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 == len(ordered):
        return float(ordered[low])
    return float(ordered[low] * (1.0 - frac) + ordered[low + 1] * frac)


def latency_summary(values) -> dict:
    """The standard tail-latency block: count/mean/p50/p95/p99/max.

    The shape every latency-reporting bench shares (``bench_service``,
    ``bench_dispatch``), so payloads stay comparable across subsystems.
    """
    ordered = sorted(values)
    if not ordered:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 50.0),
        "p95": percentile(ordered, 95.0),
        "p99": percentile(ordered, 99.0),
        "max": float(ordered[-1]),
    }


def write_payload(out: str, result: dict) -> None:
    with open(out, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
