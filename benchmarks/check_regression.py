"""Compare a fresh ``BENCH_*.json`` against its committed baseline.

The perf-regression gate of the CI pipeline::

    python benchmarks/bench_server.py BENCH_server.json
    python benchmarks/check_regression.py BENCH_server.json

Every gated bench payload carries a ``metrics`` block (see
``benchmarks/bench_common.py``) of ``{"value", "direction",
"tolerance"}`` entries.  The baseline in ``benchmarks/baselines/``
carries the same block, and the *baseline's* direction and tolerance are
the contract — a fresh run cannot loosen its own gate:

* ``exact``  — the fresh value must equal the baseline (deterministic,
  seeded counters; a drift means changed behaviour);
* ``lower``  — lower is better; fresh must stay within
  ``baseline * (1 + tolerance)``;
* ``higher`` — higher is better; fresh must stay within
  ``baseline * (1 - tolerance)``.

A metric present in the baseline but missing from the fresh run fails
the gate (a silently dropped measurement is a regression in coverage);
a new metric only in the fresh run is reported but passes — commit it
with ``--update`` to start gating it.

When ``$GITHUB_STEP_SUMMARY`` is set (always, on GitHub runners), the
verdicts are also appended there as a markdown table, so a red gate is
readable from the run's summary page without digging through logs.

Exit status: 0 = within tolerance, 1 = regression (or missing/corrupt
files), making it a plain CI step.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def load_metrics(path: Path) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit(f"{path}: no 'metrics' block — not a gated bench payload")
    return metrics


def exact_match(fresh, base) -> bool:
    if isinstance(fresh, float) or isinstance(base, float):
        return math.isclose(fresh, base, rel_tol=1e-9, abs_tol=1e-12)
    return fresh == base


def fmt(value) -> str:
    """One metric value for the verdict line (digests stay readable)."""
    if value is None:
        return "—"
    if isinstance(value, str):
        return value if len(value) <= 14 else value[:11] + "..."
    return f"{value:g}"


@dataclass(frozen=True)
class Verdict:
    """The gate's decision on one metric, renderable as text or markdown."""

    name: str
    status: str  # "ok" | "FAIL" | "new" | "missing"
    baseline: object  # baseline value (None for "new" metrics)
    measured: object  # fresh value (None when missing from the fresh run)
    direction: str
    band: str  # the acceptance band, e.g. "<= 12.6"

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new")

    def line(self) -> str:
        """The console spelling (kept stable for log-scraping)."""
        if self.status == "missing":
            return f"FAIL {self.name}: present in baseline, missing from fresh run"
        if self.status == "new":
            return f"new  {self.name}: not in baseline yet (run with --update to gate it)"
        status = "ok  " if self.status == "ok" else "FAIL"
        return (
            f"{status} {self.name:32s} {fmt(self.measured):>14s}  "
            f"(baseline {fmt(self.baseline)}, {self.direction}, {self.band})"
        )


def verdict_for(name: str, base: dict, fresh: Optional[dict]) -> Verdict:
    """Judge one metric of the baseline against the fresh run."""
    direction = base.get("direction", "exact")
    tolerance = base.get("tolerance", 0.0)
    base_value = base["value"]
    if fresh is None:
        return Verdict(name, "missing", base_value, None, direction, "")
    fresh_value = fresh["value"]
    if direction == "exact":
        ok = exact_match(fresh_value, base_value)
        band = "== baseline"
    elif direction == "lower":
        bound = base_value * (1 + tolerance)
        ok = fresh_value <= bound
        band = f"<= {bound:g}"
    elif direction == "higher":
        bound = base_value * (1 - tolerance)
        ok = fresh_value >= bound
        band = f">= {bound:g}"
    else:
        return Verdict(
            name, "FAIL", base_value, fresh_value, direction,
            f"unknown direction {direction!r} in baseline",
        )
    return Verdict(
        name, "ok" if ok else "FAIL", base_value, fresh_value, direction, band
    )


def judge(name: str, base: dict, fresh: dict) -> tuple[bool, str]:
    """(passed, human-readable verdict line) for one metric."""
    verdict = verdict_for(name, base, fresh)
    return verdict.ok, verdict.line()


def collect_verdicts(base_metrics: dict, fresh_metrics: dict) -> list[Verdict]:
    """Every gated metric judged, plus ungated newcomers, in name order."""
    verdicts = [
        verdict_for(name, base_metrics[name], fresh_metrics.get(name))
        for name in sorted(base_metrics)
    ]
    for name in sorted(set(fresh_metrics) - set(base_metrics)):
        verdicts.append(
            Verdict(name, "new", None, fresh_metrics[name]["value"], "", "")
        )
    return verdicts


_BADGES = {"ok": "✅ ok", "FAIL": "❌ regressed", "new": "🆕 ungated", "missing": "❌ missing"}


def markdown_table(verdicts: list[Verdict], *, title: str = "") -> str:
    """The ``$GITHUB_STEP_SUMMARY`` rendering of one gate run."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| metric | baseline | measured | direction | band | verdict |")
    lines.append("| --- | --- | --- | --- | --- | --- |")
    for v in verdicts:
        lines.append(
            f"| `{v.name}` | {fmt(v.baseline)} | {fmt(v.measured)} "
            f"| {v.direction or '—'} | {v.band or '—'} | {_BADGES[v.status]} |"
        )
    failures = sum(1 for v in verdicts if not v.ok)
    lines.append("")
    lines.append(
        f"**{failures} regression(s)** out of {len(verdicts)} metric(s)."
        if failures
        else f"All {len(verdicts)} metric(s) within tolerance."
    )
    return "\n".join(lines) + "\n"


def write_step_summary(text: str, path: Optional[str] = None) -> bool:
    """Append *text* to the GitHub step summary file, if one is set.

    Returns whether anything was written (False outside Actions).
    """
    target = path if path is not None else os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return False
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return True


def compare(fresh_path: Path, baseline_path: Path) -> int:
    base_metrics = load_metrics(baseline_path)
    fresh_metrics = load_metrics(fresh_path)
    verdicts = collect_verdicts(base_metrics, fresh_metrics)
    for verdict in verdicts:
        print(verdict.line())
    failures = sum(1 for v in verdicts if not v.ok)
    if failures:
        print(f"\n{failures} metric(s) regressed against {baseline_path}")
    write_step_summary(markdown_table(verdicts, title=f"Bench gate: {fresh_path.name}"))
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help="directory of committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh payload over the baseline instead of comparing",
    )
    args = parser.parse_args(argv[1:])

    if not args.fresh.exists():
        print(f"fresh payload {args.fresh} does not exist")
        return 1
    baseline = args.baseline_dir / args.fresh.name
    if args.update:
        load_metrics(args.fresh)  # refuse to bless a payload with no gate
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.fresh, baseline)
        print(f"baseline updated: {baseline}")
        return 0
    if not baseline.exists():
        print(
            f"no baseline {baseline} — create one with "
            f"'python benchmarks/check_regression.py {args.fresh} --update'"
        )
        return 1
    return compare(args.fresh, baseline)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
