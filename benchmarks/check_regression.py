"""Compare a fresh ``BENCH_*.json`` against its committed baseline.

The perf-regression gate of the CI pipeline::

    python benchmarks/bench_server.py BENCH_server.json
    python benchmarks/check_regression.py BENCH_server.json

Every gated bench payload carries a ``metrics`` block (see
``benchmarks/bench_common.py``) of ``{"value", "direction",
"tolerance"}`` entries.  The baseline in ``benchmarks/baselines/``
carries the same block, and the *baseline's* direction and tolerance are
the contract — a fresh run cannot loosen its own gate:

* ``exact``  — the fresh value must equal the baseline (deterministic,
  seeded counters; a drift means changed behaviour);
* ``lower``  — lower is better; fresh must stay within
  ``baseline * (1 + tolerance)``;
* ``higher`` — higher is better; fresh must stay within
  ``baseline * (1 - tolerance)``.

A metric present in the baseline but missing from the fresh run fails
the gate (a silently dropped measurement is a regression in coverage);
a new metric only in the fresh run is reported but passes — commit it
with ``--update`` to start gating it.

Exit status: 0 = within tolerance, 1 = regression (or missing/corrupt
files), making it a plain CI step.
"""

from __future__ import annotations

import argparse
import json
import math
import shutil
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def load_metrics(path: Path) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit(f"{path}: no 'metrics' block — not a gated bench payload")
    return metrics


def exact_match(fresh, base) -> bool:
    if isinstance(fresh, float) or isinstance(base, float):
        return math.isclose(fresh, base, rel_tol=1e-9, abs_tol=1e-12)
    return fresh == base


def fmt(value) -> str:
    """One metric value for the verdict line (digests stay readable)."""
    if isinstance(value, str):
        return value if len(value) <= 14 else value[:11] + "..."
    return f"{value:g}"


def judge(name: str, base: dict, fresh: dict) -> tuple[bool, str]:
    """(passed, human-readable verdict line) for one metric."""
    direction = base.get("direction", "exact")
    tolerance = base.get("tolerance", 0.0)
    base_value, fresh_value = base["value"], fresh["value"]
    if direction == "exact":
        ok = exact_match(fresh_value, base_value)
        band = "== baseline"
    elif direction == "lower":
        bound = base_value * (1 + tolerance)
        ok = fresh_value <= bound
        band = f"<= {bound:g}"
    elif direction == "higher":
        bound = base_value * (1 - tolerance)
        ok = fresh_value >= bound
        band = f">= {bound:g}"
    else:
        return False, f"{name}: unknown direction {direction!r} in baseline"
    status = "ok  " if ok else "FAIL"
    return ok, (
        f"{status} {name:32s} {fmt(fresh_value):>14s}  "
        f"(baseline {fmt(base_value)}, {direction}, {band})"
    )


def compare(fresh_path: Path, baseline_path: Path) -> int:
    base_metrics = load_metrics(baseline_path)
    fresh_metrics = load_metrics(fresh_path)
    failures = 0
    for name in sorted(base_metrics):
        if name not in fresh_metrics:
            print(f"FAIL {name}: present in baseline, missing from fresh run")
            failures += 1
            continue
        ok, line = judge(name, base_metrics[name], fresh_metrics[name])
        print(line)
        failures += 0 if ok else 1
    for name in sorted(set(fresh_metrics) - set(base_metrics)):
        print(f"new  {name}: not in baseline yet (run with --update to gate it)")
    if failures:
        print(f"\n{failures} metric(s) regressed against {baseline_path}")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=BASELINE_DIR,
        help="directory of committed baselines (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh payload over the baseline instead of comparing",
    )
    args = parser.parse_args(argv[1:])

    if not args.fresh.exists():
        print(f"fresh payload {args.fresh} does not exist")
        return 1
    baseline = args.baseline_dir / args.fresh.name
    if args.update:
        load_metrics(args.fresh)  # refuse to bless a payload with no gate
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.fresh, baseline)
        print(f"baseline updated: {baseline}")
        return 0
    if not baseline.exists():
        print(
            f"no baseline {baseline} — create one with "
            f"'python benchmarks/check_regression.py {args.fresh} --update'"
        )
        return 1
    return compare(args.fresh, baseline)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
