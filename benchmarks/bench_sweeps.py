"""Section 7.2 parameter sweeps — cleanliness 60-95% and skewness 0-100%.

The paper's figures show selected noise levels; its parameter section
defines the full ranges.  These benchmarks sweep them on Q1 and check
the text's trends: more noise (lower cleanliness) means more errors and
more questions, and cleaning converges at every level.
"""

from repro.experiments.sweeps import sweep_cleanliness, sweep_skewness
from repro.workloads import Q1

QUESTIONS, CONVERGED = 3, 6


def _protected(gt):
    return set(gt.facts("stages"))


def test_sweep_cleanliness(benchmark, worldcup_gt):
    result = benchmark.pedantic(
        lambda: sweep_cleanliness(
            worldcup_gt, Q1, protected=_protected(worldcup_gt)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(row[CONVERGED] for row in result.rows)
    # dirtier data costs at least as much as the cleanest level
    costs = [row[QUESTIONS] for row in result.rows]
    assert costs[0] >= costs[-1]


def test_sweep_skewness(benchmark, worldcup_gt):
    result = benchmark.pedantic(
        lambda: sweep_skewness(
            worldcup_gt, Q1, protected=_protected(worldcup_gt)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(row[CONVERGED] for row in result.rows)
