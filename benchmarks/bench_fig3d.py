"""Figure 3d — Deletion on Q3 with 2 / 5 / 10 wrong answers.

Expected shape: QOCO's cost grows sub-linearly with the number of wrong
answers, and the gap between QOCO and the Random baseline widens as the
noise level grows.
"""

from conftest import run_figure

from repro.experiments.figures import fig3d

QUESTIONS = 3


def test_fig3d_deletion_varying_wrong(benchmark):
    result = run_figure(benchmark, fig3d)
    gaps = []
    for n in (2, 5, 10):
        rows = result.by_algorithm(f"wrong={n}")
        assert rows["QOCO"][QUESTIONS] <= rows["Random"][QUESTIONS]
        gaps.append(rows["Random"][QUESTIONS] - rows["QOCO"][QUESTIONS])
    assert gaps[0] <= gaps[-1]  # the gap widens with noise
