"""Crowd-service burst + failover benchmark (ISSUE 8's CI gate).

The contract: a subprocess primary (``qoco-serve primary`` on the
50-tenant burst dataset) takes a commit burst from 50 concurrent
tenant clients while 20 remote workers answer the question feed; a
warm in-process follower tails its WAL.  Mid-burst the primary is
killed with ``SIGKILL``; the follower is promoted and the remaining
tenants finish against the new primary.  The gates:

* **zero lost committed edits** — every session acknowledged
  ``committed + replicated`` before the kill has its edits (and its
  tenant's ledger charge) present on the promoted node;
* **full convergence** — after the post-failover pass, all 50 tenants'
  fabricated facts are gone and the served digest matches the database;
* **tail latency** — p50/p95/p99 of per-session open→commit latency,
  gated against ``benchmarks/baselines/BENCH_service.json`` with wide
  bands (real sockets and threads on a shared CI runner).

Run as a script (``python benchmarks/bench_service.py [out.json]``) or
under pytest; either way it owns its subprocess and tears it down.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from pathlib import Path

from bench_common import latency_summary, metric, write_payload
from repro.db.tuples import fact
from repro.durability.codec import database_digest
from repro.oracle.perfect import PerfectOracle
from repro.service.app import CrowdService
from repro.service.cli import build_workload, burst_query
from repro.service.client import ServiceClient, WorkerClient
from repro.service.replication import Follower

TENANTS = 50
WORKERS = 20
KILL_AFTER_ACKED = 12
BOGUS_PER_TENANT = 2


class _StandbyHarness:
    """The warm follower's service on a background event-loop thread."""

    def __init__(self, follower: Follower) -> None:
        self.service = CrowdService(follower=follower)
        self.host, self.port = "", 0
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.service.start("127.0.0.1", 0)
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def __enter__(self) -> "_StandbyHarness":
        self._thread.start()
        assert self._ready.wait(15), "standby failed to start"
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def spawn_primary(directory: Path) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "primary",
            "--dataset", "burst", "--tenants", str(TENANTS),
            "--dir", str(directory), "--port", "0",
            "--lease-timeout", "15", "--max-inflight-total", str(TENANTS),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("LISTENING"):
            _, host, port = line.split()
            return process, host, int(port)
        if process.poll() is not None:
            break
    raise RuntimeError("primary did not come up")


def drive_tenant(host: str, port: int, index: int, *, replicated: bool = True) -> dict:
    """One tenant's burst request; returns its outcome row.

    With ``replicated`` (the pre-kill phase) "acked" means the commit
    was follower-durable; the post-failover rerun has no follower of
    its own, so there "acked" is just a commit.
    """
    started = time.monotonic()
    client = ServiceClient(host, port, tenant=f"t{index}")
    try:
        sid = client.open_when_admitted(burst_query(index), deadline=90.0)
        doc = client.wait(sid, timeout=90.0, replicated=replicated)
        acked = doc.get("state") == "committed" and (
            not replicated or doc.get("replicated") is True
        )
        return {
            "tenant": index,
            "acked": acked,
            "cost": doc.get("cost", 0),
            "latency_s": time.monotonic() - started,
        }
    except Exception as error:
        return {"tenant": index, "acked": False, "error": repr(error)}
    finally:
        client.close()


def bench_report() -> dict:
    workload = build_workload("burst", tenants=TENANTS)
    ground_truth = workload.ground_truth
    with tempfile.TemporaryDirectory(prefix="qoco-bench-service-") as tmp:
        tmp_path = Path(tmp)
        primary, host, port = spawn_primary(tmp_path / "primary")
        try:
            follower = Follower(tmp_path / "follower", host, port)
            with _StandbyHarness(follower) as standby:
                workers = [
                    WorkerClient(host, port, f"w{i}", PerfectOracle(ground_truth))
                    for i in range(WORKERS)
                ]
                for worker in workers:
                    worker.start_thread(stream=(worker.worker_id == "w0"))

                burst_started = time.monotonic()
                rows, killed = [], False
                with ThreadPoolExecutor(max_workers=TENANTS) as pool:
                    futures = [
                        pool.submit(drive_tenant, host, port, i)
                        for i in range(TENANTS)
                    ]
                    for future in as_completed(futures):
                        row = future.result()
                        rows.append(row)
                        acked = sum(1 for r in rows if r["acked"])
                        if acked >= KILL_AFTER_ACKED and not killed:
                            os.kill(primary.pid, signal.SIGKILL)
                            killed = True
                for worker in workers:
                    worker.stop()
                acked_rows = [r for r in rows if r["acked"]]

                # ---- failover ------------------------------------------
                promote_started = time.monotonic()
                with ServiceClient(standby.host, standby.port) as client:
                    client.promote()
                promote_s = time.monotonic() - promote_started
                manager = standby.service.manager
                ledger = manager.ledger.snapshot()

                lost = 0
                for row in acked_rows:
                    i = row["tenant"]
                    gone = all(
                        fact("r", f"t{i}", f"bogus{j}") not in manager.database
                        for j in range(BOGUS_PER_TENANT)
                    )
                    charged = ledger.get(f"t{i}", 0) >= row["cost"] > 0
                    if not (gone and charged):
                        lost += 1

                # ---- finish the burst on the promoted node -------------
                new_workers = [
                    WorkerClient(
                        standby.host, standby.port, f"p{i}",
                        PerfectOracle(ground_truth),
                    )
                    for i in range(WORKERS)
                ]
                for worker in new_workers:
                    worker.start_thread()
                acked_tenants = {r["tenant"] for r in acked_rows}
                leftovers = [i for i in range(TENANTS) if i not in acked_tenants]
                with ThreadPoolExecutor(max_workers=max(1, len(leftovers))) as pool:
                    futures = [
                        pool.submit(
                            drive_tenant, standby.host, standby.port, i,
                            replicated=False,
                        )
                        for i in leftovers
                    ]
                    rerun_rows = [f.result() for f in as_completed(futures)]
                for worker in new_workers:
                    worker.stop()
                wall_clock_s = time.monotonic() - burst_started

                unclean = sum(
                    1
                    for i in range(TENANTS)
                    if any(
                        fact("r", f"t{i}", f"bogus{j}") in manager.database
                        for j in range(BOGUS_PER_TENANT)
                    )
                )
                with ServiceClient(standby.host, standby.port) as client:
                    served_digest = client.digest()["digest"]
                digest_consistent = served_digest == database_digest(manager.database)
                clean_digest = database_digest(ground_truth)
        finally:
            if primary.poll() is None:
                primary.kill()
            primary.wait(timeout=10)
            if primary.stdout is not None:
                primary.stdout.close()

    latencies = [r["latency_s"] for r in acked_rows + rerun_rows if "latency_s" in r]
    result = {
        "workload": {
            "dataset": "burst",
            "tenants": TENANTS,
            "workers": WORKERS,
            "kill_after_acked": KILL_AFTER_ACKED,
        },
        "acked_before_kill": len(acked_rows),
        "rerun_committed": sum(1 for r in rerun_rows if r["acked"]),
        "lost_committed_edits": lost,
        "unclean_tenants": unclean,
        "digest_consistent": digest_consistent,
        "fully_clean": served_digest == clean_digest,
        "promote_s": promote_s,
        "wall_clock_s": wall_clock_s,
        "session_latency_s": latency_summary(latencies),
    }
    summary = result["session_latency_s"]
    result["metrics"] = {
        # correctness gates: deterministic whatever the kill timing
        "lost_committed_edits": metric(0 + lost),
        "unclean_tenants": metric(unclean),
        "digest_consistent": metric(int(digest_consistent)),
        "fully_clean": metric(int(result["fully_clean"])),
        "kill_threshold_met": metric(int(len(acked_rows) >= KILL_AFTER_ACKED)),
        # latency gates: real sockets + threads on a shared runner, so
        # the bands are wide; a genuine regression still trips them
        "session_p50_s": metric(summary["p50"], "lower", 1.5),
        "session_p95_s": metric(summary["p95"], "lower", 1.5),
        "session_p99_s": metric(summary["p99"], "lower", 1.5),
        "wall_clock_s": metric(wall_clock_s, "lower", 1.5),
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    if result["acked_before_kill"] < KILL_AFTER_ACKED:
        failures.append("primary was not killed mid-burst")
    if result["lost_committed_edits"]:
        failures.append(
            f"{result['lost_committed_edits']} acked commit(s) lost in failover"
        )
    if result["unclean_tenants"]:
        failures.append(
            f"{result['unclean_tenants']} tenant(s) still dirty after the rerun"
        )
    if not result["digest_consistent"]:
        failures.append("served digest disagrees with the promoted database")
    if not result["fully_clean"]:
        failures.append("promoted database did not converge to the ground truth")
    return failures


def test_service_burst_failover_contract():
    """The ISSUE 8 acceptance gate, end to end over real processes."""
    result = bench_report()
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_service.json"
    result = bench_report()
    write_payload(out, result)
    summary = result["session_latency_s"]
    print(
        f"burst: {result['acked_before_kill']} acked before SIGKILL, "
        f"{result['rerun_committed']} finished on the promoted node "
        f"(promotion {result['promote_s']:.2f}s)"
    )
    print(
        f"latency p50/p95/p99 "
        f"{summary['p50']:.3f}/{summary['p95']:.3f}/{summary['p99']:.3f}s "
        f"over {summary['count']} sessions, wall clock "
        f"{result['wall_clock_s']:.1f}s"
    )
    print(
        f"lost committed edits: {result['lost_committed_edits']}  "
        f"unclean tenants: {result['unclean_tenants']}  "
        f"digest consistent: {result['digest_consistent']}"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
