"""Figure 4 — Real (imperfect) expert crowd on Q2 and Q3.

Regenerates the crowd-answer counts (majority vote over 3 imperfect
experts, early stop at 2 agreeing answers) for QOCO / QOCO− / Random
deletion with Provenance insertion, averaged over trials.

Expected shape: the same algorithm ordering as the perfect-oracle runs
with ~2-3x the answer counts (majority voting), totals below 3x the
single-expert cost (early stopping), and small residual error.
"""

from conftest import run_figure

from repro.experiments.figures import fig4

TOTAL, RESIDUAL = 5, 6


def test_fig4_imperfect_expert_crowd(benchmark):
    result = run_figure(benchmark, fig4)
    for row in result.rows:
        assert row[RESIDUAL] <= 8  # majority voting keeps errors rare
    for group in ("Q2", "Q3"):
        rows = result.by_algorithm(group)
        # QOCO's total crowd answers stay within trial noise of the best
        # (one wrong majority vote costs a whole extra verification round).
        best = min(row[TOTAL] for row in rows.values())
        assert rows["QOCO"][TOTAL] <= 1.6 * best
