"""Microbenchmark: cost-based join ordering vs the syntactic default.

A query whose selective lookup hides behind unselective atoms shows the
planner's value; the workload queries confirm the default heuristic is
already fine there (the planner never changes results either way).
"""

import pytest

from repro.db.database import Database
from repro.db.schema import Schema
from repro.db.tuples import fact
from repro.query.evaluator import Evaluator, evaluate
from repro.query.parser import parse_query
from repro.query.planner import PlannedEvaluator, Statistics
from repro.workloads import Q2


@pytest.fixture(scope="module")
def skewed_db():
    schema = Schema.from_dict(
        {"big": ["a", "b"], "mid": ["b", "c"], "tiny": ["c"]}
    )
    db = Database(schema)
    for i in range(3000):
        db.insert(fact("big", i, i % 60))
    for i in range(300):
        db.insert(fact("mid", i % 60, i % 30))
    db.insert(fact("tiny", 7))
    return db


CHAIN = parse_query("q(a) :- big(a, b), mid(b, c), tiny(c).")


def test_default_evaluator_on_skewed_chain(benchmark, skewed_db):
    answers = benchmark(lambda: Evaluator(CHAIN, skewed_db).answers())
    assert answers


def test_planned_evaluator_on_skewed_chain(benchmark, skewed_db):
    stats = Statistics(skewed_db)
    answers = benchmark(
        lambda: PlannedEvaluator(CHAIN, skewed_db, stats).answers()
    )
    assert answers


def test_planned_matches_default(skewed_db, worldcup_gt):
    assert PlannedEvaluator(CHAIN, skewed_db).answers() == evaluate(
        CHAIN, skewed_db
    )
    assert PlannedEvaluator(Q2, worldcup_gt).answers() == evaluate(Q2, worldcup_gt)
