"""Incremental maintenance vs full re-evaluation across a cleaning session.

The contract (ISSUE 2): on a Soccer-workload cleaning session the
delta-maintained answer/witness state must cut
``evaluator.backtrack_steps`` by at least 5x versus re-running the
evaluator per check (``use_incremental=False``), win on wall-clock, and
produce a bit-identical cleaning run — same edits, same answers, same
oracle-question log.

The session: a scaled-down World Cup ground truth, Q4 dirtied with 6
wrong and 12 missing answers (insertion-heavy — every ``COMPL(Q(D))``
round re-reads ``Q(D)``, which is where re-evaluation hurts most), then
one full QOCO run per mode with a perfect oracle.  Backtrack counts are
deterministic (seeded generators, seeded cleaning), so the 5x floor is a
hard assertion, not a flaky timing bound.

Run under pytest (``pytest benchmarks/bench_incremental.py``) or as a
script (``python benchmarks/bench_incremental.py [out.json]``), which
writes ``BENCH_incremental.json``.
"""

from __future__ import annotations

import random
import sys
import time

import pytest

from bench_common import json_digest, metric, write_payload
from repro.core.qoco import QOCO, QOCOConfig
from repro.datasets.noise import inject_result_errors
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.telemetry import TELEMETRY, telemetry_session
from repro.workloads import Q4

SEED = 11
N_WRONG = 6
N_MISSING = 12
BACKTRACK_FLOOR = 5.0

#: Scaled-down generator (~1900 tuples) keeps the full-re-evaluation
#: baseline CI-friendly; the ratio is stable across scales (the paper
#: scale ~5000 tuples gives the same 5-6x).
SCALE = WorldCupConfig(players_per_team=6, group_games_per_cup=4)


@pytest.fixture(autouse=True)
def _clean_hub():
    yield
    TELEMETRY.disable()
    for sink in TELEMETRY.sinks:
        TELEMETRY.remove_sink(sink)
    TELEMETRY.reset()


def build_session():
    """(ground truth, dirty instance) for the benchmark session."""
    ground_truth = worldcup_database(SCALE)
    errors = inject_result_errors(
        ground_truth, Q4, N_WRONG, N_MISSING, random.Random(SEED)
    )
    return ground_truth, errors.dirty


def run_mode(ground_truth, dirty_base, use_incremental: bool) -> dict:
    """One full cleaning run; returns measurements plus the artifacts
    that must be identical across modes."""
    dirty = dirty_base.copy()
    oracle = AccountingOracle(PerfectOracle(ground_truth))
    config = QOCOConfig(seed=SEED, use_incremental=use_incremental)
    with telemetry_session() as (hub, _):
        start = time.perf_counter()
        report = QOCO(dirty, oracle, config).clean(Q4)
        elapsed = time.perf_counter() - start
        counters = hub.counters()
    return {
        "elapsed_s": elapsed,
        "backtrack_steps": counters.get("evaluator.backtrack_steps", 0),
        "evaluations": counters.get("evaluator.evaluations", 0),
        "delta_applied": counters.get("incremental.delta_applied", 0),
        "full_recomputes": counters.get("incremental.full_recompute", 0),
        "questions": oracle.log.question_count,
        "converged": report.converged,
        "artifacts": {
            "edits": [(e.kind.value, repr(e.fact)) for e in report.edits],
            "log": report.log.to_dicts(),
            "wrong_removed": sorted(map(repr, report.wrong_answers_removed)),
            "missing_added": sorted(map(repr, report.missing_answers_added)),
        },
    }


def bench_report() -> dict:
    """Both modes plus the derived ratios (the JSON payload)."""
    ground_truth, dirty = build_session()
    full = run_mode(ground_truth, dirty, use_incremental=False)
    incremental = run_mode(ground_truth, dirty, use_incremental=True)
    # the artifacts (edit sequence, full interaction log) are compared
    # exactly here, then shipped as digests — the payload stays small
    identical = full["artifacts"] == incremental["artifacts"]
    for mode in (full, incremental):
        mode["artifacts_digest"] = json_digest(mode.pop("artifacts"))
    result = {
        "workload": {
            "query": Q4.name,
            "ground_truth_size": len(ground_truth),
            "wrong_answers": N_WRONG,
            "missing_answers": N_MISSING,
            "seed": SEED,
        },
        "full": full,
        "incremental": incremental,
        "backtrack_ratio": full["backtrack_steps"]
        / max(1, incremental["backtrack_steps"]),
        "wall_clock_speedup": full["elapsed_s"]
        / max(1e-9, incremental["elapsed_s"]),
        "identical_runs": identical,
    }
    result["metrics"] = {
        # deterministic, seeded: the counters must reproduce exactly
        "full_backtrack_steps": metric(full["backtrack_steps"]),
        "incremental_backtrack_steps": metric(incremental["backtrack_steps"]),
        "questions": metric(full["questions"]),
        "backtrack_ratio": metric(result["backtrack_ratio"], "higher", 0.0),
        # wall-clock: wide band, the hard floor lives in the contract test
        "wall_clock_speedup": metric(
            result["wall_clock_speedup"], "higher", 0.60
        ),
        "identical_runs": metric(int(identical)),
    }
    return result


def test_incremental_session_contract():
    """The ISSUE 2 acceptance gate, end to end."""
    result = bench_report()
    assert result["identical_runs"], "modes diverged: not semantics-preserving"
    assert result["full"]["converged"] and result["incremental"]["converged"]
    assert result["full"]["questions"] == result["incremental"]["questions"]
    assert result["backtrack_ratio"] >= BACKTRACK_FLOOR, (
        f"backtrack savings {result['backtrack_ratio']:.1f}x "
        f"below the {BACKTRACK_FLOOR}x floor"
    )
    # deltas, not recomputes: one refresh at construction, then per-edit
    assert result["incremental"]["full_recomputes"] == 1
    assert result["incremental"]["delta_applied"] >= N_WRONG
    # timing is the soft half of the contract — keep the bound gentle so
    # a loaded CI box cannot flake it; the ratio above is the hard gate
    assert result["wall_clock_speedup"] > 1.0, (
        f"incremental slower on wall-clock: {result['wall_clock_speedup']:.2f}x"
    )


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_incremental.json"
    result = bench_report()
    write_payload(out, result)
    print(
        f"full:        {result['full']['elapsed_s'] * 1e3:8.1f} ms  "
        f"{result['full']['backtrack_steps']:>8.0f} backtracks  "
        f"{result['full']['evaluations']:>4.0f} evaluations"
    )
    print(
        f"incremental: {result['incremental']['elapsed_s'] * 1e3:8.1f} ms  "
        f"{result['incremental']['backtrack_steps']:>8.0f} backtracks  "
        f"{result['incremental']['delta_applied']:>4.0f} deltas"
    )
    print(
        f"backtracks saved: {result['backtrack_ratio']:.1f}x   "
        f"wall-clock speedup: {result['wall_clock_speedup']:.2f}x   "
        f"identical runs: {result['identical_runs']}"
    )
    print(f"wrote {out}")
    ok = (
        result["identical_runs"]
        and result["backtrack_ratio"] >= BACKTRACK_FLOOR
        and result["wall_clock_speedup"] > 1.0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
