"""Multi-tenant server benchmark: fork cost, concurrency, shared answers.

The contract (ISSUE 4): on the worldcup dataset, ``Database.fork()``
must be at least 5× cheaper than ``Database.copy()``; cross-session
answer sharing must *strictly* reduce member-oracle answers when tenants
clean overlapping views (while producing the identical final database);
and concurrent dispatch-mode sessions must finish in less simulated
wall-clock than running the same sessions back to back.

Run under pytest (``pytest benchmarks/bench_server.py``) or as a script
(``python benchmarks/bench_server.py [out.json]``), which writes
``BENCH_server.json``.
"""

from __future__ import annotations

import random
import statistics
import sys
import time

from bench_common import metric, write_payload
from repro.core.qoco import QOCOConfig
from repro.datasets.noise import inject_result_errors
from repro.datasets.worldcup import worldcup_database
from repro.dispatch import WorkerPool
from repro.oracle.perfect import PerfectOracle
from repro.server import SessionManager
from repro.workloads import Q1, Q3

SEED = 11
FORK_ROUNDS = 200
COPY_ROUNDS = 20
N_WORKERS = 6


class CountingOracle(PerfectOracle):
    """A perfect member that counts every question it actually answers."""

    def __init__(self, ground_truth):
        super().__init__(ground_truth)
        self.answered = 0

    def verify_fact(self, fact):
        self.answered += 1
        return super().verify_fact(fact)

    def verify_answer(self, query, answer):
        self.answered += 1
        return super().verify_answer(query, answer)

    def verify_candidate(self, query, partial):
        self.answered += 1
        return super().verify_candidate(query, partial)

    def complete_assignment(self, query, partial):
        self.answered += 1
        return super().complete_assignment(query, partial)

    def complete_result(self, query, known):
        self.answered += 1
        return super().complete_result(query, known)


def build_session():
    """(ground truth, dirty instance) — worldcup with Q3 result errors."""
    ground_truth = worldcup_database()
    errors = inject_result_errors(
        ground_truth, Q3, 3, 2, rng=random.Random(SEED)
    )
    return ground_truth, errors.dirty


# ----------------------------------------------------------------------
# fork vs copy
# ----------------------------------------------------------------------
def bench_fork_vs_copy(database) -> dict:
    def timed(operation, rounds):
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            operation()
            samples.append(time.perf_counter() - start)
        return statistics.median(samples)

    fork_s = timed(database.fork, FORK_ROUNDS)
    copy_s = timed(database.copy, COPY_ROUNDS)
    return {
        "facts": len(database),
        "fork_median_us": fork_s * 1e6,
        "copy_median_us": copy_s * 1e6,
        "speedup": copy_s / fork_s if fork_s else float("inf"),
    }


# ----------------------------------------------------------------------
# cross-session sharing on overlapping views
# ----------------------------------------------------------------------
def run_tenants(ground_truth, dirty_base, *, share: bool) -> dict:
    """Three tenants over overlapping views (Q3, Q3, Q1), sequential
    admission so both configurations resolve questions in one order."""
    base = dirty_base.copy()
    member = CountingOracle(ground_truth)
    manager = SessionManager(
        base,
        config=QOCOConfig(seed=SEED),
        share_answers=share,
        max_concurrent=1,
    )
    for tenant, query in enumerate((Q3, Q3, Q1)):
        manager.open_session(query, member, tenant=f"t{tenant}")
    report = manager.run_all()
    return {
        "member_answers": member.answered,
        "cost": report.total_cost,
        "shared_hits": report.shared_hits,
        "committed": report.committed,
        "failed": report.failed,
        "replays": report.replays,
        "final_db_digest": base.state_digest(),
    }


# ----------------------------------------------------------------------
# sequential vs concurrent wall clock (dispatch mode)
# ----------------------------------------------------------------------
def run_dispatch_fleet(ground_truth, dirty_base) -> dict:
    """Two dispatch-mode tenants, each with its own simulated crowd.

    Concurrent service time is the slowest tenant (they overlap);
    sequential service time is the sum (one crowd session after the
    other) — the latency win of serving tenants concurrently.
    """
    base = dirty_base.copy()
    member = PerfectOracle(ground_truth)
    manager = SessionManager(base, mode="dispatch", config=QOCOConfig(seed=SEED))
    for tenant, query in enumerate((Q3, Q1)):
        manager.open_session(
            query,
            member,
            tenant=f"t{tenant}",
            pool=WorkerPool([member] * N_WORKERS),
        )
    report = manager.run_all()
    clocks = [s.report.wall_clock for s in report.sessions]
    return {
        "session_wall_clocks_s": clocks,
        "concurrent_s": max(clocks) if clocks else 0.0,
        "sequential_s": sum(clocks),
        "committed": report.committed,
        "failed": report.failed,
    }


def bench_report() -> dict:
    ground_truth, dirty = build_session()
    fork = bench_fork_vs_copy(dirty)
    shared = run_tenants(ground_truth, dirty, share=True)
    isolated = run_tenants(ground_truth, dirty, share=False)
    fleet = run_dispatch_fleet(ground_truth, dirty)
    saved = isolated["member_answers"] - shared["member_answers"]
    result = {
        "workload": {
            "dataset": "worldcup",
            "facts": len(ground_truth),
            "queries": [Q3.name, Q3.name, Q1.name],
            "seed": SEED,
        },
        "fork_vs_copy": fork,
        "shared": shared,
        "isolated": isolated,
        "member_answers_saved": saved,
        "identical_db": shared["final_db_digest"] == isolated["final_db_digest"],
        "wall_clock": fleet,
    }
    result["metrics"] = {
        # measured time: wide band, a loaded runner may halve the ratio
        "fork_speedup": metric(fork["speedup"], "higher", 0.80),
        # seeded counters: bit-exact across runs
        "shared_member_answers": metric(shared["member_answers"]),
        "isolated_member_answers": metric(isolated["member_answers"]),
        "member_answers_saved": metric(saved, "higher", 0.0),
        "shared_hits": metric(shared["shared_hits"], "higher", 0.0),
        # simulated clocks: deterministic, but leave a sliver for float noise
        "concurrent_s": metric(fleet["concurrent_s"], "lower", 0.01),
        "sequential_s": metric(fleet["sequential_s"], "lower", 0.01),
        "identical_db": metric(int(result["identical_db"])),
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    if result["fork_vs_copy"]["speedup"] < 5.0:
        failures.append(
            f"fork only {result['fork_vs_copy']['speedup']:.1f}x cheaper "
            "than copy (need >= 5x)"
        )
    if result["member_answers_saved"] < 1:
        failures.append(
            "cross-session sharing did not strictly reduce member answers"
        )
    if result["shared"]["shared_hits"] < 1:
        failures.append("the answer board was never hit")
    if not result["identical_db"]:
        failures.append("sharing changed the final database")
    for mode in ("shared", "isolated"):
        if result[mode]["failed"] or result[mode]["replays"]:
            failures.append(f"{mode} run had failures or unexpected replays")
    if result["wall_clock"]["failed"]:
        failures.append("a dispatch-mode session failed")
    if (
        result["wall_clock"]["concurrent_s"]
        >= result["wall_clock"]["sequential_s"]
    ):
        failures.append("concurrent service was not faster than sequential")
    return failures


def test_server_contract():
    """The ISSUE 4 acceptance gate, end to end."""
    result = bench_report()
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_server.json"
    result = bench_report()
    write_payload(out, result)
    fork = result["fork_vs_copy"]
    print(
        f"fork {fork['fork_median_us']:.1f}us vs copy "
        f"{fork['copy_median_us']:.1f}us on {fork['facts']} facts "
        f"({fork['speedup']:.0f}x)"
    )
    for mode in ("shared", "isolated"):
        row = result[mode]
        print(
            f"{mode:9s} member answers {row['member_answers']:>4d}  "
            f"cost {row['cost']:>3d}  board hits {row['shared_hits']:>3d}"
        )
    print(
        f"sharing saved {result['member_answers_saved']} member answers; "
        f"concurrent {result['wall_clock']['concurrent_s']:.0f}s vs "
        f"sequential {result['wall_clock']['sequential_s']:.0f}s"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
