"""Evaluation backends: conformance digests + the columnar speed gate.

The contract (ISSUE 6): on the full worldcup-scale Soccer database the
vectorized columnar backend must answer the join-heavy workload queries
at least ``SPEEDUP_FLOOR``x faster than the naive backtracking
reference, while producing bit-identical answers — and the SQL backend
(DuckDB when installed, stdlib sqlite3 otherwise) must agree as well.

Timing protocol: the reference is timed cold per query (backtracking
keeps no per-database state); the columnar and SQL engines are warmed
once so the dictionary-encode / table-sync cost — paid once per
``Database.relation_version``, amortized across a cleaning session —
stays out of the steady-state measurement, then take the best of
``REPEATS`` runs.  Answer sets are deterministic (seeded generator), so
their digests are exact metrics; the speedup carries a wide tolerance
band for loaded CI runners, with the hard floor asserted here.

Run under pytest (``pytest benchmarks/bench_evaluator.py``) or as a
script (``python benchmarks/bench_evaluator.py [out.json]``), which
writes ``BENCH_evaluator.json`` for ``check_regression.py``.
"""

from __future__ import annotations

import sys
import time

from bench_common import json_digest, metric, write_payload
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.query.backend import NaiveBackend, resolve_backend
from repro.workloads import SOCCER_QUERIES

#: The join-heavy soccer queries — where a vectorized join must shine.
GATED_QUERIES = ("Q2", "Q4")
SPEEDUP_FLOOR = 10.0
REPEATS = 5

#: Paper scale (~5000 tuples): the backtracking baseline is ~tens of
#: milliseconds per join query, big enough to time reliably.
SCALE = WorldCupConfig()


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_report() -> dict:
    database = worldcup_database(SCALE)
    naive = NaiveBackend()
    columnar = resolve_backend("columnar")
    sql = resolve_backend("sql")

    queries_payload = {}
    speedups = []
    agree = True
    for name in GATED_QUERIES:
        query = SOCCER_QUERIES[name]
        reference = naive.evaluate(query, database)
        naive_s = _best_of(lambda: naive.evaluate(query, database), 1)
        # warm: encode columns / ship tables once, outside the clock
        columnar_answers = columnar.evaluate(query, database)
        sql_answers = sql.evaluate(query, database)
        columnar_s = _best_of(lambda: columnar.evaluate(query, database))
        sql_s = _best_of(lambda: sql.evaluate(query, database))
        agree = agree and columnar_answers == reference == sql_answers
        speedup = naive_s / max(1e-9, columnar_s)
        speedups.append(speedup)
        queries_payload[name] = {
            "n_answers": len(reference),
            "answers_digest": json_digest(sorted(map(repr, reference))),
            "naive_s": naive_s,
            "columnar_s": columnar_s,
            "sql_s": sql_s,
            "columnar_speedup": speedup,
            "sql_speedup": naive_s / max(1e-9, sql_s),
        }

    result = {
        "workload": {
            "database_size": len(database),
            "queries": list(GATED_QUERIES),
            "sql_engine": sql.preferred.engine,
            "repeats": REPEATS,
        },
        "queries": queries_payload,
        "columnar_speedup_min": min(speedups),
        "backends_agree": agree,
    }
    result["metrics"] = {
        # deterministic, seeded: answers must reproduce exactly
        "backends_agree": metric(int(agree)),
        **{
            f"{name}_n_answers": metric(payload["n_answers"])
            for name, payload in queries_payload.items()
        },
        **{
            f"{name}_answers_digest": metric(payload["answers_digest"])
            for name, payload in queries_payload.items()
        },
        # timing: wide band for loaded CI boxes — the hard floor is the
        # SPEEDUP_FLOOR assertion, the baseline band catches slow decay
        "columnar_speedup_min": metric(
            result["columnar_speedup_min"], "higher", 0.65
        ),
    }
    return result


def test_columnar_speedup_contract():
    """The ISSUE 6 acceptance gate: ≥10x on worldcup-scale joins."""
    result = bench_report()
    assert result["backends_agree"], "backends diverged on workload answers"
    assert result["columnar_speedup_min"] >= SPEEDUP_FLOOR, (
        f"columnar speedup {result['columnar_speedup_min']:.1f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_evaluator.json"
    result = bench_report()
    write_payload(out, result)
    for name, payload in result["queries"].items():
        print(
            f"{name}: naive {payload['naive_s'] * 1e3:7.1f} ms   "
            f"columnar {payload['columnar_s'] * 1e3:7.2f} ms "
            f"({payload['columnar_speedup']:5.1f}x)   "
            f"sql {payload['sql_s'] * 1e3:7.2f} ms "
            f"({payload['sql_speedup']:5.1f}x)   "
            f"{payload['n_answers']} answers"
        )
    print(
        f"min columnar speedup: {result['columnar_speedup_min']:.1f}x "
        f"(floor {SPEEDUP_FLOOR}x)   agree: {result['backends_agree']}   "
        f"sql engine: {result['workload']['sql_engine']}"
    )
    print(f"wrote {out}")
    ok = (
        result["backends_agree"]
        and result["columnar_speedup_min"] >= SPEEDUP_FLOOR
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
