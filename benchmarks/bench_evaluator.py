"""Microbenchmarks of the substrate: query evaluation and witnesses.

The paper reports query-selection latency of "not more than one or two
seconds"; these benchmarks confirm the pure-Python engine stays well
inside that envelope on the ~5000-tuple Soccer database.
"""

import pytest

from repro.query.evaluator import Evaluator, evaluate
from repro.workloads import Q1, Q2, Q3, Q4, Q5


@pytest.mark.parametrize(
    "query", [Q1, Q2, Q3, Q4, Q5], ids=["Q1", "Q2", "Q3", "Q4", "Q5"]
)
def test_evaluate_soccer_query(benchmark, worldcup_gt, query):
    answers = benchmark(lambda: evaluate(query, worldcup_gt))
    assert answers  # every workload query is non-empty on the ground truth


def test_witness_enumeration(benchmark, worldcup_gt):
    evaluator = Evaluator(Q3, worldcup_gt)
    answer = sorted(evaluator.answers())[0]
    witnesses = benchmark(lambda: Evaluator(Q3, worldcup_gt).witnesses(answer))
    assert witnesses


def test_full_result_with_assignments(benchmark, worldcup_gt):
    def enumerate_assignments():
        return sum(1 for _ in Evaluator(Q2, worldcup_gt).assignments())

    count = benchmark(enumerate_assignments)
    assert count >= 1
