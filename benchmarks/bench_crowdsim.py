"""Section 7.2 timing narrative — simulated crowd wall clock.

The paper's real-crowd run reports "60% of the errors ... were
identified and corrected within an hour ... 90% was fixed within
another hour, and the whole experiment completed within 3.5 hours."
This benchmark replays an actual Q3 cleaning log through the
discrete-event crowd simulator and checks the same qualitative
profile: a fast first hour, a long tail, and a large speedup of the
parallel dispatch policy (§6.2) over sequential dispatch.
"""


from repro.core.qoco import QOCO, QOCOConfig
from repro.crowdsim.simulator import compare_policies
from repro.experiments.harness import plant_errors
from repro.experiments.reporting import render_table
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.workloads import Q3

HOUR = 3600.0


def test_crowd_wall_clock_profile(benchmark, worldcup_gt):
    def run():
        errors = plant_errors(worldcup_gt, Q3, n_wrong=5, n_missing=5, seed=301)
        dirty = errors.dirty.copy()
        oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        QOCO(dirty, oracle, QOCOConfig(seed=301)).clean(Q3)
        return compare_policies(
            oracle.log, n_experts=10, votes_per_closed=3,
            median_latency=120.0, seed=301,
        )

    timelines = benchmark.pedantic(run, rounds=1, iterations=1)
    parallel = timelines["parallel"]
    sequential = timelines["sequential"]

    rows = [
        ("policy", "makespan (h)", "60% done (h)", "90% done (h)"),
    ]
    table_rows = []
    for name, timeline in (("parallel", parallel), ("sequential", sequential)):
        table_rows.append(
            (
                name,
                f"{timeline.makespan / HOUR:.2f}",
                f"{timeline.time_to_fraction(0.6) / HOUR:.2f}",
                f"{timeline.time_to_fraction(0.9) / HOUR:.2f}",
            )
        )
    print()
    print(render_table(rows[0], table_rows))

    # Shape: parallel dispatch is much faster, and most of the work lands
    # early (the paper's 60%-within-an-hour profile).
    assert parallel.makespan < sequential.makespan
    assert parallel.time_to_fraction(0.6) < 0.75 * parallel.makespan
    benchmark.extra_info["parallel_makespan_h"] = parallel.makespan / HOUR
    benchmark.extra_info["sequential_makespan_h"] = sequential.makespan / HOUR


def test_parallel_algorithm_rounds(benchmark, worldcup_gt):
    """Appendix B: the round-based main loop needs far fewer crowd
    latencies than the sequential loop needs questions."""
    from repro.core.parallel import ParallelQOCO

    def run():
        errors = plant_errors(worldcup_gt, Q3, n_wrong=5, n_missing=5, seed=302)
        sequential_db = errors.dirty.copy()
        sequential_oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        QOCO(sequential_db, sequential_oracle, QOCOConfig(seed=302)).clean(Q3)

        parallel_db = errors.dirty.copy()
        parallel_oracle = AccountingOracle(PerfectOracle(worldcup_gt))
        report = ParallelQOCO(parallel_db, parallel_oracle, seed=302).clean(Q3)
        from repro.query.evaluator import evaluate

        assert evaluate(Q3, parallel_db) == evaluate(Q3, sequential_db)
        return {
            "sequential_questions": sequential_oracle.log.question_count,
            "parallel_questions": parallel_oracle.log.question_count,
            "parallel_rounds": report.rounds,
            "peak_width": report.peak_width,
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["metric", "value"], sorted(outcome.items())))
    assert outcome["parallel_rounds"] < outcome["sequential_questions"] / 2
    benchmark.extra_info.update(outcome)
