"""Telemetry overhead benchmarks.

The contract (ISSUE 1): disabled telemetry must cost one attribute
lookup per event, keeping the overhead on ``bench_evaluator.py``-style
workloads under 5%.  Three measurements keep that honest:

* ``evaluate`` with telemetry disabled (the default state every other
  benchmark runs under — compare against ``bench_evaluator.py``);
* ``evaluate`` with telemetry enabled, aggregates only and with an
  in-memory sink (the worst case tests run under);
* the per-event guard cost itself, measured directly.

Run with ``pytest benchmarks/bench_telemetry.py``.
"""

from __future__ import annotations

import timeit

import pytest

from repro.query.evaluator import evaluate
from repro.telemetry import TELEMETRY, InMemorySink, telemetry_session
from repro.workloads import EX1, Q2


@pytest.fixture(autouse=True)
def _clean_hub():
    yield
    TELEMETRY.disable()
    for sink in TELEMETRY.sinks:
        TELEMETRY.remove_sink(sink)
    TELEMETRY.reset()


@pytest.mark.benchmark(group="telemetry-evaluate")
def test_evaluate_telemetry_disabled(benchmark, worldcup_gt):
    """The default state: every event is one ``tel.enabled`` lookup."""
    assert not TELEMETRY.enabled
    answers = benchmark(lambda: evaluate(Q2, worldcup_gt))
    assert answers


@pytest.mark.benchmark(group="telemetry-evaluate")
def test_evaluate_telemetry_enabled_aggregates(benchmark, worldcup_gt):
    """Enabled, no sinks: counters aggregate in-process."""
    TELEMETRY.reset()
    TELEMETRY.enable()
    answers = benchmark(lambda: evaluate(Q2, worldcup_gt))
    assert answers
    assert TELEMETRY.counter("evaluator.index_probes") > 0


@pytest.mark.benchmark(group="telemetry-evaluate")
def test_evaluate_telemetry_enabled_memory_sink(benchmark, worldcup_gt):
    """Enabled with an in-memory sink observing the event stream."""
    sink = InMemorySink()
    TELEMETRY.reset()
    TELEMETRY.enable(sink)

    def run():
        sink.clear()
        return evaluate(Q2, worldcup_gt)

    answers = benchmark(run)
    assert answers


@pytest.mark.benchmark(group="telemetry-cleaning")
def test_cleaning_telemetry_disabled(benchmark):
    from repro.core.qoco import QOCO, QOCOConfig
    from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
    from repro.oracle.base import AccountingOracle
    from repro.oracle.perfect import PerfectOracle

    def run():
        oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
        return QOCO(figure1_dirty(), oracle, QOCOConfig(seed=1)).clean(EX1)

    report = benchmark(run)
    assert report.converged


@pytest.mark.benchmark(group="telemetry-cleaning")
def test_cleaning_telemetry_enabled(benchmark):
    from repro.core.qoco import QOCO, QOCOConfig
    from repro.datasets.figure1 import figure1_dirty, figure1_ground_truth
    from repro.oracle.base import AccountingOracle
    from repro.oracle.perfect import PerfectOracle

    def run():
        with telemetry_session():
            oracle = AccountingOracle(PerfectOracle(figure1_ground_truth()))
            return QOCO(figure1_dirty(), oracle, QOCOConfig(seed=1)).clean(EX1)

    report = benchmark(run)
    assert report.converged


def test_disabled_guard_cost_is_nanoseconds():
    """The disabled fast path — one attribute lookup and a falsy check —
    must stay in the tens-of-nanoseconds range per event.  Allow 2µs to
    be robust on loaded CI machines; a regression to (say) dict lookups
    or sink iteration on the disabled path would blow well past this."""
    assert not TELEMETRY.enabled
    loops = 200_000
    cost = min(
        timeit.repeat(
            "tel.enabled and tel.count('x')",
            globals={"tel": TELEMETRY},
            number=loops,
            repeat=5,
        )
    )
    per_event = cost / loops
    assert per_event < 2e-6, f"disabled guard costs {per_event * 1e9:.0f}ns/event"


def test_disabled_overhead_on_evaluator_is_small(worldcup_gt):
    """A/B the *same* instrumented code with telemetry disabled against
    enabled-with-aggregates: the difference bounds what instrumentation
    can possibly cost, and the disabled side must be the cheap one."""
    assert not TELEMETRY.enabled

    def measure():
        return min(
            timeit.repeat(lambda: evaluate(Q2, worldcup_gt), number=3, repeat=3)
        )

    disabled = measure()
    TELEMETRY.reset()
    TELEMETRY.enable()
    enabled = measure()
    TELEMETRY.disable()
    # generous bound — the point is catching an inverted or pathological
    # fast path, not flaky microtiming
    assert disabled < enabled * 1.10, (
        f"disabled path ({disabled:.4f}s) should not be slower than "
        f"enabled path ({enabled:.4f}s)"
    )
