"""Figure 3c — Mixed cleaning across queries.

Regenerates the paper's panel: Q1, Q2, Q3 with 5 wrong + 5 missing
answers (skew 50%), Algorithm 3 with QOCO / QOCO− / Random deletion and
the Provenance insertion algorithm.

Expected shape: QOCO <= QOCO− <= Random in questions asked.
"""

from conftest import run_figure

from repro.experiments.figures import fig3c

QUESTIONS = 3


def test_fig3c_mixed_multiple_queries(benchmark):
    result = run_figure(benchmark, fig3c)
    for group in ("Q1", "Q2", "Q3"):
        rows = result.by_algorithm(group)
        assert rows["QOCO"][QUESTIONS] <= rows["QOCO-"][QUESTIONS]
        assert rows["QOCO"][QUESTIONS] <= rows["Random"][QUESTIONS]
