"""Figure 3b — Insertion across queries (Provenance / MinCut / Random).

Regenerates the paper's panel: for Q3, Q4, Q5 with 5 missing answers
(noise skew 0%), the stacked bars (missing answers identified /
questions / avoided) per split strategy.

Expected shape: every split beats the naive whole-witness bound; the
Provenance split is best (or tied); Min-Cut vs Random has no consistent
winner.
"""

from conftest import run_figure

from repro.experiments.figures import fig3b

QUESTIONS = 3


def test_fig3b_insertion_multiple_queries(benchmark):
    result = run_figure(benchmark, fig3b)
    totals = {"Provenance": 0, "MinCut": 0, "Random": 0}
    for group in ("Q3", "Q4", "Q5"):
        rows = result.by_algorithm(group)
        for algorithm in totals:
            totals[algorithm] += rows[algorithm][QUESTIONS]
    assert totals["Provenance"] <= totals["MinCut"]
    assert totals["Provenance"] <= totals["Random"]
