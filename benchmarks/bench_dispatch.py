"""Dispatch-engine benchmark: dedup savings and fault-tolerance cost.

The contract (ISSUE 3): on a Soccer workload whose wrong answers share
witness facts across removal tasks, cross-task deduplication must
collect *strictly fewer* member answers than naive routing (every
duplicate re-voted), while producing the identical final database; and
a fault-injected run (no-shows + dropouts + late answers under a
timeout, retries enabled) must still reach the synchronous loop's final
database, paying only retries and wall-clock.

The session: the scaled-down World Cup ground truth with fabricated
``games`` between a hub team (``YUG`` — lexicographically last in the
EU, so the greedy witness tie-break selects its ``teams`` fact first)
and three EU partners.  Every wrong ``Q2`` answer's witness contains
``teams(YUG, EU)``, so all removal tasks ask it in the same dispatch
round — the duplication dedup exists to catch.

Run under pytest (``pytest benchmarks/bench_dispatch.py``) or as a
script (``python benchmarks/bench_dispatch.py [out.json]``), which
writes ``BENCH_dispatch.json``.
"""

from __future__ import annotations

import random
import sys

from bench_common import latency_summary, metric, write_payload
from repro.core.parallel import ParallelQOCO
from repro.crowdsim import lognormal_latency
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.db.tuples import fact
from repro.dispatch import FaultModel, RetryPolicy, dispatch_clean
from repro.oracle.base import AccountingOracle
from repro.oracle.perfect import PerfectOracle
from repro.workloads import Q2

SEED = 5
N_WORKERS = 8
VOTES = 3
HUB = "YUG"
PARTNERS = ("AUT", "BEL", "WAL")
SCALE = WorldCupConfig(players_per_team=6, group_games_per_cup=4)
FAULTS = dict(no_show_rate=0.2, dropout_rate=0.02, late_rate=0.2)
RETRY = RetryPolicy(timeout=300.0, max_retries=6)


def build_session():
    """(ground truth, dirty instance) — the hub-team Q2 workload."""
    ground_truth = worldcup_database(SCALE)
    dirty = ground_truth.copy()
    for i, partner in enumerate(PARTNERS):
        for j in (1, 2):
            dirty.insert(
                fact(
                    "games", f"0{j}.01.19{70 + i}", HUB, partner,
                    "Group", f"{j}:0",
                )
            )
    return ground_truth, dirty


def run_sync(ground_truth, dirty_base) -> dict:
    dirty = dirty_base.copy()
    oracle = AccountingOracle(PerfectOracle(ground_truth))
    report = ParallelQOCO(dirty, oracle, seed=SEED).clean(Q2)
    return {
        "questions": report.log.question_count,
        "cost": report.total_cost,
        "converged": report.converged,
        "final_db_digest": dirty.state_digest(),
    }


def run_dispatch(ground_truth, dirty_base, *, dedup: bool, faulted: bool) -> dict:
    dirty = dirty_base.copy()
    report, engine = dispatch_clean(
        dirty,
        Q2,
        [PerfectOracle(ground_truth)] * N_WORKERS,
        votes_per_closed=VOTES,
        latency=lognormal_latency(120.0),
        rng=random.Random(7),
        dedup=dedup,
        faults=FaultModel(**FAULTS, rng=random.Random(3)) if faulted else None,
        retry=RETRY if faulted else None,
        seed=SEED,
    )
    return {
        "questions": report.log.question_count,
        "cost": report.total_cost,
        "converged": report.converged,
        "rounds": report.rounds,
        "wall_clock_s": report.wall_clock,
        "stats": engine.stats.to_dict(),
        # simulated seconds a worker held each assignment (seeded, so
        # the tail is exact): the p99 is what the retry timeout races
        "answer_latency_s": latency_summary(
            [a.end - a.start for a in engine.timeline.answers]
        ),
        "final_db_digest": dirty.state_digest(),
    }


def bench_report() -> dict:
    ground_truth, dirty = build_session()
    sync = run_sync(ground_truth, dirty)
    dedup = run_dispatch(ground_truth, dirty, dedup=True, faulted=False)
    naive = run_dispatch(ground_truth, dirty, dedup=False, faulted=False)
    faulted = run_dispatch(ground_truth, dirty, dedup=True, faulted=True)
    saved = (
        naive["stats"]["member_answers"] - dedup["stats"]["member_answers"]
    )
    result = {
        "workload": {
            "query": Q2.name,
            "ground_truth_size": len(ground_truth),
            "hub": HUB,
            "partners": list(PARTNERS),
            "workers": N_WORKERS,
            "votes_per_closed": VOTES,
            "seed": SEED,
        },
        "sync": sync,
        "dedup": dedup,
        "naive": naive,
        "faulted": faulted,
        "member_answers_saved": saved,
        "dedup_coalesced": dedup["stats"]["dedup_coalesced"],
        "identical_db_dedup": dedup["final_db_digest"] == sync["final_db_digest"],
        "identical_db_naive": naive["final_db_digest"] == sync["final_db_digest"],
        "identical_db_faulted": faulted["final_db_digest"]
        == sync["final_db_digest"],
    }
    # everything here is seeded and simulated, so "exact" is safe: a
    # changed counter means changed behaviour, not a loaded runner
    result["metrics"] = {
        "sync_cost": metric(sync["cost"]),
        "dedup_cost": metric(dedup["cost"]),
        "naive_cost": metric(naive["cost"]),
        "faulted_cost": metric(faulted["cost"]),
        "member_answers_saved": metric(saved, "higher", 0.0),
        "dedup_coalesced": metric(result["dedup_coalesced"], "higher", 0.0),
        "faulted_retries": metric(faulted["stats"]["retries"]),
        "faulted_wall_clock_s": metric(faulted["wall_clock_s"], "lower", 0.10),
        # the seeded simulation makes even the tail deterministic
        "dedup_answer_p50_s": metric(dedup["answer_latency_s"]["p50"]),
        "dedup_answer_p99_s": metric(dedup["answer_latency_s"]["p99"]),
        "faulted_answer_p99_s": metric(faulted["answer_latency_s"]["p99"]),
        "identical_db_all": metric(
            int(
                result["identical_db_dedup"]
                and result["identical_db_naive"]
                and result["identical_db_faulted"]
            )
        ),
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    if result["dedup_coalesced"] < 1:
        failures.append("dedup never coalesced a duplicate question")
    if result["member_answers_saved"] < 1:
        failures.append("dedup did not strictly reduce member answers")
    if result["dedup"]["cost"] >= result["naive"]["cost"]:
        failures.append("dedup did not strictly reduce question cost")
    for mode in ("dedup", "naive", "faulted"):
        if not result[f"identical_db_{mode}"]:
            failures.append(f"{mode} run diverged from the synchronous database")
        if not result[mode]["converged"]:
            failures.append(f"{mode} run did not converge")
    if result["faulted"]["stats"]["retries"] < 1:
        failures.append("faulted run exercised no retries")
    return failures


def test_dispatch_session_contract():
    """The ISSUE 3 acceptance gate, end to end."""
    result = bench_report()
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_dispatch.json"
    result = bench_report()
    write_payload(out, result)
    for mode in ("sync", "dedup", "naive", "faulted"):
        row = result[mode]
        stats = row.get("stats", {})
        latency = row.get("answer_latency_s", {})
        print(
            f"{mode:8s} cost {row['cost']:>3d}  "
            f"member answers {stats.get('member_answers', '-'):>4}  "
            f"retries {stats.get('retries', '-'):>3}  "
            f"wall-clock {row.get('wall_clock_s', 0.0):8.1f}s  "
            f"answer p50/p99 {latency.get('p50', 0.0):6.1f}/"
            f"{latency.get('p99', 0.0):6.1f}s  "
            f"converged {row['converged']}"
        )
    print(
        f"dedup coalesced {result['dedup_coalesced']} duplicates, "
        f"saving {result['member_answers_saved']} member answers"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
