"""Scaling sweep: crowd cost is data-size invariant; runtime is not.

The paper's efficiency claim is that question counts depend on the
*errors*, not on the database size.  This benchmark scales the World Cup
generator with the ``replicas`` knob (each replica clones every game and
goal into a fresh block of years) and checks that cleaning the same five
planted wrong answers costs a near-constant number of questions while
evaluation time grows with the data.
"""

import random
import time

from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.datasets.noise import inject_result_errors
from repro.experiments.harness import run_deletion
from repro.experiments.reporting import render_table
from repro.workloads import Q1


def _scale(replicas):
    return worldcup_database(WorldCupConfig(replicas=replicas))


def test_scaling_question_counts(benchmark):
    def run():
        rows = []
        for replicas in (1, 2, 4):
            gt = _scale(replicas)
            errors = inject_result_errors(
                gt, Q1, n_wrong=5, n_missing=0, rng=random.Random(401)
            )
            start = time.perf_counter()
            bar = run_deletion(gt, Q1, errors, "QOCO", seed=401)
            elapsed = time.perf_counter() - start
            rows.append((len(gt), bar.questions, f"{elapsed * 1000:.0f}ms"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(["|D_G|", "questions", "cleaning time"], rows))
    sizes = [row[0] for row in rows]
    questions = [row[1] for row in rows]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
    # question counts stay within a small band while data grows ~3x
    assert max(questions) <= 2 * max(1, min(questions))
