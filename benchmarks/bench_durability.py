"""Durability benchmark: commit-ack overhead, recovery throughput, crash matrix.

The contract (ISSUE 5): a durable server (WAL + fsync per commit) must
stay within a bounded overhead of the plain in-memory server on the
same multi-tenant workload; ``recover()`` must replay a synthetic
commit log at a useful rate and land on the bit-identical database; and
a strided crash-injection matrix over that log must pass at every
sampled truncation offset.

Run under pytest (``pytest benchmarks/bench_durability.py``) or as a
script (``python benchmarks/bench_durability.py [out.json]``), which
writes ``BENCH_durability.json``.
"""

from __future__ import annotations

import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

from bench_common import metric, write_payload
from repro.core.qoco import QOCOConfig
from repro.datasets.noise import inject_result_errors
from repro.datasets.worldcup import WorldCupConfig, worldcup_database
from repro.db.database import Database
from repro.durability import DurabilityStore, codec, read_wal, recover, run_crash_matrix
from repro.oracle.perfect import PerfectOracle
from repro.server import SessionManager
from repro.workloads import Q1, Q3

SEED = 11
SCALE = WorldCupConfig(players_per_team=6, group_games_per_cup=4)
SYNTHETIC_COMMITS = 300
CRASH_STRIDE = 97
#: Generous ceiling for fsync-per-commit vs in-memory: the workload is
#: oracle-dominated, so even a slow disk should stay well inside this.
OVERHEAD_CEILING = 10.0


def build_session():
    """(ground truth, dirty instance) — worldcup with Q3 result errors."""
    ground_truth = worldcup_database(SCALE)
    errors = inject_result_errors(
        ground_truth, Q3, 3, 2, rng=random.Random(SEED)
    )
    return ground_truth, errors.dirty


# ----------------------------------------------------------------------
# commit-ack overhead: plain vs durable server on the same workload
# ----------------------------------------------------------------------
def run_fleet(ground_truth, dirty_base, durable_dir=None, sync="always") -> dict:
    base = dirty_base.copy()
    member = PerfectOracle(ground_truth)
    kwargs = {}
    if durable_dir is not None:
        kwargs = {"durable_path": durable_dir, "sync": sync}
    manager = SessionManager(
        base, config=QOCOConfig(seed=SEED), max_concurrent=1, **kwargs
    )
    for tenant, query in enumerate((Q3, Q3, Q1)):
        manager.open_session(query, member, tenant=f"t{tenant}")
    start = time.perf_counter()
    report = manager.run_all()
    elapsed = time.perf_counter() - start
    row = {
        "elapsed_s": elapsed,
        "committed": report.committed,
        "failed": report.failed,
        "cost": report.total_cost,
        "final_db_digest": base.state_digest(),
    }
    if durable_dir is not None:
        wal = read_wal(Path(durable_dir) / "wal.log")
        row["wal_bytes"] = wal.valid_bytes
        row["wal_records"] = len(wal.records)
    manager.close()
    return row


def bench_overhead(ground_truth, dirty, workdir: Path) -> dict:
    plain = run_fleet(ground_truth, dirty)
    fsync = run_fleet(ground_truth, dirty, workdir / "always", sync="always")
    batch = run_fleet(ground_truth, dirty, workdir / "batch", sync="batch")
    return {
        "plain": plain,
        "durable_fsync": fsync,
        "durable_batch": batch,
        "fsync_overhead_x": fsync["elapsed_s"] / max(1e-9, plain["elapsed_s"]),
        "batch_overhead_x": batch["elapsed_s"] / max(1e-9, plain["elapsed_s"]),
        "identical_db": plain["final_db_digest"] == fsync["final_db_digest"]
        == batch["final_db_digest"],
    }


# ----------------------------------------------------------------------
# recovery throughput + crash matrix over a synthetic commit log
# ----------------------------------------------------------------------
def build_synthetic_log(directory: Path) -> tuple[Database, dict]:
    """A checkpoint plus SYNTHETIC_COMMITS single-session commit records.

    Alternating delete/insert edits over the worldcup ``games`` relation
    — every record replays real :class:`Edit` objects through the real
    store, so records/s below measures the actual recovery path.
    """
    database = worldcup_database(SCALE)
    live = database.copy()
    store = DurabilityStore(directory, sync="batch")
    store.write_checkpoint(
        {
            "database": codec.database_to_obj(database),
            "digest": codec.database_digest(database),
            "ledger": {},
            "board": [],
        }
    )
    rng = random.Random(SEED)
    games = sorted(live.facts("games"), key=repr)
    ledger: dict[str, int] = {}
    for index in range(SYNTHETIC_COMMITS):
        fork = live.fork()
        victim = games[rng.randrange(len(games))]
        if victim in fork:
            fork.delete(victim)
        else:
            fork.insert(victim)
        tenant = f"t{index % 4}"
        store.append(
            {
                "type": "commit",
                "session": index,
                "tenant": tenant,
                "cost": 1,
                "edits": fork.export_edit_log(),
                "board": [],
            }
        )
        live.apply(fork.pending_edits)
        ledger[tenant] = ledger.get(tenant, 0) + 1
    store.close()
    return live, ledger


def bench_recovery(directory: Path, live: Database, ledger: dict) -> dict:
    start = time.perf_counter()
    state = recover(directory)
    elapsed = time.perf_counter() - start
    matrix = run_crash_matrix(
        directory, live_database=live, live_ledger=ledger, stride=CRASH_STRIDE
    )
    return {
        "records_replayed": state.records_replayed,
        "recovery_s": elapsed,
        "records_per_s": state.records_replayed / max(1e-9, elapsed),
        "digest_matches_live": state.digest == live.state_digest(),
        "ledger_matches_live": state.ledger == ledger,
        "crash_matrix": {
            "wal_bytes": matrix.wal_bytes,
            "points": len(matrix.points),
            "failures": len(matrix.failures),
            "ok": matrix.ok,
        },
    }


def bench_report() -> dict:
    ground_truth, dirty = build_session()
    workdir = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        overhead = bench_overhead(ground_truth, dirty, workdir)
        log_dir = workdir / "synthetic"
        live, ledger = build_synthetic_log(log_dir)
        recovery = bench_recovery(log_dir, live, ledger)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    result = {
        "workload": {
            "dataset": "worldcup",
            "facts": len(ground_truth),
            "queries": [Q3.name, Q3.name, Q1.name],
            "synthetic_commits": SYNTHETIC_COMMITS,
            "crash_stride": CRASH_STRIDE,
            "seed": SEED,
        },
        "overhead": overhead,
        "recovery": recovery,
    }
    result["metrics"] = {
        # seeded counters: exact
        "committed": metric(overhead["durable_fsync"]["committed"]),
        "wal_records": metric(overhead["durable_fsync"]["wal_records"]),
        "records_replayed": metric(recovery["records_replayed"]),
        "crash_points": metric(recovery["crash_matrix"]["points"]),
        # WAL volume per workload is deterministic modulo float formatting
        "wal_bytes": metric(overhead["durable_fsync"]["wal_bytes"], "lower", 0.05),
        # measured time: wide bands, correctness gates live in check()
        "fsync_overhead_x": metric(overhead["fsync_overhead_x"], "lower", 1.00),
        "recovery_records_per_s": metric(
            recovery["records_per_s"], "higher", 0.80
        ),
        # booleans: any flip is a correctness regression
        "crash_matrix_ok": metric(int(recovery["crash_matrix"]["ok"])),
        "identical_db": metric(int(overhead["identical_db"])),
        "digest_matches_live": metric(int(recovery["digest_matches_live"])),
    }
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    overhead = result["overhead"]
    recovery = result["recovery"]
    for mode in ("plain", "durable_fsync", "durable_batch"):
        if overhead[mode]["failed"]:
            failures.append(f"{mode} run had failed sessions")
    if not overhead["identical_db"]:
        failures.append("durability changed the final database")
    if overhead["durable_fsync"]["wal_records"] < overhead["durable_fsync"][
        "committed"
    ]:
        failures.append("fewer WAL records than commits: a commit went undurable")
    if overhead["fsync_overhead_x"] > OVERHEAD_CEILING:
        failures.append(
            f"fsync commit path {overhead['fsync_overhead_x']:.1f}x slower "
            f"than in-memory (ceiling {OVERHEAD_CEILING}x)"
        )
    if recovery["records_replayed"] != SYNTHETIC_COMMITS:
        failures.append(
            f"recovery replayed {recovery['records_replayed']} of "
            f"{SYNTHETIC_COMMITS} records"
        )
    if not recovery["digest_matches_live"]:
        failures.append("recovered database diverged from the live replica")
    if not recovery["ledger_matches_live"]:
        failures.append("recovered ledger diverged from the live replica")
    if not recovery["crash_matrix"]["ok"]:
        failures.append(
            f"crash matrix failed at {recovery['crash_matrix']['failures']} "
            f"of {recovery['crash_matrix']['points']} truncation offsets"
        )
    return failures


def test_durability_contract():
    """The ISSUE 5 acceptance gate, end to end."""
    result = bench_report()
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_durability.json"
    result = bench_report()
    write_payload(out, result)
    overhead = result["overhead"]
    recovery = result["recovery"]
    print(
        f"plain {overhead['plain']['elapsed_s'] * 1e3:7.1f} ms   "
        f"fsync {overhead['durable_fsync']['elapsed_s'] * 1e3:7.1f} ms "
        f"({overhead['fsync_overhead_x']:.2f}x)   "
        f"batch {overhead['durable_batch']['elapsed_s'] * 1e3:7.1f} ms "
        f"({overhead['batch_overhead_x']:.2f}x)"
    )
    print(
        f"recovery: {recovery['records_replayed']} records in "
        f"{recovery['recovery_s'] * 1e3:.1f} ms "
        f"({recovery['records_per_s']:,.0f} records/s)"
    )
    matrix = recovery["crash_matrix"]
    print(
        f"crash matrix: {matrix['points']} offsets over {matrix['wal_bytes']} "
        f"bytes, {matrix['failures']} failures"
    )
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
