"""Sharded cleaning benchmark: million-tuple worldcup, 4 worker processes.

The contract (ISSUE 7): partition the scaled worldcup database
(~1M tuples via ``WorldCupConfig.replicas``) by tournament year, clean
Q3 with `ShardedQOCO` in parallel worker processes, and

* the merged database must be **bit-identical** (``state_digest``) to a
  single-process QOCO clean of the same dirty database — and to a
  1-shard sharded run, so the sharding machinery itself is
  digest-neutral;
* edit/question counters must reproduce exactly (seeded, deterministic);
* on a machine with >= 4 CPUs, 4 shard processes must finish >= 3x
  faster end-to-end than 1 shard process.  The speedup measurement is
  recorded everywhere but only *gated* where the parallelism physically
  exists (the committed baseline is CPU-count independent).

What the timed runs measure: partition + payload shipping + worker
rebuild/evaluation/cleaning + oracle round-trips + merge.  The sharded
runs simulate a 2 ms crowd response per charged question
(``oracle_latency`` — a real crowd is minutes, §7.2); shards both
compute *and* wait on the crowd concurrently, which is exactly the
parallelism Appendix B describes.  The one expensive simulation
artifact — ``PerfectOracle``'s ground-truth evaluation — is warmed once
up front and shared across runs so no timed window measures it.

Run under pytest (``pytest benchmarks/bench_shard.py``, reduced scale)
or as a script (``python benchmarks/bench_shard.py [out.json]``), which
writes ``BENCH_shard.json`` at full scale.
"""

from __future__ import annotations

import os
import sys
import time

from bench_common import metric, write_payload
from repro.core.qoco import QOCO
from repro.datasets.worldcup import (
    WorldCupConfig,
    inject_fake_champions,
    worldcup_database,
    worldcup_partition_spec,
    worldcup_years,
)
from repro.oracle.perfect import PerfectOracle
from repro.shard import ShardedQOCO
from repro.workloads import Q3

#: ~1,000,000 facts (530 replicas x ~1880 games+goals + dimensions)
REPLICAS = 530
#: every 2nd tournament year gets a fake champion (deletion-only noise
#: whose witnesses stay inside that year's shard)
NOISE_STRIDE = 2
SHARDS = 4
SPEEDUP_FLOOR = 3.0
#: simulated crowd response per charged question, seconds (a live crowd
#: is ~5 orders of magnitude slower; see docs/sharding.md)
ORACLE_LATENCY = 0.002


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload(replicas: int = REPLICAS):
    """(ground truth, dirty copy, injected-fact count, warmed oracle)."""
    config = WorldCupConfig(replicas=replicas)
    truth = worldcup_database(config)
    dirty = truth.copy()
    injected = inject_fake_champions(dirty, worldcup_years(config)[::NOISE_STRIDE])
    oracle = PerfectOracle(truth)
    # materialize the simulated oracle's ground-truth answer set now:
    # it is a fixture of the simulation (a real crowd just *knows*), not
    # a cost any timed pipeline below should carry
    oracle.complete_result(Q3, ())
    return truth, dirty, injected, oracle


def run_unsharded(oracle, dirty):
    merged = dirty.copy()
    fork = merged.fork()
    start = time.perf_counter()
    report = QOCO(fork, oracle, backend="columnar").clean(Q3)
    elapsed = time.perf_counter() - start
    merged.apply_exported(fork.export_edit_log())
    return {
        "digest": merged.state_digest(),
        "edits": len(report.edits),
        "wrong_removed": len(report.wrong_answers_removed),
        "cost": report.total_cost,
        "seconds": elapsed,
    }


def run_sharded(oracle, dirty, shards: int):
    merged = dirty.copy()
    driver = ShardedQOCO(
        merged,
        oracle,
        spec=worldcup_partition_spec(),
        shards=shards,
        mode="process",
        oracle_latency=ORACLE_LATENCY,
        backend="columnar",
    )
    report = driver.clean(Q3)
    worker_seconds = [o.seconds for o in report.outcomes]
    return {
        "shards": shards,
        "digest": merged.state_digest(),
        "edits_applied": report.edits_applied,
        "wrong_removed": sum(o.wrong_answers_removed for o in report.outcomes),
        "cost": report.total_cost,
        "rounds": report.rounds,
        "converged": report.converged,
        "seconds": report.wall_clock,
        # sum/max over the workers' own clocks = the parallel fraction
        "worker_seconds_sum": sum(worker_seconds),
        "worker_seconds_max": max(worker_seconds, default=0.0),
    }


def bench_report(replicas: int = REPLICAS) -> dict:
    truth, dirty, injected, oracle = build_workload(replicas)
    unsharded = run_unsharded(oracle, dirty)
    single = run_sharded(oracle, dirty, 1)
    parallel = run_sharded(oracle, dirty, SHARDS)
    speedup = single["seconds"] / parallel["seconds"] if parallel["seconds"] else 0.0
    cpus = available_cpus()
    result = {
        "workload": {
            "dataset": "worldcup",
            "replicas": replicas,
            "facts": len(dirty),
            "noise_facts": injected,
            "query": Q3.name,
            "shards": SHARDS,
            "cpus": cpus,
            "oracle_latency": ORACLE_LATENCY,
        },
        "unsharded": unsharded,
        "sharded_1": single,
        "sharded_n": parallel,
        "speedup": speedup,
    }
    result["metrics"] = {
        # deterministic workload shape and outcome: bit-exact across runs
        "facts": metric(len(dirty)),
        "noise_facts": metric(injected),
        "merged_digest": metric(parallel["digest"]),
        "digest_match_unsharded": metric(int(parallel["digest"] == unsharded["digest"])),
        "digest_match_single_shard": metric(int(parallel["digest"] == single["digest"])),
        "edits_applied": metric(parallel["edits_applied"]),
        "wrong_removed": metric(parallel["wrong_removed"]),
        "cost_sharded_1": metric(single["cost"]),
        "cost_sharded_n": metric(parallel["cost"]),
        "rounds": metric(parallel["rounds"]),
    }
    if cpus >= SHARDS:
        # only gate the wall-clock ratio where 4 workers can actually
        # run in parallel; the committed baseline (possibly produced on
        # a smaller box) must stay environment-independent
        result["metrics"]["speedup"] = metric(speedup, "higher", 0.25)
    return result


def check(result: dict) -> list[str]:
    """The hard gates; returns the failures (empty = pass)."""
    failures = []
    parallel, single, unsharded = (
        result["sharded_n"], result["sharded_1"], result["unsharded"]
    )
    if parallel["digest"] != unsharded["digest"]:
        failures.append("merged digest differs from the single-process clean")
    if parallel["digest"] != single["digest"]:
        failures.append("shard count changed the merged digest")
    if parallel["edits_applied"] != unsharded["edits"]:
        failures.append(
            f"sharded clean applied {parallel['edits_applied']} edits, "
            f"unsharded produced {unsharded['edits']}"
        )
    if not parallel["converged"] or not single["converged"]:
        failures.append("a sharded run did not converge")
    if result["workload"]["cpus"] >= SHARDS and result["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"only {result['speedup']:.2f}x speedup at {SHARDS} shard "
            f"processes (need >= {SPEEDUP_FLOOR}x with "
            f"{result['workload']['cpus']} CPUs)"
        )
    return failures


def test_shard_contract():
    """The digest-equality contract at reduced scale (fast enough for a
    test job; the full million-tuple gate runs in script mode)."""
    result = bench_report(replicas=40)
    assert check(result) == []


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "BENCH_shard.json"
    result = bench_report()
    write_payload(out, result)
    workload = result["workload"]
    print(
        f"{workload['facts']} facts, {workload['noise_facts']} noise facts, "
        f"{workload['cpus']} CPUs"
    )
    for name in ("unsharded", "sharded_1", "sharded_n"):
        row = result[name]
        print(f"{name:10s} {row['seconds']:6.1f}s  digest {row['digest'][:16]}")
    print(f"speedup {result['speedup']:.2f}x at {workload['shards']} shard processes")
    failures = check(result)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
