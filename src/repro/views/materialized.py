"""Materialized views with incremental maintenance.

The paper deploys QOCO as a monitor: "QOCO can be activated to monitor
the views that are served to users/applications.  Whenever an error is
reported in a view, QOCO can take over..."  Serving views means keeping
them materialized, and cleaning means editing base tables — so the views
must track edits without full recomputation.

:class:`MaterializedView` keeps, per answer, its *support* — the number
of valid assignments producing it.  Deltas are computed from the changed
fact alone:

* inserting fact ``f``: the new assignments are exactly those valid
  assignments whose witness uses ``f`` (for each body atom unifiable
  with ``f``, bind it and enumerate extensions; deduplicate across
  atoms);
* deleting ``f``: symmetric, enumerated *before* the fact is removed.

``incremental == recompute`` is property-tested over random edit
sequences, and a benchmark shows the speedup on the 5k-tuple database.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from ..db.database import Database
from ..db.edits import Edit, EditKind
from ..db.tuples import Fact
from ..query.ast import Query
from ..query.evaluator import (
    Answer,
    Assignment,
    Evaluator,
    instantiate_head,
)
from ..query.incremental import assignments_using_fact
from ..telemetry import TELEMETRY as _TELEMETRY


class MaterializedView:
    """One query kept materialized over a database.

    The view keeps a shadow set of the facts it has accounted for (only
    for relations the query body mentions), which makes the delta path
    robust against *no-op edits*: ``on_insert`` of a fact that is
    already accounted, or ``on_delete`` of a fact never seen, returns an
    empty delta instead of silently drifting the support counters.
    """

    def __init__(self, query: Query, database: Database) -> None:
        query.validate(database.schema)
        self.query = query
        self.database = database
        self._relations = {atom.relation for atom in query.atoms}
        self._support: Counter = Counter()
        self._accounted: set[Fact] = set()
        self.refresh()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def answers(self) -> set[Answer]:
        return set(self._support)

    def support(self, answer: Answer) -> int:
        """Number of valid assignments currently producing *answer*."""
        return self._support.get(answer, 0)

    def __contains__(self, answer: object) -> bool:
        return answer in self._support

    def __len__(self) -> int:
        return len(self._support)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Full recomputation (used at construction and as a fallback)."""
        _TELEMETRY.count("view.refreshes")
        self._support = Counter()
        self._accounted = set()
        for relation in self._relations:
            self._accounted.update(self.database.facts(relation))
        for assignment in Evaluator(self.query, self.database).assignments():
            self._support[instantiate_head(self.query, assignment)] += 1

    def on_insert(self, fact: Fact) -> set[Answer]:
        """Account for *fact* having just been inserted into the database.

        Returns the answers that newly appeared.  A no-op edit — a fact
        this view already accounted for (e.g. re-inserting an existing
        fact), a fact of a relation the query never reads, or a fact
        that is not actually in the database (the insert never landed) —
        returns an empty delta and leaves the supports untouched.
        """
        if (
            fact.relation not in self._relations
            or fact in self._accounted
            or fact not in self.database
        ):
            _TELEMETRY.count("view.noop_edits")
            return set()
        self._accounted.add(fact)
        added: set[Answer] = set()
        assignments = self._assignments_using(fact)
        if _TELEMETRY.enabled:
            _TELEMETRY.observe("view.delta_size", len(assignments))
        for assignment in assignments:
            answer = instantiate_head(self.query, assignment)
            if self._support[answer] == 0:
                added.add(answer)
            self._support[answer] += 1
        return added

    def on_delete(self, fact: Fact) -> set[Answer]:
        """Account for *fact* being deleted.  **Call before removing it**
        from the database (the lost assignments must still be enumerable).

        Returns the answers that disappeared.  Deleting a fact this view
        never accounted for (absent fact, untracked relation, repeated
        delete) is a no-op: empty delta, supports untouched — support
        counters can never go negative.
        """
        if fact.relation not in self._relations or fact not in self._accounted:
            _TELEMETRY.count("view.noop_edits")
            return set()
        self._accounted.discard(fact)
        removed: set[Answer] = set()
        assignments = self._assignments_using(fact)
        if _TELEMETRY.enabled:
            _TELEMETRY.observe("view.delta_size", len(assignments))
        for assignment in assignments:
            answer = instantiate_head(self.query, assignment)
            current = self._support.get(answer, 0)
            if current == 0:
                continue  # drift guard: never drive a support negative
            if current == 1:
                del self._support[answer]
                removed.add(answer)
            else:
                self._support[answer] = current - 1
        return removed

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def _assignments_using(self, fact: Fact) -> list[Assignment]:
        """Distinct valid assignments whose witness includes *fact*."""
        return assignments_using_fact(Evaluator(self.query, self.database), fact)


class ViewManager:
    """A set of materialized views kept consistent under edits.

    Route all database mutation through :meth:`apply` (or the
    insert/delete helpers); the views stay exact.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: dict[str, MaterializedView] = {}

    def register(self, query: Query, name: Optional[str] = None) -> MaterializedView:
        label = name if name is not None else query.name
        if label in self._views:
            raise ValueError(f"a view named {label!r} is already registered")
        view = MaterializedView(query, self.database)
        self._views[label] = view
        return view

    def view(self, name: str) -> MaterializedView:
        return self._views[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    # -- mutation ------------------------------------------------------
    def insert(self, fact: Fact) -> dict[str, set[Answer]]:
        """Insert a fact; return per-view newly appeared answers.

        A no-op edit (the fact already present) emits the same shape as
        a real one — every registered view mapped to an empty delta — so
        callers folding deltas never special-case the empty dict.
        """
        if not self.database.insert(fact):
            _TELEMETRY.count("view.noop_edits")
            return {name: set() for name in self._views}
        return {
            name: view.on_insert(fact) for name, view in self._views.items()
        }

    def delete(self, fact: Fact) -> dict[str, set[Answer]]:
        """Delete a fact; return per-view answers that disappeared.

        Deleting an absent fact is a consistent no-op (see :meth:`insert`).
        """
        if fact not in self.database:
            _TELEMETRY.count("view.noop_edits")
            return {name: set() for name in self._views}
        changes = {
            name: view.on_delete(fact) for name, view in self._views.items()
        }
        self.database.delete(fact)
        return changes

    def apply(self, edits: Iterable[Edit]) -> dict[str, set[Answer]]:
        """Apply a sequence of edits; merge per-view changed answers."""
        changed: dict[str, set[Answer]] = {name: set() for name in self._views}
        for edit in edits:
            if edit.kind is EditKind.INSERT:
                delta = self.insert(edit.fact)
            else:
                delta = self.delete(edit.fact)
            for name, answers in delta.items():
                changed[name] |= answers
        return changed
