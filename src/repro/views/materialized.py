"""Materialized views with incremental maintenance.

The paper deploys QOCO as a monitor: "QOCO can be activated to monitor
the views that are served to users/applications.  Whenever an error is
reported in a view, QOCO can take over..."  Serving views means keeping
them materialized, and cleaning means editing base tables — so the views
must track edits without full recomputation.

:class:`MaterializedView` keeps, per answer, its *support* — the number
of valid assignments producing it.  Deltas are computed from the changed
fact alone:

* inserting fact ``f``: the new assignments are exactly those valid
  assignments whose witness uses ``f`` (for each body atom unifiable
  with ``f``, bind it and enumerate extensions; deduplicate across
  atoms);
* deleting ``f``: symmetric, enumerated *before* the fact is removed.

``incremental == recompute`` is property-tested over random edit
sequences, and a benchmark shows the speedup on the 5k-tuple database.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from ..db.database import Database
from ..db.edits import Edit, EditKind
from ..db.tuples import Fact
from ..query.ast import Atom, Query, Var
from ..query.evaluator import (
    Answer,
    Assignment,
    Evaluator,
    instantiate_head,
    _bind_atom,
)


class MaterializedView:
    """One query kept materialized over a database."""

    def __init__(self, query: Query, database: Database) -> None:
        query.validate(database.schema)
        self.query = query
        self.database = database
        self._support: Counter = Counter()
        self.refresh()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def answers(self) -> set[Answer]:
        return set(self._support)

    def support(self, answer: Answer) -> int:
        """Number of valid assignments currently producing *answer*."""
        return self._support.get(answer, 0)

    def __contains__(self, answer: object) -> bool:
        return answer in self._support

    def __len__(self) -> int:
        return len(self._support)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Full recomputation (used at construction and as a fallback)."""
        self._support = Counter()
        for assignment in Evaluator(self.query, self.database).assignments():
            self._support[instantiate_head(self.query, assignment)] += 1

    def on_insert(self, fact: Fact) -> set[Answer]:
        """Account for *fact* having just been inserted into the database.

        Returns the answers that newly appeared.
        """
        added: set[Answer] = set()
        for assignment in self._assignments_using(fact):
            answer = instantiate_head(self.query, assignment)
            if self._support[answer] == 0:
                added.add(answer)
            self._support[answer] += 1
        return added

    def on_delete(self, fact: Fact) -> set[Answer]:
        """Account for *fact* being deleted.  **Call before removing it**
        from the database (the lost assignments must still be enumerable).

        Returns the answers that disappeared.
        """
        removed: set[Answer] = set()
        for assignment in self._assignments_using(fact):
            answer = instantiate_head(self.query, assignment)
            self._support[answer] -= 1
            if self._support[answer] <= 0:
                del self._support[answer]
                removed.add(answer)
        return removed

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def _assignments_using(self, fact: Fact) -> list[Assignment]:
        """Distinct valid assignments whose witness includes *fact*."""
        evaluator = Evaluator(self.query, self.database)
        seen: set[frozenset] = set()
        result: list[Assignment] = []
        for index, atom in enumerate(self.query.atoms):
            if atom.relation != fact.relation or atom.arity != fact.arity:
                continue
            partial: Assignment = {}
            bound = _bind_atom(atom, fact, partial)
            if bound is None:
                continue
            for assignment in evaluator.assignments(partial):
                # the assignment must actually map THIS atom to the fact —
                # guaranteed by the binding — but may also arise from other
                # atom positions; dedupe on the assignment itself.
                key = frozenset(assignment.items())
                if key in seen:
                    continue
                seen.add(key)
                result.append(assignment)
        return result


class ViewManager:
    """A set of materialized views kept consistent under edits.

    Route all database mutation through :meth:`apply` (or the
    insert/delete helpers); the views stay exact.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: dict[str, MaterializedView] = {}

    def register(self, query: Query, name: Optional[str] = None) -> MaterializedView:
        label = name if name is not None else query.name
        if label in self._views:
            raise ValueError(f"a view named {label!r} is already registered")
        view = MaterializedView(query, self.database)
        self._views[label] = view
        return view

    def view(self, name: str) -> MaterializedView:
        return self._views[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    # -- mutation ------------------------------------------------------
    def insert(self, fact: Fact) -> dict[str, set[Answer]]:
        """Insert a fact; return per-view newly appeared answers."""
        if not self.database.insert(fact):
            return {}
        return {
            name: view.on_insert(fact) for name, view in self._views.items()
        }

    def delete(self, fact: Fact) -> dict[str, set[Answer]]:
        """Delete a fact; return per-view answers that disappeared."""
        if fact not in self.database:
            return {}
        changes = {
            name: view.on_delete(fact) for name, view in self._views.items()
        }
        self.database.delete(fact)
        return changes

    def apply(self, edits: Iterable[Edit]) -> dict[str, set[Answer]]:
        """Apply a sequence of edits; merge per-view changed answers."""
        changed: dict[str, set[Answer]] = {name: set() for name in self._views}
        for edit in edits:
            if edit.kind is EditKind.INSERT:
                delta = self.insert(edit.fact)
            else:
                delta = self.delete(edit.fact)
            for name, answers in delta.items():
                changed[name] |= answers
        return changed
