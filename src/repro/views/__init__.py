"""Materialized views with incremental maintenance (the monitor mode)."""

from .materialized import MaterializedView, ViewManager

__all__ = ["MaterializedView", "ViewManager"]
