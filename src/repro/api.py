"""The stable public facade.

One flat module with the half-dozen entry points a user of the
reproduction actually needs, hiding which subpackage currently hosts
which class.  Everything here accepts queries as either parsed
:class:`~repro.query.ast.Query` objects or source strings, takes the
shared :class:`~repro.core.qoco.QOCOConfig`, and returns the unified
:class:`~repro.core.report.Report`::

    import repro.api as qoco

    report = qoco.clean(dirty, 'q(x) :- teams(x, "EU").', oracle, seed=0)
    print(report.summary())

The deeper layers (``repro.core``, ``repro.db``, ``repro.dispatch``,
``repro.server``, ...) remain importable for research use; this module
is the surface the docs teach and the snapshot test in
``tests/test_api_surface.py`` pins.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .core.parallel import ParallelQOCO
from .core.qoco import QOCO, QOCOConfig
from .core.report import Report
from .core.ucq import UCQCleaner
from .db.database import Database
from .dispatch.engine import dispatch_clean as _dispatch_clean
from .oracle.base import AccountingOracle, Oracle
from .query.ast import Query
from .query.backend import EvalBackend, resolve_backend
from .query.evaluator import Answer
from .query.parser import parse_query
from .query.union import UnionQuery, parse_union
from .server.manager import SessionManager
from .server.session import CleaningSession
from .shard.driver import ShardReport, ShardedQOCO
from .shard.partition import PartitionSpec

__all__ = [
    "clean",
    "clean_parallel",
    "clean_sharded",
    "clean_union",
    "dispatch_clean",
    "evaluate",
    "load_csv",
    "open_session",
    "recover",
    "recover_server",
    "repair",
    "serve",
    "serve_http",
]


def _as_query(query: Union[Query, str]) -> Query:
    return parse_query(query) if isinstance(query, str) else query


def _as_union(union: Union[UnionQuery, str]) -> UnionQuery:
    return parse_union(union) if isinstance(union, str) else union


def evaluate(
    database: Database,
    query: Union[Query, str],
    *,
    backend: Union[str, EvalBackend, None] = None,
) -> set[Answer]:
    """``Q(D)`` on a chosen evaluation substrate.

    ``backend`` is ``"naive"`` (default), ``"columnar"``, ``"sql"``, or
    an :class:`~repro.query.backend.EvalBackend` instance; non-reference
    backends fall back to ``naive`` on unsupported query shapes, so the
    answer set is the same whatever substrate computed it (see
    ``docs/evaluator.md``)::

        answers = qoco.evaluate(db, 'q(x) :- teams(x, "EU").', backend="columnar")
    """
    return resolve_backend(backend).evaluate(_as_query(query), database)


def clean(
    database: Database,
    query: Union[Query, str],
    oracle: Oracle,
    *,
    config: Optional[QOCOConfig] = None,
    **overrides,
) -> Report:
    """Clean *database* w.r.t. one conjunctive query (Algorithm 3).

    Equivalent to ``QOCO(database, oracle, config, **overrides).clean(query)``;
    keyword overrides are :class:`QOCOConfig` fields (``seed=0``,
    ``max_iterations=5``, ...).
    """
    return QOCO(database, oracle, config, **overrides).clean(_as_query(query))


def clean_union(
    database: Database,
    union: Union[UnionQuery, str],
    oracle: Oracle,
    *,
    config: Optional[QOCOConfig] = None,
    **overrides,
) -> Report:
    """Clean w.r.t. a union of conjunctive queries (the §2 extension)."""
    return UCQCleaner(database, oracle, config, **overrides).clean(_as_union(union))


def clean_parallel(
    database: Database,
    query: Union[Query, str],
    oracle: Oracle,
    *,
    config: Optional[QOCOConfig] = None,
    **overrides,
) -> Report:
    """Clean with the round-structured parallel loop (Appendix B)."""
    return ParallelQOCO(database, oracle, config, **overrides).clean(
        _as_query(query)
    )


def clean_sharded(
    database: Database,
    query: Union[Query, str],
    oracle: Oracle,
    *,
    spec: "PartitionSpec",
    shards: int = 2,
    mode: str = "process",
    config: Optional[QOCOConfig] = None,
    **overrides,
) -> "ShardReport":
    """Clean in parallel worker processes, one per blocking-key shard.

    *spec* (a :class:`~repro.shard.partition.PartitionSpec`) names the
    blocking-key column of each partitioned relation; the query must be
    shardable under it (raises
    :class:`~repro.shard.partition.ShardingError` otherwise).  The merge
    applies every shard's exported edit log back onto *database*,
    producing a ``state_digest`` identical to a single-process
    :func:`clean` — see ``docs/sharding.md``::

        from repro.datasets.worldcup import worldcup_partition_spec

        report = qoco.clean_sharded(
            db, Q3, oracle, spec=worldcup_partition_spec(), shards=4
        )

    ``mode="inline"`` runs the shards sequentially in-process (same
    codec path, no worker processes) for debugging and tests.
    """
    return ShardedQOCO(
        database, oracle, config, spec=spec, shards=shards, mode=mode, **overrides
    ).clean(_as_query(query))


def dispatch_clean(
    database: Database,
    query: Union[Query, str],
    members: Sequence[Oracle],
    *,
    oracle: Optional[AccountingOracle] = None,
    **kwargs,
):
    """Clean through the live crowd-dispatch engine (§6.2).

    Returns ``(report, engine)`` — see
    :func:`repro.dispatch.engine.dispatch_clean` for the full knob set
    (retry/fault/budget policies, vote width, latency model, ...).
    """
    return _dispatch_clean(
        database, _as_query(query), members, oracle=oracle, **kwargs
    )


def serve(database: Database, **kwargs) -> SessionManager:
    """A multi-tenant session manager over *database* (``repro.server``).

    Keyword arguments are :class:`~repro.server.manager.SessionManager`
    options (``mode=``, ``share_answers=``, ``max_concurrent=``, ...).
    Pass ``durable_path="some/dir"`` for a crash-safe server: every
    commit is written (and fsynced, per ``sync=``) to a write-ahead log
    before it is acknowledged, and :func:`recover` /
    :func:`recover_server` rebuild the database, tenant ledgers, and
    answer board after a restart.  See ``docs/durability.md``.
    """
    return SessionManager(database, **kwargs)


def serve_http(manager: SessionManager, **kwargs):
    """The network front end over *manager* (``repro.service``).

    Returns an (unstarted) :class:`~repro.service.app.CrowdService`:
    a stdlib-asyncio HTTP/JSON server with the tenant REST surface,
    streaming crowd-worker feeds, admission control, and — for durable
    managers — WAL log shipping to a warm follower.  Keyword arguments
    are :class:`CrowdService` options (``votes_per_closed=``,
    ``max_inflight_total=``, ``policy=``, ...)::

        service = qoco.serve_http(qoco.serve(db, durable_path="state"))
        host, port = await service.start("127.0.0.1", 8300)

    See ``docs/service.md`` for the API reference and the failover
    runbook, and ``qoco-serve --help`` for the command-line wrapper.
    """
    from .service.app import CrowdService

    return CrowdService(manager, **kwargs)


def recover(durable_path):
    """Rebuild the durable state under *durable_path* (read-only).

    Returns a :class:`~repro.durability.RecoveredState` — the database,
    the per-tenant ledger, and the answer board of already-paid crowd
    verdicts — from the latest checkpoint plus the WAL suffix, with any
    torn tail discarded.
    """
    from .durability.recovery import recover as _recover

    return _recover(durable_path)


def recover_server(durable_path, **kwargs) -> SessionManager:
    """Recover *durable_path* and resume serving from it.

    The returned :class:`SessionManager` carries the recovered
    database/ledgers/board and keeps appending to the same write-ahead
    log.  Keyword arguments are forwarded to the manager (plus the
    durability knobs ``sync=``, ``checkpoint_every=``,
    ``checkpoint_interval=``).
    """
    from .durability.recovery import recover_manager as _recover_manager

    return _recover_manager(durable_path, **kwargs)


def load_csv(path, *, relation=None, noise=None) -> Database:
    """Load one bare headerful CSV into a single-relation database.

    The schema is sniffed from the data (``repro.ingest``); *noise* — a
    seeded :class:`~repro.ingest.NoisePipeline` — corrupts the table
    reproducibly before loading, which is how the benchmarks fabricate
    dirty workloads::

        from repro.ingest import standard_noise

        dirty = qoco.load_csv("games.csv", noise=standard_noise(seed=7))

    Distinct from :func:`repro.db.io.load_csv`, which loads a CSV
    *directory* with an explicit ``_schema.json`` sidecar.
    """
    from .ingest.loader import load_csv as _load_csv

    return _load_csv(path, relation=relation, noise=noise)


def repair(
    database: Database,
    constraints,
    oracle: Oracle,
    *,
    strategy: str = "oracle",
    **options,
):
    """Repair *database* until *constraints* hold, asking the oracle.

    *constraints* are FD strings (``"games: date -> winner"``),
    :class:`~repro.constraints.FD` / ``DenialConstraint`` objects, or an
    iterable of either; *strategy* is a ``"repair"``-kind registry name
    (``"oracle"`` default, ``"exhaustive"``, ``"greedy"``); remaining
    keywords (``budget=``, ``updates=``, ``backend=``, ``max_rounds=``)
    reach the repairer.  Returns a
    :class:`~repro.constraints.RepairReport`::

        report = qoco.repair(db, "games: date -> winner, result", oracle)
        print(report.summary())

    See ``docs/constraints.md``.
    """
    from .constraints.repairer import repair as _repair

    return _repair(database, constraints, oracle, strategy=strategy, **options)


def open_session(
    target: Union[Database, SessionManager],
    query: Union[Query, str],
    oracle: Oracle,
    **kwargs,
) -> CleaningSession:
    """Queue one cleaning session against *target*.

    *target* may be an existing :class:`SessionManager` (multi-tenant:
    sessions share its base, board, and commit log) or a bare
    :class:`Database` (a fresh single-purpose manager is created and
    attached).  Either way the returned session's ``manager`` attribute
    drains the queue::

        session = repro.api.open_session(db, query, oracle)
        session.manager.run_all()
        print(session.report.summary())
    """
    manager = target if isinstance(target, SessionManager) else serve(target)
    session = manager.open_session(_as_query(query), oracle, **kwargs)
    session.manager = manager
    return session
