"""The question broker: oracle calls in, worker leases and votes out.

Cleaning sessions run inside the service exactly as they do in process:
the manager wraps each tenant's backend in the usual accounting/sharing
oracles.  Here the *backend* is a :class:`BrokeredOracle` — every oracle
call becomes a pending **question** in the broker, and the session
thread blocks until remote crowd workers resolve it.  The broker reuses
the dispatch layer's machinery against real wall-clock workers:

* :func:`~repro.dispatch.dedup.question_key` coalesces structurally
  identical closed questions *in flight*: a second session asking the
  same question before the first resolves subscribes to the same vote
  instead of paying again (the cross-session analogue of the engine's
  :class:`~repro.dispatch.dedup.DedupIndex`);
* :class:`~repro.dispatch.policy.RetryPolicy` governs leases: an
  assignment unanswered after ``timeout`` seconds is expired, the
  worker is marked failed on that question, the question backs off
  ``delay(k)`` seconds and is re-leased — preferring workers that have
  not yet failed it (``reroute``).  When the retry budget is spent the
  question resolves to the same conservative fallback the dispatch
  engine uses, so a dead crowd degrades cleaning instead of hanging it;
* closed questions take ``votes_per_closed`` answers from distinct
  workers and resolve by majority, mirroring the engine's vote sampling.

Answer submission is **idempotent under at-least-once delivery**: one
``(question, worker)`` pair is counted once; replays and answers landing
after resolution are acknowledged (``duplicate`` / ``stale``) without
mutating state, so clients may retry POSTs freely.  Resolved questions
are retained only in a bounded tombstone window (``tombstone_limit``,
newest resolutions win); a replay arriving after its question aged out
is acknowledged as ``unknown``.  This keeps broker memory — and the
lease scan, which walks pending questions only — bounded no matter how
long the service runs.

Threading: session threads call :meth:`QuestionBroker.ask` (blocking);
the asyncio side calls :meth:`lease`, :meth:`answer`, and
:meth:`expire` from the event loop.  All state lives under one lock;
availability listeners registered with :meth:`add_listener` are invoked
outside it (the app bridges them onto the loop with
``call_soon_threadsafe``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping, Optional, Sequence

from ..db.tuples import Constant, Fact
from ..dispatch.dedup import question_key
from ..dispatch.policy import RetryPolicy
from ..oracle.base import Oracle
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Assignment
from ..shard import wire
from ..telemetry import TELEMETRY as _TELEMETRY

#: Conservative resolutions when the retry budget is spent — identical
#: to the dispatch engine's degraded-mode defaults, so a question the
#: crowd never answers biases the cleaner toward "leave the data alone".
FALLBACKS: dict[str, Any] = {
    "verify_fact": True,
    "verify_answer": True,
    "verify_candidate": False,
    "complete_assignment": None,
    "complete_result": None,
}

_CLOSED_KINDS = frozenset({"verify_fact", "verify_answer", "verify_candidate"})


def _similarity_class(key: Hashable) -> Optional[Hashable]:
    """The canonical similarity class of a question key (lazy import —
    only similarity-enabled brokers pay for the plan package)."""
    from ..plan.similarity import similarity_key

    return similarity_key(key)  # type: ignore[arg-type]


@dataclass
class _Question:
    """One pending (or resolved) crowd question."""

    qid: int
    kind: str
    payload: dict  # wire-encoded, ready for the feed verbatim
    key: Optional[Hashable]
    votes_needed: int
    #: sessions waiting on this resolution (coalesced askers included) —
    #: the numerator of the capacity scheduler's unblocks-per-cost score
    subscribers: int = 1
    #: highest tenant priority among the subscribed askers
    priority: float = 1.0
    #: similarity class (set only on similarity-enabled brokers)
    ckey: Optional[Hashable] = None
    #: accepted ``(worker_id, value)`` votes, in arrival order
    votes: list = field(default_factory=list)
    answered: set = field(default_factory=set)
    failed: set = field(default_factory=set)
    #: ``worker_id -> lease deadline`` for in-flight assignments
    active: dict = field(default_factory=dict)
    #: lease grants handed out so far (the retry-budget numerator)
    grants: int = 0
    timeouts: int = 0
    not_before: float = 0.0
    event: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    done: bool = False
    gave_up: bool = False

    def budget(self, policy: RetryPolicy) -> int:
        """Total lease grants the retry policy allows this question."""
        return (policy.max_retries + 1) * self.votes_needed


class QuestionBroker:
    """Routes oracle questions to remote workers and collects votes."""

    def __init__(
        self,
        *,
        policy: Optional[RetryPolicy] = None,
        votes_per_closed: int = 1,
        ask_timeout: Optional[float] = None,
        tombstone_limit: int = 1024,
        scheduler: Any = None,
        similarity: bool = False,
    ) -> None:
        if votes_per_closed < 1:
            raise ValueError("votes_per_closed must be >= 1")
        if tombstone_limit < 0:
            raise ValueError("tombstone_limit must be >= 0")
        self.policy = policy if policy is not None else RetryPolicy(timeout=30.0)
        self.votes_per_closed = votes_per_closed
        #: optional lease scoring (duck-typed ``score(question, now)``,
        #: e.g. :class:`repro.plan.CapacityScheduler`): the lease picks
        #: the highest-scoring eligible question instead of the oldest,
        #: spending shared crowd capacity on questions that unblock the
        #: most sessions per unit cost.  ``None`` keeps strict FIFO.
        self.scheduler = scheduler
        #: coalesce questions that are variable-renamed twins of an
        #: in-flight question (see :mod:`repro.plan.similarity`)
        self.similarity = similarity
        #: hard cap a session thread waits in :meth:`ask` before taking
        #: the fallback itself (``None`` = trust :meth:`expire` to
        #: resolve every question eventually)
        self.ask_timeout = ask_timeout
        #: resolved questions retained (newest first out) so replayed
        #: answer POSTs keep getting ``duplicate``/``stale`` instead of
        #: ``unknown``; beyond the window they are forgotten entirely,
        #: bounding broker memory in a long-running service
        self.tombstone_limit = tombstone_limit
        self._lock = threading.Lock()
        self._questions: dict[int, _Question] = {}
        self._by_key: dict[Hashable, _Question] = {}
        self._by_ckey: dict[Hashable, _Question] = {}
        #: pending qids only, oldest first (the lease scan order);
        #: resolved questions move to the tombstone window
        self._order: list[int] = []
        self._tombstones: deque[int] = deque()
        self._next_qid = 1
        self._closed = False
        self._listeners: list[Callable[[], None]] = []
        # counters (read via :meth:`stats`)
        self.submitted = 0
        self.coalesced = 0
        self.similarity_coalesced = 0
        self.resolved = 0
        self.fallbacks = 0
        self.expired_leases = 0
        self.duplicate_answers = 0
        self.stale_answers = 0

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_listener(self, callback: Callable[[], None]) -> None:
        """Invoke *callback* whenever leasable work may have appeared."""
        with self._lock:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[], None]) -> None:
        with self._lock:
            if callback in self._listeners:
                self._listeners.remove(callback)

    def _notify(self) -> None:
        with self._lock:
            listeners = list(self._listeners)
        for callback in listeners:
            callback()

    # ------------------------------------------------------------------
    # session side (blocking)
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: dict,
        key: Optional[Hashable],
        priority: float = 1.0,
    ) -> _Question:
        """Register a question (or coalesce into an in-flight twin).

        Coalescing — exact-key or (on similarity-enabled brokers) a
        variable-renamed twin — bumps the twin's subscriber count and
        raises its priority to the highest subscribed tenant's, which is
        what lets the capacity scheduler prefer widely-awaited work.
        """
        ckey = None
        with self._lock:
            if key is not None:
                twin = self._by_key.get(key)
                if twin is not None and not twin.gave_up:
                    self.coalesced += 1
                    twin.subscribers += 1
                    twin.priority = max(twin.priority, priority)
                    if _TELEMETRY.enabled:
                        _TELEMETRY.count("service.broker.coalesced")
                    return twin
                if self.similarity:
                    ckey = _similarity_class(key)
                    if ckey is not None:
                        twin = self._by_ckey.get(ckey)
                        if twin is not None and not twin.gave_up and not twin.done:
                            self.similarity_coalesced += 1
                            twin.subscribers += 1
                            twin.priority = max(twin.priority, priority)
                            if _TELEMETRY.enabled:
                                _TELEMETRY.count(
                                    "service.broker.similarity_coalesced"
                                )
                            return twin
            question = _Question(
                qid=self._next_qid,
                kind=kind,
                payload=payload,
                key=key,
                votes_needed=self.votes_per_closed if kind in _CLOSED_KINDS else 1,
                priority=priority,
                ckey=ckey,
            )
            self._next_qid += 1
            self._questions[question.qid] = question
            self._order.append(question.qid)
            if key is not None:
                self._by_key[key] = question
            if ckey is not None:
                self._by_ckey[ckey] = question
            self.submitted += 1
            if _TELEMETRY.enabled:
                _TELEMETRY.count("service.broker.questions")
        self._notify()
        return question

    def ask(
        self,
        kind: str,
        payload: dict,
        key: Optional[Hashable],
        priority: float = 1.0,
    ) -> Any:
        """Block until the question resolves; fallback on a dead crowd."""
        question = self.submit(kind, payload, key, priority)
        if self._closed and not question.done:
            # the service is stopping: no worker will ever answer, so
            # degrade immediately instead of stranding the session thread
            self._resolve(question, FALLBACKS.get(kind), gave_up=True)
        if question.event.wait(self.ask_timeout):
            return question.value
        # the asker's own deadline fired first: resolve the question to
        # its fallback so coalesced subscribers agree on one value
        self._resolve(question, FALLBACKS.get(kind), gave_up=True)
        return question.value

    # ------------------------------------------------------------------
    # worker side (event loop)
    # ------------------------------------------------------------------
    def lease(self, worker_id: str, now: float) -> Optional[dict]:
        """Assign the oldest eligible question to *worker_id*.

        Preference order honours ``policy.reroute``: questions this
        worker has already failed are considered only when no other
        question is leasable — a reconnecting worker is better than no
        worker at all.

        With a :attr:`scheduler` attached, the *highest-scoring*
        eligible question is leased instead of the oldest (FIFO age
        breaks exact score ties), within the same eligibility and
        reroute tiers.
        """
        with self._lock:
            eligible: list[_Question] = []
            rerouted: list[_Question] = []
            for qid in self._order:
                question = self._questions[qid]
                if question.done or now < question.not_before:
                    continue
                if worker_id in question.active or worker_id in question.answered:
                    continue
                if len(question.active) + len(question.votes) >= question.votes_needed:
                    continue
                if question.grants >= question.budget(self.policy):
                    continue
                if self.policy.reroute and worker_id in question.failed:
                    rerouted.append(question)
                    continue
                if self.scheduler is None:
                    return self._grant(question, worker_id, now)
                eligible.append(question)
            for tier in (eligible, rerouted):
                if not tier:
                    continue
                if self.scheduler is None:
                    return self._grant(tier[0], worker_id, now)
                best = max(
                    tier, key=lambda q: (self.scheduler.score(q, now), -q.qid)
                )
                return self._grant(best, worker_id, now)
        return None

    def _grant(self, question: _Question, worker_id: str, now: float) -> dict:
        deadline = (
            now + self.policy.timeout if self.policy.timeout is not None else float("inf")
        )
        question.active[worker_id] = deadline
        question.grants += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.broker.leases")
        return {
            "qid": question.qid,
            "kind": question.kind,
            "question": question.payload,
            "attempt": question.grants,
            "timeout": self.policy.timeout,
        }

    def answer(self, worker_id: str, qid: int, value: Any, now: float) -> dict:
        """Record one worker's vote; idempotent under redelivery.

        Returns ``{"status": ..., "resolved": bool}`` where status is
        ``accepted`` (counted), ``duplicate`` (this worker already
        answered — replayed POST), ``stale`` (question already
        resolved), or ``unknown`` (no such question — never existed, or
        resolved so long ago it aged out of the tombstone window).
        """
        notify = False
        with self._lock:
            question = self._questions.get(qid)
            if question is None:
                return {"status": "unknown", "resolved": False}
            if worker_id in question.answered:
                self.duplicate_answers += 1
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("service.broker.duplicate_answers")
                return {"status": "duplicate", "resolved": question.done}
            if question.done:
                question.active.pop(worker_id, None)
                self.stale_answers += 1
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("service.broker.stale_answers")
                return {"status": "stale", "resolved": True}
            question.active.pop(worker_id, None)
            question.answered.add(worker_id)
            question.votes.append((worker_id, value))
            if len(question.votes) >= question.votes_needed:
                self._resolve_locked(question, self._tally(question))
                notify = True
        if notify:
            self._notify()
        return {"status": "accepted", "resolved": question.done}

    def expire(self, now: float) -> int:
        """Expire overdue leases; give up questions out of retry budget."""
        expired = 0
        give_up: list[_Question] = []
        with self._lock:
            for qid in list(self._order):
                question = self._questions[qid]
                if question.done:
                    continue
                overdue = [
                    worker
                    for worker, deadline in question.active.items()
                    if deadline <= now
                ]
                for worker in overdue:
                    del question.active[worker]
                    question.failed.add(worker)
                    question.timeouts += 1
                    expired += 1
                    self.expired_leases += 1
                    if _TELEMETRY.enabled:
                        _TELEMETRY.count("service.broker.expired_leases")
                if not overdue:
                    continue
                if (
                    question.grants >= question.budget(self.policy)
                    and not question.active
                ):
                    give_up.append(question)
                else:
                    retry_index = min(
                        question.timeouts - 1, self.policy.max_retries
                    )
                    question.not_before = now + self.policy.delay(retry_index)
        for question in give_up:
            self._resolve(question, FALLBACKS.get(question.kind), gave_up=True)
        if expired:
            self._notify()
        return expired

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _tally(self, question: _Question) -> Any:
        """Majority verdict for closed questions; first vote for open."""
        if question.kind not in _CLOSED_KINDS:
            return question.votes[0][1]
        counts: dict[Any, int] = {}
        for _worker, value in question.votes:
            counts[value] = counts.get(value, 0) + 1
        return max(counts.items(), key=lambda item: (item[1], item[0] is True))[0]

    def _resolve_locked(self, question: _Question, value: Any, gave_up: bool = False) -> None:
        if question.done:
            return
        question.value = value
        question.done = True
        question.gave_up = gave_up
        if question.key is not None and self._by_key.get(question.key) is question:
            # keep resolved keys out of the coalescing index: a *new*
            # asker goes through the accounting/board caches first, so
            # reaching the broker again means it wants a fresh vote
            del self._by_key[question.key]
        if question.ckey is not None and self._by_ckey.get(question.ckey) is question:
            del self._by_ckey[question.ckey]
        try:
            self._order.remove(question.qid)
        except ValueError:  # pragma: no cover - resolve is idempotent
            pass
        self._tombstones.append(question.qid)
        while len(self._tombstones) > self.tombstone_limit:
            self._questions.pop(self._tombstones.popleft(), None)
        self.resolved += 1
        if gave_up:
            self.fallbacks += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.broker.resolved")
            if gave_up:
                _TELEMETRY.count("service.broker.fallbacks")
        question.event.set()

    def _resolve(self, question: _Question, value: Any, gave_up: bool = False) -> None:
        with self._lock:
            self._resolve_locked(question, value, gave_up)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Resolve every pending question to its fallback.

        Called when the service stops: session threads blocked in
        :meth:`ask` wake immediately and their sessions run to a
        terminal (degraded) state instead of pinning the executor.
        """
        with self._lock:
            self._closed = True
            pending = [self._questions[qid] for qid in self._order]
        for question in pending:
            self._resolve(question, FALLBACKS.get(question.kind), gave_up=True)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def kind_of(self, qid: int) -> Optional[str]:
        with self._lock:
            question = self._questions.get(qid)
            return question.kind if question is not None else None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._order)

    def stats(self) -> dict[str, int]:
        with self._lock:
            pending = len(self._order)
            inflight = sum(len(self._questions[qid].active) for qid in self._order)
            return {
                "submitted": self.submitted,
                "coalesced": self.coalesced,
                "similarity_coalesced": self.similarity_coalesced,
                "resolved": self.resolved,
                "fallbacks": self.fallbacks,
                "expired_leases": self.expired_leases,
                "duplicate_answers": self.duplicate_answers,
                "stale_answers": self.stale_answers,
                "pending": pending,
                "inflight": inflight,
            }


class BrokeredOracle(Oracle):
    """The oracle backend sessions see inside the service.

    Each method encodes the question with the shard wire codec (full
    queries — no session-query marker, because the feed serves many
    tenants), submits it to the broker, and blocks the calling session
    thread until remote workers resolve it.  The manager wraps this in
    the usual :class:`~repro.oracle.base.AccountingOracle` /
    :class:`~repro.server.sharing.SharedOracle` layers, so cost
    accounting and cross-session answer sharing are *identical* to an
    in-process run — the acceptance condition for cost parity.
    """

    def __init__(self, broker: QuestionBroker, priority: float = 1.0) -> None:
        self.broker = broker
        #: tenant priority stamped on every submitted question — the
        #: capacity scheduler's per-tenant weight
        self.priority = priority

    def verify_fact(self, fact: Fact) -> bool:
        payload = wire.question_to_obj("verify_fact", fact=fact)
        key = question_key(("verify_fact", fact))
        return bool(self.broker.ask("verify_fact", payload, key, self.priority))

    def verify_facts(self, facts: Sequence[Fact]) -> dict[Fact, bool]:
        payload = wire.question_to_obj("verify_facts", facts=facts)
        value = self.broker.ask("verify_facts", payload, None, self.priority)
        if value is None:  # crowd never answered: conservative per-fact default
            return {fact: True for fact in facts}
        return {fact: bool(value[fact]) for fact in facts}

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        payload = wire.question_to_obj("verify_answer", query=query, answer=answer)
        key = question_key(("verify_answer", query, answer))
        return bool(self.broker.ask("verify_answer", payload, key, self.priority))

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        payload = wire.question_to_obj("verify_candidate", query=query, partial=partial)
        key = question_key(("verify_candidate", query, dict(partial)))
        return bool(self.broker.ask("verify_candidate", payload, key, self.priority))

    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        payload = wire.question_to_obj(
            "complete_assignment", query=query, partial=partial
        )
        return self.broker.ask("complete_assignment", payload, None, self.priority)

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        known = list(known_answers)
        payload = wire.question_to_obj("complete_result", query=query, known=known)
        return self.broker.ask("complete_result", payload, None, self.priority)


def decode_reply(kind: str, obj: dict) -> Any:
    """Decode a worker's reply into the broker's vote value.

    ``verify_facts`` replies stay keyed by decoded facts (hashable);
    everything else follows :func:`repro.shard.wire.reply_from_obj`.
    """
    return wire.reply_from_obj(kind, obj)


__all__ = [
    "FALLBACKS",
    "BrokeredOracle",
    "QuestionBroker",
    "decode_reply",
]
