"""``qoco-serve`` — run the crowd service from the command line.

Subcommands::

    qoco-serve primary  --port 8300 --dir state/primary --dataset worldcup
    qoco-serve follower --port 8301 --dir state/follower --primary 127.0.0.1:8300
    qoco-serve worker   --primary 127.0.0.1:8300 --worker-id w1 --dataset worldcup
    qoco-serve demo     --dataset worldcup

``primary`` serves a dataset's *dirty* database behind the full tenant
+ worker + replication surface; ``follower`` tails the primary's WAL
into its own directory and waits for ``POST /v1/promote``; ``worker``
answers crowd questions from the dataset's ground truth
(:class:`~repro.oracle.perfect.PerfectOracle` — swap in your own
:class:`~repro.oracle.base.Oracle` in code for a real crowd); ``demo``
runs all three in one process and cleans the dataset end to end.

Every server prints a ``LISTENING <host> <port>`` line once bound, so
scripts (and the failover test) can wait on it.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from dataclasses import dataclass, field

from ..datasets import figure1_dirty, figure1_ground_truth
from ..datasets.worldcup import WorldCupConfig, worldcup_database
from ..db.database import Database
from ..db.schema import RelationSchema, Schema
from ..db.tuples import fact
from ..dispatch.policy import RetryPolicy
from ..oracle.perfect import PerfectOracle
from ..query.ast import Query
from ..query.parser import parse_query
from ..server.manager import SessionManager
from ..workloads import EX1, Q2
from .app import CrowdService
from .client import ServiceClient, WorkerClient
from .replication import Follower

#: scaled-down World Cup, matching ``benchmarks/bench_dispatch.py``
_WC_SCALE = WorldCupConfig(players_per_team=6, group_games_per_cup=4)
_WC_HUB = "YUG"
_WC_PARTNERS = ("AUT", "BEL", "WAL")


@dataclass
class Workload:
    """A service-ready dataset: the dirty base, its truth, its queries."""

    name: str
    dirty: Database
    ground_truth: Database
    #: one entry per tenant request the demo/bench fires
    queries: list = field(default_factory=list)


def _worldcup() -> Workload:
    ground = worldcup_database(_WC_SCALE)
    dirty = ground.copy()
    for i, partner in enumerate(_WC_PARTNERS):
        for j in (1, 2):
            dirty.insert(
                fact(
                    "games", f"0{j}.01.19{70 + i}", _WC_HUB, partner,
                    "Group", f"{j}:0",
                )
            )
    return Workload("worldcup", dirty, ground, [Q2])


def _figure1() -> Workload:
    return Workload("figure1", figure1_dirty(), figure1_ground_truth(), [EX1])


def burst_query(tenant_index: int) -> Query:
    """The per-tenant query of the burst workload."""
    return parse_query(f'q_t{tenant_index}(x) :- r("t{tenant_index}", x).')


def _burst(tenants: int = 50, values: int = 3, wrong: int = 2) -> Workload:
    """Disjoint per-tenant errors: deterministic, conflict-free commits.

    Relation ``r(tenant, v)``; tenant ``tN`` owns *values* true facts
    and *wrong* fabricated ones; cleaning ``q_tN(x) :- r("tN", x).``
    deletes exactly tenant N's fabrications.  Tenants never touch each
    other's facts, so a commit burst lands without conflicts and the
    exact set of acked edits is checkable after a failover.
    """
    schema = Schema([RelationSchema("r", ("tenant", "v"))])
    truth = [
        fact("r", f"t{i}", f"v{j}") for i in range(tenants) for j in range(values)
    ]
    ground = Database(schema, truth)
    dirty = ground.copy()
    for i in range(tenants):
        for j in range(wrong):
            dirty.insert(fact("r", f"t{i}", f"bogus{j}"))
    return Workload(
        "burst", dirty, ground, [burst_query(i) for i in range(tenants)]
    )


def build_workload(name: str, *, tenants: int = 50) -> Workload:
    if name == "worldcup":
        return _worldcup()
    if name == "figure1":
        return _figure1()
    if name == "burst":
        return _burst(tenants=tenants)
    raise SystemExit(f"unknown dataset {name!r}; pick worldcup, figure1, or burst")


def _split_endpoint(endpoint: str) -> tuple[str, int]:
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--primary must be host:port, got {endpoint!r}")
    return host, int(port)


def _announce(host: str, port: int) -> None:
    print(f"LISTENING {host} {port}", flush=True)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_primary(args: argparse.Namespace) -> int:
    workload = build_workload(args.dataset, tenants=args.tenants)
    manager = SessionManager(
        workload.dirty,
        mode="sync",
        durable_path=args.dir,
        checkpoint_every=args.checkpoint_every,
    )
    service = CrowdService(
        manager,
        policy=RetryPolicy(timeout=args.lease_timeout, max_retries=args.max_retries),
        votes_per_closed=args.votes,
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        max_inflight_total=args.max_inflight_total,
    )

    async def main() -> None:
        host, port = await service.start(args.host, args.port)
        _announce(host, port)
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    asyncio.run(main())
    return 0


def cmd_follower(args: argparse.Namespace) -> int:
    host, port = _split_endpoint(args.primary)
    follower = Follower(args.dir, host, port, follower_id=args.follower_id)
    service = CrowdService(follower=follower)

    async def main() -> None:
        bound_host, bound_port = await service.start(args.host, args.port)
        _announce(bound_host, bound_port)
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    asyncio.run(main())
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    host, port = _split_endpoint(args.primary)
    workload = build_workload(args.dataset, tenants=args.tenants)
    worker = WorkerClient(
        host, port, args.worker_id, PerfectOracle(workload.ground_truth)
    )
    print(f"worker {args.worker_id} polling {args.primary}", flush=True)
    try:
        if args.stream:
            worker.run_stream()
        else:
            worker.run()
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Primary + workers + tenant client, all in one process."""
    workload = build_workload(args.dataset, tenants=args.tenants)
    manager = SessionManager(workload.dirty, mode="sync")
    service = CrowdService(manager, policy=RetryPolicy(timeout=10.0))

    async def main() -> int:
        host, port = await service.start("127.0.0.1", 0)
        _announce(host, port)
        workers = [
            WorkerClient(host, port, f"w{i}", PerfectOracle(workload.ground_truth))
            for i in range(args.workers)
        ]
        threads = [w.start_thread(stream=(i == 0)) for i, w in enumerate(workers)]
        loop = asyncio.get_running_loop()

        def drive() -> list[dict]:
            with ServiceClient(host, port) as client:
                docs = [
                    client.clean(query, timeout=120.0)
                    for query in workload.queries
                ]
                print(client.digest())
                return docs

        try:
            docs = await loop.run_in_executor(None, drive)
        finally:
            for worker in workers:
                worker.stop()
            await service.stop()
            for thread in threads:
                thread.join(timeout=2)
        failures = [d for d in docs if d.get("state") != "committed"]
        for doc in docs:
            report = doc.get("report", {})
            print(
                f"session {doc['session']} [{doc['state']}] "
                f"cost={doc['cost']} edits={len(report.get('edits', []))} "
                f"converged={report.get('converged')}"
            )
        return 1 if failures else 0

    return asyncio.run(main())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qoco-serve", description="the QOCO crowd-cleaning service"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=0)
        p.add_argument("--dataset", default="worldcup")
        p.add_argument("--tenants", type=int, default=50,
                       help="tenant count for the burst dataset")

    primary = sub.add_parser("primary", help="serve a dataset's dirty database")
    common(primary)
    primary.add_argument("--dir", required=True, help="durable state directory")
    primary.add_argument("--checkpoint-every", type=int, default=None)
    primary.add_argument("--votes", type=int, default=1)
    primary.add_argument("--lease-timeout", type=float, default=30.0)
    primary.add_argument("--max-retries", type=int, default=3)
    primary.add_argument("--max-inflight-per-tenant", type=int, default=4)
    primary.add_argument("--max-inflight-total", type=int, default=64)
    primary.set_defaults(func=cmd_primary)

    follower = sub.add_parser("follower", help="tail a primary's WAL, warm standby")
    follower.add_argument("--host", default="127.0.0.1")
    follower.add_argument("--port", type=int, default=0)
    follower.add_argument("--dir", required=True)
    follower.add_argument("--primary", required=True, help="host:port of the primary")
    follower.add_argument("--follower-id", default="follower")
    follower.set_defaults(func=cmd_follower)

    worker = sub.add_parser("worker", help="answer crowd questions from ground truth")
    worker.add_argument("--primary", required=True)
    worker.add_argument("--worker-id", default="w1")
    worker.add_argument("--dataset", default="worldcup")
    worker.add_argument("--tenants", type=int, default=50)
    worker.add_argument("--stream", action="store_true",
                        help="tail the chunked feed instead of long-polling")
    worker.set_defaults(func=cmd_worker)

    demo = sub.add_parser("demo", help="primary + workers + client in one process")
    common(demo)
    demo.add_argument("--workers", type=int, default=3)
    demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
