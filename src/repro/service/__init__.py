"""Network-facing crowd service (see ``docs/service.md``).

An asyncio HTTP/JSON front end over the multi-tenant
:class:`~repro.server.manager.SessionManager`: tenants open cleaning
sessions over REST with admission control; remote crowd workers lease
questions from streaming feeds and answer idempotently; a durable
primary ships its WAL, frame by frame, to a warm follower that can be
promoted through the standard crash-recovery path.

Built on the stdlib only — the HTTP layer (:mod:`repro.service.http`)
is hand-rolled asyncio, so the service adds no runtime dependency.
"""

from .app import CrowdService
from .broker import BrokeredOracle, QuestionBroker
from .client import ServiceClient, ServiceError, WorkerClient
from .http import HttpError, HttpServer
from .replication import Follower, ReplicationError, ReplicationHub

__all__ = [
    "BrokeredOracle",
    "CrowdService",
    "Follower",
    "HttpError",
    "HttpServer",
    "QuestionBroker",
    "ReplicationError",
    "ReplicationHub",
    "ServiceClient",
    "ServiceError",
    "WorkerClient",
]
