"""The crowd service: tenant REST surface + worker feeds + replication.

One :class:`CrowdService` fronts one
:class:`~repro.server.manager.SessionManager`.  Three surfaces share the
asyncio loop (see ``docs/service.md`` for the full API):

**Tenants** — ``POST /v1/sessions`` opens a cleaning session and starts
driving it (fork → clean → first-committer-wins commit) on an executor
thread; ``GET /v1/sessions/{id}[/wait]`` observes it; ``DELETE`` aborts
one that has not started running.  Admission control bounds the work in
flight: beyond ``max_inflight_per_tenant`` / ``max_inflight_total`` the
service answers ``429`` with ``Retry-After`` instead of queueing without
bound (queue depth is published as ``service.queue_depth``).

**Workers** — remote crowd members lease questions from the
:class:`~repro.service.broker.QuestionBroker` via a long-poll feed
(``GET /v1/worker/feed``) or a chunked NDJSON stream
(``GET /v1/worker/stream``) and POST answers back, idempotently, to
``/v1/worker/answer``.  The broker's retry policy expires stalled
leases on the housekeeping tick, so a worker that vanishes mid-question
only costs a timeout, not a hung session.

**Replication** — with a durable manager the service attaches a
:class:`~repro.service.replication.ReplicationHub`; a warm follower
(``standby=True`` service) tails ``/v1/replication/stream`` into its own
directory and ``POST /v1/promote`` turns it into a live primary through
the standard crash-recovery path.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from ..dispatch.policy import RetryPolicy
from ..durability import codec
from ..query.parser import parse_query
from ..server.manager import SessionManager
from ..server.policy import TenantPolicy
from ..server.session import CleaningSession, SessionState
from ..shard import wire
from ..telemetry import TELEMETRY as _TELEMETRY
from .broker import BrokeredOracle, QuestionBroker, decode_reply
from .http import HttpError, HttpServer, Request, Response, StreamResponse, json_response
from .replication import Follower, ReplicationHub, _Chain


@dataclass
class _Entry:
    """One tenant session the service is tracking."""

    session: CleaningSession
    tenant: str
    done: asyncio.Event
    future: Optional[asyncio.Future] = None
    aborted: bool = False
    opened_at: float = field(default_factory=time.monotonic)
    finished_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.done.is_set()


class CrowdService:
    """The network front end over a session manager.

    Parameters
    ----------
    manager:
        The (optionally durable) session manager to front.  ``None``
        together with *follower* starts in **standby**: only health,
        stats, and ``/v1/promote`` respond until promotion.
    max_inflight_per_tenant / max_inflight_total:
        Admission caps; requests beyond them get ``429 Retry-After``.
    policy:
        Lease/retry policy for crowd questions (wall-clock seconds).
    votes_per_closed:
        Distinct worker votes a closed question needs (majority wins).
    tick:
        Housekeeping period: lease expiry + queue-depth telemetry.
    entry_retention:
        Seconds a *finished* session document stays queryable via
        ``GET /v1/sessions/{id}`` before housekeeping evicts it (404
        afterwards) — bounds service memory over a long run.
    tombstone_limit:
        Resolved questions the broker retains for idempotent
        duplicate/stale answer replies (see
        :class:`~repro.service.broker.QuestionBroker`).
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        *,
        follower: Optional[Follower] = None,
        max_inflight_per_tenant: int = 4,
        max_inflight_total: int = 64,
        policy: Optional[RetryPolicy] = None,
        votes_per_closed: int = 1,
        tick: float = 0.25,
        read_timeout: float = 10.0,
        entry_retention: float = 300.0,
        tombstone_limit: int = 1024,
        scheduler: Any = None,
        similarity: bool = False,
    ) -> None:
        if manager is None and follower is None:
            raise ValueError("need a manager (primary) or a follower (standby)")
        self.manager = manager
        self.follower = follower
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.max_inflight_total = max_inflight_total
        self.entry_retention = entry_retention
        self.broker = QuestionBroker(
            policy=policy if policy is not None else RetryPolicy(timeout=30.0),
            votes_per_closed=votes_per_closed,
            tombstone_limit=tombstone_limit,
            scheduler=scheduler,
            similarity=similarity,
        )
        self.tick = tick
        self.http = HttpServer(read_timeout=read_timeout)
        self.hub: Optional[ReplicationHub] = None
        self._entries: dict[int, _Entry] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight_total, thread_name_prefix="qoco-session"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work_chain: Optional[_Chain] = None
        self._housekeeper: Optional[asyncio.Task] = None
        self._follower_thread = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._register_routes()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _register_routes(self) -> None:
        route = self.http.route
        route("GET", "/v1/healthz", self._healthz)
        route("GET", "/v1/stats", self._stats)
        route("POST", "/v1/sessions", self._open_session)
        route("GET", "/v1/sessions/{sid}", self._get_session)
        route("GET", "/v1/sessions/{sid}/wait", self._wait_session)
        route("DELETE", "/v1/sessions/{sid}", self._abort_session)
        route("GET", "/v1/digest", self._digest)
        route("GET", "/v1/worker/feed", self._worker_feed)
        route("GET", "/v1/worker/stream", self._worker_stream)
        route("POST", "/v1/worker/answer", self._worker_answer)
        route("GET", "/v1/replication/checkpoint", self._replication_checkpoint)
        route("GET", "/v1/replication/stream", self._replication_stream)
        route("POST", "/v1/replication/ack", self._replication_ack)
        route("POST", "/v1/promote", self._promote)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._work_chain = _Chain()
        self.broker.add_listener(self._on_broker_work)
        if self.manager is not None and self.manager.durable:
            self.hub = ReplicationHub(self.manager, self._loop)
        if self.follower is not None:
            import threading

            self._follower_thread = threading.Thread(
                target=self.follower.run, name="qoco-follower", daemon=True
            )
            self._follower_thread.start()
        self.host, self.port = await self.http.start(host, port)
        self._housekeeper = asyncio.ensure_future(self._housekeeping())
        return self.host, self.port

    async def stop(self) -> None:
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            try:
                await self._housekeeper
            except asyncio.CancelledError:
                pass
            self._housekeeper = None
        if self.follower is not None:
            self.follower.close()
            if self._follower_thread is not None:
                self._follower_thread.join(timeout=5)
        # unblock session threads stuck waiting on the crowd, then let
        # them run to their terminal state before releasing the manager
        self.broker.shutdown()
        self._executor.shutdown(wait=True)
        if self.hub is not None:
            self.hub.detach()
            self.hub = None
        if self.manager is not None:
            self.manager.close()
        await self.http.stop()

    async def run_forever(self, host: str, port: int) -> None:
        await self.start(host, port)
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    def _on_broker_work(self) -> None:
        if self._loop is not None and self._work_chain is not None:
            self._loop.call_soon_threadsafe(self._work_chain.wake)

    async def _housekeeping(self) -> None:
        while True:
            await asyncio.sleep(self.tick)
            now = time.monotonic()
            self.broker.expire(now)
            # evict finished sessions past their retention window so
            # _entries (and every admission scan over it) stays bounded
            evict = [
                sid
                for sid, entry in self._entries.items()
                if entry.finished_at is not None
                and now - entry.finished_at > self.entry_retention
            ]
            for sid in evict:
                del self._entries[sid]
            if _TELEMETRY.enabled:
                _TELEMETRY.observe("service.queue_depth", self._inflight_total())

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_primary(self) -> SessionManager:
        if self.manager is None:
            raise HttpError(
                503, "standby: this node has not been promoted", headers={"Retry-After": "1"}
            )
        return self.manager

    def _inflight_total(self) -> int:
        return sum(1 for entry in self._entries.values() if not entry.finished)

    def _inflight_tenant(self, tenant: str) -> int:
        return sum(
            1
            for entry in self._entries.values()
            if entry.tenant == tenant and not entry.finished
        )

    def _entry(self, request: Request) -> _Entry:
        try:
            sid = int(request.params["sid"])
        except ValueError as error:
            raise HttpError(400, "session id must be an integer") from error
        entry = self._entries.get(sid)
        if entry is None:
            raise HttpError(404, f"no session {sid}")
        return entry

    def _session_doc(self, entry: _Entry) -> dict[str, Any]:
        session = entry.session
        doc: dict[str, Any] = {
            "session": session.session_id,
            "tenant": session.tenant,
            "state": "aborted" if entry.aborted else session.state.value,
            "replays": session.replays,
            "cost": session.total_cost,
            "done": entry.finished,
        }
        if session.report is not None:
            doc["report"] = wire.report_to_obj(session.report)
        if session.error is not None:
            doc["error"] = f"{type(session.error).__name__}: {session.error}"
        if self.hub is not None:
            seq = self.hub.commit_seq(session.session_id)
            if seq is not None:
                doc["seq"] = seq
        return doc

    # ------------------------------------------------------------------
    # tenant surface
    # ------------------------------------------------------------------
    async def _open_session(self, request: Request) -> Response:
        manager = self._require_primary()
        body = request.json()
        tenant = str(body.get("tenant", "default"))
        raw_query = body.get("query")
        if raw_query is None:
            raise HttpError(400, "missing 'query'")
        query = (
            parse_query(raw_query)
            if isinstance(raw_query, str)
            else codec.query_from_obj(raw_query)
        )
        if self._inflight_total() >= self.max_inflight_total:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("service.admission_rejections")
            raise HttpError(
                429, "service at capacity", headers={"Retry-After": "1"}
            )
        if self._inflight_tenant(tenant) >= self.max_inflight_per_tenant:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("service.admission_rejections")
            raise HttpError(
                429,
                f"tenant {tenant!r} at its in-flight cap",
                headers={"Retry-After": "1"},
            )
        raw_priority = body.get("priority")
        try:
            priority = 1.0 if raw_priority is None else float(raw_priority)
        except (TypeError, ValueError):
            raise HttpError(400, "'priority' must be a number")
        session = manager.open_session(
            query,
            BrokeredOracle(self.broker, priority=priority),
            tenant=tenant,
            policy=None if raw_priority is None else TenantPolicy(priority=priority),
        )
        entry = _Entry(session=session, tenant=tenant, done=asyncio.Event())
        self._entries[session.session_id] = entry
        loop = asyncio.get_running_loop()
        entry.future = loop.run_in_executor(self._executor, manager.drive, session)

        def _mark_done(_future: asyncio.Future) -> None:
            entry.finished_at = time.monotonic()
            entry.done.set()

        entry.future.add_done_callback(_mark_done)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.sessions_opened")
            _TELEMETRY.observe("service.queue_depth", self._inflight_total())
        return json_response({"session": session.session_id, "state": "queued"})

    async def _get_session(self, request: Request) -> Response:
        return json_response(self._session_doc(self._entry(request)))

    async def _wait_session(self, request: Request) -> Response:
        entry = self._entry(request)
        timeout = request.query_float("timeout", 30.0)
        want_replicated = request.query.get("replicated", "0") not in ("0", "false", "")
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            await asyncio.wait_for(entry.done.wait(), timeout)
        except asyncio.TimeoutError:
            return json_response(self._session_doc(entry))
        if entry.future is not None:
            try:
                await entry.future  # surface executor-side crashes
            except (CancelledError, asyncio.CancelledError):
                pass
        doc = self._session_doc(entry)
        if want_replicated and self.hub is not None and "seq" in doc:
            remaining = max(0.05, deadline - loop.time())
            doc["replicated"] = await self.hub.wait_replicated(doc["seq"], remaining)
        elif want_replicated:
            doc["replicated"] = False
        return json_response(doc)

    async def _abort_session(self, request: Request) -> Response:
        entry = self._entry(request)
        if entry.finished:
            raise HttpError(409, "session already finished")
        if entry.future is not None and entry.future.cancel():
            entry.aborted = True
            entry.session.state = SessionState.FAILED
            entry.done.set()
            if _TELEMETRY.enabled:
                _TELEMETRY.count("service.sessions_aborted")
            return json_response({"session": entry.session.session_id, "state": "aborted"})
        raise HttpError(409, "session already running; it will commit or fail")

    async def _digest(self, request: Request) -> Response:
        manager = self._require_primary()

        def compute() -> dict[str, Any]:
            with manager._commit_lock:
                return {
                    "digest": codec.database_digest(manager.database),
                    "version": manager.database.version,
                }

        payload = await asyncio.get_running_loop().run_in_executor(None, compute)
        return json_response(payload)

    # ------------------------------------------------------------------
    # worker surface
    # ------------------------------------------------------------------
    def _worker_id(self, request: Request) -> str:
        worker = request.query.get("worker")
        if not worker:
            raise HttpError(400, "missing 'worker' query parameter")
        return worker

    async def _worker_feed(self, request: Request) -> Response:
        self._require_primary()
        worker = self._worker_id(request)
        wait = min(request.query_float("wait", 20.0), 60.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        while True:
            lease = self.broker.lease(worker, time.monotonic())
            if lease is not None:
                return json_response({"question": lease})
            remaining = deadline - loop.time()
            if remaining <= 0:
                return json_response({"question": None})
            assert self._work_chain is not None
            await self._work_chain.wait(remaining)

    async def _worker_stream(self, request: Request) -> StreamResponse:
        self._require_primary()
        worker = self._worker_id(request)

        async def feed():
            while True:
                lease = self.broker.lease(worker, time.monotonic())
                if lease is not None:
                    yield json.dumps({"question": lease}, sort_keys=True).encode() + b"\n"
                    continue
                assert self._work_chain is not None
                if not await self._work_chain.wait(15.0):
                    yield json.dumps({"heartbeat": True}).encode() + b"\n"

        return StreamResponse(chunks=feed())

    async def _worker_answer(self, request: Request) -> Response:
        self._require_primary()
        body = request.json()
        try:
            worker = str(body["worker"])
            qid = int(body["qid"])
            reply = body["reply"]
        except (KeyError, TypeError, ValueError) as error:
            raise HttpError(400, f"malformed answer: {error}") from error
        kind = self.broker.kind_of(qid)
        if kind is None:
            return json_response({"status": "unknown", "resolved": False})
        try:
            value = decode_reply(kind, reply)
        except Exception as error:
            raise HttpError(400, f"undecodable reply for {kind}: {error}") from error
        outcome = self.broker.answer(worker, qid, value, time.monotonic())
        return json_response(outcome)

    # ------------------------------------------------------------------
    # replication surface
    # ------------------------------------------------------------------
    def _require_hub(self) -> ReplicationHub:
        if self.hub is None:
            raise HttpError(503, "this primary is not durable; nothing to replicate")
        return self.hub

    async def _replication_checkpoint(self, request: Request) -> Response:
        hub = self._require_hub()
        document = hub.store.read_checkpoint()
        if document is None:
            raise HttpError(503, "no checkpoint written yet")
        return json_response(document)

    async def _replication_stream(self, request: Request) -> StreamResponse:
        hub = self._require_hub()
        from_seq = request.query_int("from_seq", 0)
        return StreamResponse(chunks=hub.stream(from_seq))

    async def _replication_ack(self, request: Request) -> Response:
        hub = self._require_hub()
        body = request.json()
        try:
            follower = str(body["follower"])
            seq = int(body["seq"])
        except (KeyError, TypeError, ValueError) as error:
            raise HttpError(400, f"malformed ack: {error}") from error
        hub.ack(follower, seq)
        return json_response({"acked": seq})

    async def _promote(self, request: Request) -> Response:
        if self.manager is not None:
            raise HttpError(409, "already primary")
        assert self.follower is not None
        follower = self.follower
        loop = asyncio.get_running_loop()

        def do_promote() -> SessionManager:
            if self._follower_thread is not None:
                self._follower_thread.join(timeout=10)
            return follower.promote()

        follower.stop()
        self.manager = await loop.run_in_executor(None, do_promote)
        self.follower = None
        self._follower_thread = None
        assert self._loop is not None
        if self.manager.durable:
            self.hub = ReplicationHub(self.manager, self._loop)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.promotions")
        return json_response(
            {
                "role": "primary",
                "last_seq": follower.last_seq,
                "frames_applied": follower.frames_applied,
            }
        )

    # ------------------------------------------------------------------
    # health / stats
    # ------------------------------------------------------------------
    async def _healthz(self, request: Request) -> Response:
        role = "primary" if self.manager is not None else "standby"
        doc: dict[str, Any] = {"role": role}
        if self.follower is not None:
            doc["follower"] = self.follower.stats()
        if self.hub is not None:
            doc["replication"] = self.hub.stats()
        return json_response(doc)

    async def _stats(self, request: Request) -> Response:
        states: dict[str, int] = {}
        for entry in self._entries.values():
            key = "aborted" if entry.aborted else entry.session.state.value
            states[key] = states.get(key, 0) + 1
        doc: dict[str, Any] = {
            "role": "primary" if self.manager is not None else "standby",
            "broker": self.broker.stats(),
            "sessions": states,
            "inflight": self._inflight_total(),
            "caps": {
                "per_tenant": self.max_inflight_per_tenant,
                "total": self.max_inflight_total,
            },
        }
        if self.manager is not None:
            doc["ledger"] = self.manager.ledger.snapshot()
        if self.hub is not None:
            doc["replication"] = self.hub.stats()
        if self.follower is not None:
            doc["follower"] = self.follower.stats()
        return json_response(doc)


__all__ = ["CrowdService"]
