"""Blocking clients for the crowd service (stdlib ``http.client`` only).

:class:`ServiceClient` is the tenant SDK — open a cleaning session, wait
for its commit (optionally for follower replication), read back the
report and the database digest.  :class:`WorkerClient` is a complete
crowd worker: it long-polls (or stream-tails) the question feed, answers
each question from a local :class:`~repro.oracle.base.Oracle` backend,
and POSTs replies idempotently, retrying through timeouts and
reconnects.

Both retry transient transport errors with a small backoff, so tests
can kill and promote servers under them.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Optional, Union

from ..durability import codec
from ..oracle.base import Oracle
from ..query.ast import Query
from ..shard import wire


class ServiceError(RuntimeError):
    """A non-success response from the service."""

    def __init__(self, status: int, message: str, *, retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        #: parsed ``Retry-After`` seconds on 429/503 responses
        self.retry_after = retry_after


class _Http:
    """One keep-alive connection with JSON helpers and reconnects."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str, payload: Any = None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers = {"Content-Type": "application/json"}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body, headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # a dropped keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        document = json.loads(raw) if raw else {}
        if response.status >= 400:
            retry_after = response.headers.get("Retry-After")
            raise ServiceError(
                response.status,
                document.get("error", raw.decode("utf-8", "replace")),
                retry_after=float(retry_after) if retry_after else None,
            )
        return document


class ServiceClient:
    """The tenant-side SDK for one service endpoint."""

    def __init__(self, host: str, port: int, *, tenant: str = "default") -> None:
        self.tenant = tenant
        self._http = _Http(host, port)

    def close(self) -> None:
        self._http.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sessions --------------------------------------------------------
    def open(
        self, query: Union[Query, str], *, tenant: Optional[str] = None,
        priority: Optional[float] = None,
    ) -> int:
        """Open (and start) one cleaning session; returns its id.

        ``priority`` weights this tenant in admission ordering and in
        the broker's capacity scheduler (when one is configured).

        Raises :class:`ServiceError` with ``status == 429`` when
        admission control sheds the request — honour ``retry_after``.
        """
        payload = {
            "tenant": tenant if tenant is not None else self.tenant,
            "query": query if isinstance(query, str) else codec.query_to_obj(query),
        }
        if priority is not None:
            payload["priority"] = priority
        return int(self._http.request("POST", "/v1/sessions", payload)["session"])

    def open_when_admitted(
        self, query: Union[Query, str], *, tenant: Optional[str] = None,
        priority: Optional[float] = None,
        deadline: float = 120.0,
    ) -> int:
        """Like :meth:`open`, but sleeps through 429s until admitted."""
        end = time.monotonic() + deadline
        while True:
            try:
                return self.open(query, tenant=tenant, priority=priority)
            except ServiceError as error:
                if error.status != 429 or time.monotonic() >= end:
                    raise
                time.sleep(error.retry_after or 0.2)

    def status(self, session_id: int) -> dict:
        return self._http.request("GET", f"/v1/sessions/{session_id}")

    def wait(
        self,
        session_id: int,
        *,
        timeout: float = 60.0,
        replicated: bool = False,
    ) -> dict:
        """Block until the session reaches a terminal state.

        With ``replicated=True`` the call also waits (within *timeout*)
        for the commit's WAL record to be acked by a follower; the
        returned document then carries ``replicated: true/false``.
        """
        end = time.monotonic() + timeout
        while True:
            slice_timeout = max(0.1, min(30.0, end - time.monotonic()))
            doc = self._http.request(
                "GET",
                f"/v1/sessions/{session_id}/wait?timeout={slice_timeout}"
                + ("&replicated=1" if replicated else ""),
            )
            if doc.get("done") or time.monotonic() >= end:
                return doc

    def abort(self, session_id: int) -> dict:
        return self._http.request("DELETE", f"/v1/sessions/{session_id}")

    def clean(
        self, query: Union[Query, str], *, timeout: float = 120.0,
        replicated: bool = False,
    ) -> dict:
        """Open + wait in one call; returns the terminal session doc."""
        return self.wait(
            self.open_when_admitted(query, deadline=timeout),
            timeout=timeout,
            replicated=replicated,
        )

    # -- observability ---------------------------------------------------
    def digest(self) -> dict:
        return self._http.request("GET", "/v1/digest")

    def stats(self) -> dict:
        return self._http.request("GET", "/v1/stats")

    def healthz(self) -> dict:
        return self._http.request("GET", "/v1/healthz")

    def promote(self) -> dict:
        """Promote a standby node to primary (see the failover runbook)."""
        return self._http.request("POST", "/v1/promote", {})


def answer_question(backend: Oracle, decoded: dict) -> dict:
    """Answer one decoded question with *backend*; returns the wire reply."""
    kind = decoded["kind"]
    if kind == "verify_fact":
        value: Any = backend.verify_fact(decoded["fact"])
    elif kind == "verify_facts":
        value = backend.verify_facts(decoded["facts"])
    elif kind == "verify_answer":
        value = backend.verify_answer(decoded["query"], decoded["answer"])
    elif kind == "verify_candidate":
        value = backend.verify_candidate(decoded["query"], decoded["partial"])
    elif kind == "complete_assignment":
        value = backend.complete_assignment(decoded["query"], decoded["partial"])
    elif kind == "complete_result":
        value = backend.complete_result(decoded["query"], decoded["known"])
    else:
        raise ServiceError(400, f"unknown question kind {kind!r}")
    return wire.reply_to_obj(kind, value)


class WorkerClient:
    """A crowd worker: lease → answer → POST, forever (or until stopped).

    *backend* supplies the answers (tests use
    :class:`~repro.oracle.perfect.PerfectOracle` over the ground truth;
    a real deployment would put a human or a model behind the same
    interface).
    """

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: str,
        backend: Oracle,
        *,
        poll_wait: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.backend = backend
        self.poll_wait = poll_wait
        self.answered = 0
        self.duplicates = 0
        self._http = _Http(host, port, timeout=poll_wait + 30.0)
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def close(self) -> None:
        self.stop()
        self._http.close()

    # ------------------------------------------------------------------
    def answer(self, lease: dict) -> dict:
        """Answer one lease document and POST the reply."""
        decoded = wire.question_from_obj(lease["question"])
        reply = answer_question(self.backend, decoded)
        outcome = self._http.request(
            "POST",
            "/v1/worker/answer",
            {"worker": self.worker_id, "qid": lease["qid"], "reply": reply},
        )
        if outcome.get("status") == "accepted":
            self.answered += 1
        elif outcome.get("status") == "duplicate":
            self.duplicates += 1
        return outcome

    def poll_once(self) -> bool:
        """One long-poll iteration; True if a question was answered."""
        doc = self._http.request(
            "GET",
            f"/v1/worker/feed?worker={self.worker_id}&wait={self.poll_wait}",
        )
        lease = doc.get("question")
        if lease is None:
            return False
        self.answer(lease)
        return True

    def run(self) -> None:
        """Long-poll until :meth:`stop`; survives restarts/promotions."""
        while not self._stop.is_set():
            try:
                self.poll_once()
            except (ServiceError, ConnectionError, OSError, http.client.HTTPException):
                if self._stop.wait(0.3):
                    return
                self._http.close()

    def run_stream(self) -> None:
        """Tail the chunked NDJSON feed instead of long-polling."""
        while not self._stop.is_set():
            conn = http.client.HTTPConnection(self.host, self.port, timeout=60)
            try:
                conn.request("GET", f"/v1/worker/stream?worker={self.worker_id}")
                response = conn.getresponse()
                if response.status != 200:
                    raise ServiceError(response.status, "stream refused")
                while not self._stop.is_set():
                    line = response.readline()
                    if not line:
                        break
                    message = json.loads(line)
                    if "question" in message:
                        self.answer(message["question"])
            except (ServiceError, ConnectionError, OSError, http.client.HTTPException,
                    json.JSONDecodeError):
                if self._stop.wait(0.3):
                    return
            finally:
                conn.close()

    def start_thread(self, *, stream: bool = False) -> threading.Thread:
        """Run this worker on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.run_stream if stream else self.run,
            name=f"qoco-worker-{self.worker_id}",
            daemon=True,
        )
        thread.start()
        return thread


__all__ = ["ServiceClient", "ServiceError", "WorkerClient", "answer_question"]
