"""WAL log shipping: a primary hub and a warm-follower tail.

The durability layer already frames every WAL record once
(:meth:`repro.durability.wal.WalWriter.append_frame`) and exposes the
exact bytes through :attr:`DurabilityStore.on_append`.  Replication is
therefore *byte shipping*: the primary's :class:`ReplicationHub` buffers
``(seq, frame)`` pairs and serves them over a chunked NDJSON stream; the
follower verifies each frame's CRC with the normal WAL reader
(:func:`~repro.durability.wal.decode_records`), appends the identical
bytes to its own ``wal.log``, fsyncs, and acks the sequence number.
Primary and follower logs are byte-identical by construction, so
promotion is simply :func:`repro.durability.recovery.recover_manager`
over the follower's directory — the very recovery path a crashed
primary would use on its own disk.

Checkpoints truncate the log on both sides: the hub emits a
``checkpoint`` control line, the follower refetches the full snapshot
(verifying its ``digest`` against the decoded database) and truncates
its log once every local record is subsumed by the snapshot — never
sooner, so an acked frame stays on the follower's disk until some
checkpoint covers it.  A reconnect while the primary's checkpoint is
unchanged skips the reinstall entirely and resumes the stream at the
follower's own high-water mark.

Acks close the loop: the hub tracks the newest sequence each follower
has made durable, publishes ``service.replication_lag`` (records the
slowest follower is behind), and lets the tenant surface wait for a
commit's sequence to be follower-durable before reporting
``replicated: true`` — the "zero acked-but-lost commits" guarantee the
failover test holds the service to.
"""

from __future__ import annotations

import asyncio
import base64
import http.client
import json
import os
import threading
from pathlib import Path
from typing import Any, AsyncIterator, Optional

from ..durability.codec import database_digest, database_from_obj
from ..durability.store import CHECKPOINT_FILE, WAL_FILE, DurabilityError
from ..durability.wal import decode_records
from ..telemetry import TELEMETRY as _TELEMETRY


class ReplicationError(RuntimeError):
    """A log-shipping protocol violation (bad CRC, sequence gap, ...)."""


class _Chain:
    """A rechainable asyncio.Event: set-and-replace wakes every waiter
    exactly once without the multi-reader clear() race."""

    def __init__(self) -> None:
        self._event = asyncio.Event()

    def wake(self) -> None:
        event = self._event
        self._event = asyncio.Event()
        event.set()

    async def wait(self, timeout: Optional[float] = None) -> bool:
        event = self._event
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False


class ReplicationHub:
    """Primary-side frame buffer, follower ack book, and stream feeder.

    ``on_append`` runs on session threads (inside the manager's commit
    path); everything else runs on the event loop.  The buffer holds
    every frame since the last checkpoint — exactly the records a
    follower needs that the checkpoint does not subsume — so memory
    tracks the WAL itself.
    """

    def __init__(self, manager, loop: asyncio.AbstractEventLoop) -> None:
        store = manager._store
        if store is None:
            raise DurabilityError(
                "log shipping needs a durable manager (durable_path=...)"
            )
        self.manager = manager
        self.store = store
        self._loop = loop
        self._lock = threading.Lock()
        #: ``(seq, frame_bytes)`` since the last checkpoint, ascending
        self._frames: list[tuple[int, bytes]] = []
        self.checkpoint_seq = int(store.checkpoint_seq)
        self.last_seq = int(store.last_seq)
        #: committed session id -> the WAL seq that made it durable
        self.commit_seqs: dict[int, int] = {}
        #: follower id -> newest contiguously-acked seq
        self.acks: dict[str, int] = {}
        self._chain = _Chain()
        # preload the live WAL suffix so a follower attaching to a
        # warm primary doesn't miss records appended before the hub
        tail = store.read_log()
        data = store.wal_path.read_bytes()[: tail.valid_bytes]
        start = 0
        for record, end in zip(tail.records, tail.offsets):
            self._frames.append((int(record["seq"]), data[start:end]))
            if record.get("type") == "commit":
                self.commit_seqs[int(record["session"])] = int(record["seq"])
            start = end
        store.on_append = self._on_append
        store.on_checkpoint = self._on_checkpoint

    def detach(self) -> None:
        self.store.on_append = None
        self.store.on_checkpoint = None

    # ------------------------------------------------------------------
    # store hooks (session threads)
    # ------------------------------------------------------------------
    def _on_append(self, seq: int, frame: bytes, record: dict) -> None:
        with self._lock:
            self._frames.append((seq, frame))
            self.last_seq = seq
            if record.get("type") == "commit":
                self.commit_seqs[int(record["session"])] = seq
        self._observe_lag()
        self._loop.call_soon_threadsafe(self._chain.wake)

    def _on_checkpoint(self, seq: int) -> None:
        with self._lock:
            self.checkpoint_seq = seq
            self.last_seq = max(self.last_seq, seq)
            self._frames = [(s, f) for s, f in self._frames if s > seq]
        self._loop.call_soon_threadsafe(self._chain.wake)

    def _observe_lag(self) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.observe("service.replication_lag", self.lag())

    # ------------------------------------------------------------------
    # introspection / acks (event loop)
    # ------------------------------------------------------------------
    def lag(self) -> int:
        """Records the slowest follower is behind (0 with no follower
        attached *and* nothing shipped — a lone primary reports its
        whole unreplicated log)."""
        with self._lock:
            if not self.acks:
                return len(self._frames)
            return max(0, self.last_seq - min(self.acks.values()))

    def acked_seq(self) -> int:
        with self._lock:
            return min(self.acks.values()) if self.acks else 0

    def ack(self, follower: str, seq: int) -> None:
        with self._lock:
            self.acks[follower] = max(self.acks.get(follower, 0), seq)
        self._observe_lag()
        self._chain.wake()

    def commit_seq(self, session_id: int) -> Optional[int]:
        with self._lock:
            return self.commit_seqs.get(session_id)

    async def wait_replicated(self, seq: int, timeout: float) -> bool:
        """True once some follower has acked *seq* (durable twice)."""
        deadline = self._loop.time() + timeout
        while True:
            with self._lock:
                if any(acked >= seq for acked in self.acks.values()):
                    return True
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                return False
            await self._chain.wait(remaining)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "last_seq": self.last_seq,
                "checkpoint_seq": self.checkpoint_seq,
                "buffered_frames": len(self._frames),
                "acks": dict(self.acks),
                "lag": (
                    max(0, self.last_seq - min(self.acks.values()))
                    if self.acks
                    else len(self._frames)
                ),
            }

    # ------------------------------------------------------------------
    # streaming (event loop)
    # ------------------------------------------------------------------
    async def stream(self, from_seq: int) -> AsyncIterator[bytes]:
        """NDJSON frame lines for a follower positioned at *from_seq*.

        Emits ``{"seq", "frame"}`` data lines (frame = base64 of the
        exact WAL bytes) and a ``{"control": "checkpoint", "seq"}`` line
        when a checkpoint truncated the shipped range — the follower
        then refetches the snapshot and reconnects.
        """
        with self._lock:
            known_checkpoint = self.checkpoint_seq
        sent = from_seq
        while True:
            with self._lock:
                checkpoint_seq = self.checkpoint_seq
                batch = [(s, f) for s, f in self._frames if s > sent]
            # a follower behind the checkpoint needs the snapshot; a
            # caught-up follower still refetches when a *new* checkpoint
            # lands, so its log truncation mirrors the primary's
            if sent < checkpoint_seq or checkpoint_seq > known_checkpoint:
                yield (
                    json.dumps({"control": "checkpoint", "seq": checkpoint_seq}).encode()
                    + b"\n"
                )
                return
            for seq, frame in batch:
                line = {
                    "seq": seq,
                    "frame": base64.b64encode(frame).decode("ascii"),
                }
                yield json.dumps(line).encode() + b"\n"
                sent = seq
            if not batch:
                # heartbeat keeps half-open connections detectable
                if not await self._chain.wait(15.0):
                    yield json.dumps({"heartbeat": sent}).encode() + b"\n"


# ---------------------------------------------------------------------------
# follower side
# ---------------------------------------------------------------------------
def _fsync_path(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


class Follower:
    """Tails a primary's log into a local directory, ack by ack.

    Runs on a plain thread with blocking stdlib HTTP (the event loop of
    the standby process stays free for its own health/promotion
    endpoints).  :meth:`run` loops fetch-checkpoint → tail-stream until
    :meth:`stop`; :meth:`promote` then turns the directory into a live
    :class:`~repro.server.manager.SessionManager` via the standard
    recovery path.
    """

    def __init__(
        self,
        directory,
        primary_host: str,
        primary_port: int,
        *,
        follower_id: str = "follower",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.follower_id = follower_id
        self.last_seq = 0
        self.checkpoint_seq = 0
        self.frames_applied = 0
        self.checkpoints_fetched = 0
        self._stop = threading.Event()
        self._wal_handle = None
        self._ack_conn: Optional[http.client.HTTPConnection] = None

    # -- primary RPC (blocking) ----------------------------------------
    def _connection(self):
        return http.client.HTTPConnection(
            self.primary_host, self.primary_port, timeout=30
        )

    def _get_json(self, path: str) -> dict:
        conn = self._connection()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            body = response.read()
            if response.status != 200:
                raise ReplicationError(f"GET {path} -> {response.status}: {body!r}")
            return json.loads(body)
        finally:
            conn.close()

    def _post_ack(self, seq: int) -> None:
        # the ack connection is persistent: one ack per applied frame
        # on a fresh TCP connection each would serialize the whole
        # pipeline behind connection setup and cap replication at a few
        # frames per second
        body = json.dumps({"follower": self.follower_id, "seq": seq}).encode()
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
        }
        for attempt in (1, 2):
            if self._ack_conn is None:
                self._ack_conn = self._connection()
            try:
                self._ack_conn.request("POST", "/v1/replication/ack", body, headers)
                self._ack_conn.getresponse().read()
                return
            except (OSError, http.client.HTTPException):
                self._ack_conn.close()
                self._ack_conn = None
                if attempt == 2:
                    raise

    # -- local durable state -------------------------------------------
    def _install_checkpoint(self, document: dict) -> None:
        """Verify and atomically install the primary's snapshot.

        The local log is truncated only when every record in it is
        subsumed by the snapshot (``last_seq <= checkpoint seq``) —
        acked frames beyond the checkpoint must never leave disk until
        a later snapshot covers them (recovery skips obsolete records
        by sequence, so a kept log is merely larger, never wrong).
        """
        database = database_from_obj(document["database"])
        digest = database_digest(database)
        if digest != document.get("digest"):
            raise ReplicationError(
                f"checkpoint digest mismatch: computed {digest}, "
                f"primary claims {document.get('digest')}"
            )
        from ..durability.codec import canonical_json

        payload = canonical_json(document).encode("utf-8")
        tmp = self.directory / (CHECKPOINT_FILE + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            _fsync_path(handle)
        os.replace(tmp, self.directory / CHECKPOINT_FILE)
        seq = int(document["seq"])
        if self.last_seq <= seq:
            handle = self._wal()
            handle.seek(0)
            handle.truncate()
            _fsync_path(handle)
            # every truncated frame is covered by the snapshot, so the
            # stream must resume exactly at the checkpoint — a higher
            # resume point would silently skip the re-shipped frames
            self.last_seq = seq
        self.checkpoint_seq = seq
        self.checkpoints_fetched += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.follower.checkpoints")

    def _wal(self):
        if self._wal_handle is None or self._wal_handle.closed:
            self._wal_handle = open(self.directory / WAL_FILE, "ab+")
        return self._wal_handle

    def _apply_frame(self, seq: int, frame: bytes) -> None:
        decoded = decode_records(frame)
        if decoded.torn_bytes or len(decoded.records) != 1:
            raise ReplicationError(f"frame for seq {seq} failed CRC validation")
        record = decoded.records[0]
        if int(record["seq"]) != seq:
            raise ReplicationError(
                f"frame seq {record['seq']} disagrees with stream seq {seq}"
            )
        if seq <= self.last_seq:
            return  # redelivery after a reconnect: already durable
        if seq != self.last_seq + 1:
            # a silent gap would produce a WAL missing records; fail
            # loudly so the tail loop reconnects and refetches
            raise ReplicationError(
                f"sequence gap: expected {self.last_seq + 1}, got {seq}"
            )
        handle = self._wal()
        handle.write(frame)
        _fsync_path(handle)
        self.last_seq = seq
        self.frames_applied += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.follower.frames")

    # -- the tail loop --------------------------------------------------
    def run(self) -> None:
        """Follow until :meth:`stop`; transient errors retry the loop."""
        while not self._stop.is_set():
            try:
                self._follow_once()
            except (OSError, ReplicationError, json.JSONDecodeError):
                if self._stop.wait(0.5):
                    return

    def _follow_once(self) -> None:
        document = self._get_json("/v1/replication/checkpoint")
        # reinstall (and truncate) only for a checkpoint we have not
        # installed yet: a plain reconnect while the primary's
        # checkpoint is unchanged must keep the acked local WAL intact,
        # otherwise frames the tenant saw as replicated would be
        # deleted here and never re-shipped (the stream resumes at
        # last_seq, which those frames are below)
        if self.checkpoints_fetched == 0 or int(document["seq"]) > self.checkpoint_seq:
            self._install_checkpoint(document)
        self._post_ack(self.last_seq)
        conn = self._connection()
        try:
            conn.request("GET", f"/v1/replication/stream?from_seq={self.last_seq}")
            response = conn.getresponse()
            if response.status != 200:
                raise ReplicationError(f"stream -> {response.status}")
            while not self._stop.is_set():
                line = response.readline()
                if not line:
                    return  # primary went away; outer loop reconnects
                message = json.loads(line)
                if "heartbeat" in message:
                    continue
                if message.get("control") == "checkpoint":
                    return  # refetch the snapshot on the next pass
                seq = int(message["seq"])
                self._apply_frame(seq, base64.b64decode(message["frame"]))
                self._post_ack(self.last_seq)
        finally:
            conn.close()

    def stop(self) -> None:
        self._stop.set()

    def close(self) -> None:
        self.stop()
        if self._ack_conn is not None:
            self._ack_conn.close()
            self._ack_conn = None
        if self._wal_handle is not None and not self._wal_handle.closed:
            self._wal_handle.close()

    # -- promotion -------------------------------------------------------
    def promote(self, **manager_kwargs):
        """Stop tailing and recover a live manager from the local copy.

        The follower's directory is, byte for byte, what the primary's
        disk would hold after a crash at the last acked record — so
        promotion *is* crash recovery.
        """
        self.close()
        from ..durability.recovery import recover_manager

        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.follower.promotions")
        return recover_manager(self.directory, **manager_kwargs)

    def stats(self) -> dict[str, Any]:
        return {
            "follower_id": self.follower_id,
            "last_seq": self.last_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "frames_applied": self.frames_applied,
            "checkpoints_fetched": self.checkpoints_fetched,
        }


__all__ = ["Follower", "ReplicationError", "ReplicationHub"]
