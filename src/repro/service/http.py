"""A tiny asyncio HTTP/1.1 layer — just what the crowd service needs.

No external dependency: the default service path runs on stdlib
``asyncio`` streams alone (the container bakes no aiohttp; see
ISSUE 8).  The layer supports exactly the subset the
:class:`~repro.service.app.CrowdService` surface uses:

* request parsing — request line, case-insensitive headers, bodies by
  ``Content-Length`` (bounded by ``max_body``), query strings;
* keep-alive connections with per-read timeouts, so a *slow-loris*
  client — one that opens a connection and dribbles (or stalls) its
  request head or body — is dropped with ``408`` after
  ``read_timeout`` seconds instead of pinning a connection slot;
* plain JSON responses (``Content-Length`` framing) and **chunked**
  streaming responses driven by an async generator — the transport of
  the worker question feed and the WAL replication stream;
* a path router with ``{param}`` segments.

Telemetry: every handled request observes
``service.request_latency_s`` and counts ``service.requests``;
error responses count ``service.http_errors``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Awaitable, Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from ..telemetry import TELEMETRY as _TELEMETRY

#: status line reasons for the handful of codes the service emits
REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raise inside a handler to produce a non-200 JSON response."""

    def __init__(self, status: int, message: str, *, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: ``{param}`` captures from the matched route pattern
    params: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The body as JSON (400 on malformed/empty input)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"malformed JSON body: {error}") from error

    def query_int(self, name: str, default: int) -> int:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as error:
            raise HttpError(400, f"query parameter {name!r} must be an integer") from error

    def query_float(self, name: str, default: float) -> float:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as error:
            raise HttpError(400, f"query parameter {name!r} must be a number") from error


@dataclass
class Response:
    """A buffered response (framed with ``Content-Length``)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


@dataclass
class StreamResponse:
    """A chunked streaming response driven by an async byte generator.

    The connection switches to ``Transfer-Encoding: chunked``; each
    yielded ``bytes`` becomes one chunk, flushed immediately — the
    long-lived transport of the worker question feed and the WAL
    shipping stream.  The generator ending closes the stream cleanly;
    a client disconnect cancels it.
    """

    chunks: AsyncIterator[bytes]
    status: int = 200
    content_type: str = "application/x-ndjson"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(payload: Any, status: int = 200, *, headers: Optional[dict] = None) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    return Response(status=status, body=body, headers=headers or {})


Handler = Callable[[Request], Awaitable[Any]]


class _Route:
    """One ``(method, pattern)`` entry; patterns use ``{name}`` segments."""

    def __init__(self, method: str, pattern: str, handler: Handler) -> None:
        self.method = method
        self.handler = handler
        self.segments = pattern.strip("/").split("/") if pattern.strip("/") else []

    def match(self, path_segments: list[str]) -> Optional[dict[str, str]]:
        if len(path_segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for want, got in zip(self.segments, path_segments):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = unquote(got)
            elif want != got:
                return None
        return params


class HttpServer:
    """Route table + asyncio connection loop.

    Parameters
    ----------
    read_timeout:
        Seconds a single read of the request head or body may stall
        before the connection is dropped (the slow-loris guard).
    idle_timeout:
        Seconds a keep-alive connection may sit between requests —
        until the first byte of the next head arrives; from then on
        ``read_timeout`` governs the rest of that head.
    max_body:
        Request body ceiling in bytes (413 beyond it).
    """

    def __init__(
        self,
        *,
        read_timeout: float = 10.0,
        idle_timeout: float = 120.0,
        max_body: int = 16 * 1024 * 1024,
    ) -> None:
        self.read_timeout = read_timeout
        self.idle_timeout = idle_timeout
        self.max_body = max_body
        self._routes: list[_Route] = []
        self._server: Optional[asyncio.AbstractServer] = None
        #: open client connections (for prompt shutdown)
        self._connections: set[asyncio.Task] = set()

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(_Route(method.upper(), pattern, handler))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``
        (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(self._serve_connection, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        first = True
        while True:
            request = await self._read_request(reader, writer, first=first)
            if request is None:
                return
            first = False
            keep_alive = request.headers.get("connection", "keep-alive") != "close"
            start = time.perf_counter()
            response = await self._dispatch(request)
            if _TELEMETRY.enabled:
                _TELEMETRY.count("service.requests")
                _TELEMETRY.observe(
                    "service.request_latency_s", time.perf_counter() - start
                )
            if isinstance(response, StreamResponse):
                await self._write_stream(writer, response)
                return  # a stream consumes the rest of the connection
            await self._write_response(writer, response, keep_alive)
            if not keep_alive:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter, *, first: bool
    ) -> Optional[Request]:
        """Parse one request, or ``None`` when the connection should close.

        Every request head must complete within ``read_timeout`` of its
        first byte; between keep-alive requests the more generous
        ``idle_timeout`` applies only while *no* byte of the next head
        has arrived.  A stalled head or body gets a 408 and the
        connection is closed — the slow-loris defence, which therefore
        bounds a dribbled head at ``read_timeout`` on keep-alive
        connections too.
        """
        try:
            if first:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.read_timeout
                )
            else:
                # two-phase: the connection may idle between requests,
                # but once the next head starts arriving the strict
                # per-head deadline takes over
                prefix = await asyncio.wait_for(
                    reader.readexactly(1), self.idle_timeout
                )
                head = prefix + await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.read_timeout
                )
        except asyncio.TimeoutError:
            await self._reject(writer, 408, "request head timed out")
            return None
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None  # client went away between requests
        except asyncio.LimitOverrunError:
            await self._reject(writer, 413, "request head too large")
            return None
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, _version = lines[0].split(" ", 2)
            headers: dict[str, str] = {}
            for line in lines[1:]:
                if not line:
                    continue
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        except ValueError:
            await self._reject(writer, 400, "malformed request line")
            return None
        parts = urlsplit(target)
        query = dict(parse_qsl(parts.query, keep_blank_values=True))
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._reject(writer, 400, "malformed Content-Length header")
            return None
        if length < 0:
            await self._reject(writer, 400, "malformed Content-Length header")
            return None
        if length > self.max_body:
            await self._reject(writer, 413, "request body too large")
            return None
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout
                )
            except asyncio.TimeoutError:
                # a slow-loris body: bytes promised by Content-Length
                # never (fully) arrive — reject and drop the connection
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("service.slowloris_drops")
                await self._reject(writer, 408, "request body timed out")
                return None
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return None
        return Request(
            method=method.upper(),
            path=parts.path,
            query=query,
            headers=headers,
            body=body,
        )

    async def _dispatch(self, request: Request) -> Response | StreamResponse:
        segments = request.path.strip("/").split("/") if request.path.strip("/") else []
        methods_seen: set[str] = set()
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            methods_seen.add(route.method)
            if route.method != request.method:
                continue
            request.params = params
            try:
                return await route.handler(request)
            except HttpError as error:
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("service.http_errors")
                return json_response(
                    {"error": error.message}, error.status, headers=error.headers
                )
            except Exception as error:  # a handler bug must not kill the loop
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("service.http_errors")
                return json_response(
                    {"error": f"{type(error).__name__}: {error}"}, 500
                )
        if methods_seen:
            return json_response({"error": "method not allowed"}, 405)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.http_errors")
        return json_response({"error": f"no route for {request.path}"}, 404)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body)
        await writer.drain()

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: StreamResponse
    ) -> None:
        reason = REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            "Transfer-Encoding: chunked",
            "Connection: close",
        ]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n")
        await writer.drain()
        try:
            async for chunk in response.chunks:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            generator = response.chunks
            aclose = getattr(generator, "aclose", None)
            if aclose is not None:
                try:
                    await aclose()
                except RuntimeError:  # pragma: no cover - generator already closing
                    pass

    async def _reject(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.count("service.http_errors")
        try:
            await self._write_response(
                writer, json_response({"error": message}, status), keep_alive=False
            )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


__all__ = [
    "Handler",
    "HttpError",
    "HttpServer",
    "Request",
    "Response",
    "StreamResponse",
    "json_response",
]
