"""The live crowd-dispatch engine (§6.2, §7 wall-clock dimension).

``ParallelQOCO`` structures cleaning into *rounds* of questions; this
engine is what stands between a round and its answers when the crowd is
live rather than an instantly-answering function call.  Every question
of a round becomes an in-flight *vote* (or several, for closed
questions decided by majority) against a pool of simulated workers:

* answers take stochastic time (the crowd simulator's latency models);
* workers may ignore an assignment (no-show), leave for good (dropout),
  or answer too late to count — per-question timeouts retry with
  exponential backoff onto fresh workers (:class:`RetryPolicy`);
* identical closed questions from concurrent tasks coalesce into one
  shared vote (:mod:`repro.dispatch.dedup`);
* cost/deadline budgets degrade gracefully: once a budget is exhausted
  new questions are answered from cached knowledge (or a conservative
  default) and the run completes with ``converged=False`` — it never
  hangs (:class:`Budget`).

Replay is the validation oracle
-------------------------------
The engine's timing model is deliberately the same as
:class:`repro.crowdsim.CrowdSimulator`: a ``(free_at, worker)`` heap,
one latency sample per collected answer, and a barrier between maximal
runs of same-kind questions ("parallel foreach" waves).  A fault-free,
unbudgeted dispatch run therefore produces an interaction log whose
post-hoc replay (same pool size, votes, latency sampler, and seed)
reproduces the engine's timeline *bit for bit* — the differential test
in ``tests/test_dispatch_differential.py`` holds the two timelines
equal, tying the live engine to the already-validated §6.2 model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..core.parallel import ParallelQOCO, RoundScheduler
from ..crowdsim.simulator import (
    AnswerEvent,
    LatencySampler,
    QuestionCompletion,
    Timeline,
    lognormal_latency,
)
from ..oracle.base import (
    AccountingOracle,
    open_question_cost,
    result_question_cost,
)
from ..oracle.questions import QuestionKind
from ..telemetry import TELEMETRY as _TELEMETRY
from .dedup import AnswerBoard, question_key
from .policy import Budget, FaultKind, FaultModel, RetryPolicy
from .workers import WorkerPool


@dataclass
class DispatchStats:
    """Plain counters of one dispatch session (mirrored to telemetry)."""

    questions: int = 0            # questions actually routed to workers
    cache_hits: int = 0           # answered free from the accounting cache
    dedup_coalesced: int = 0      # duplicates folded into a shared vote
    shared_hits: int = 0          # answered free from a cross-session board
    similarity_hits: int = 0      # answered from a renamed twin's verdict
    member_answers: int = 0       # answers collected from workers (incl. discarded)
    discarded_answers: int = 0    # arrived past the timeout, thrown away
    late_answers: int = 0         # assignments that drew the LATE fault
    retries: int = 0              # re-dispatched vote slots
    timeouts: int = 0             # assignments abandoned at the timeout
    no_shows: int = 0             # workers that silently ignored an assignment
    dropouts: int = 0             # workers that left the pool
    partial_votes: int = 0        # closed questions decided on a short sample
    unanswered: int = 0           # questions no worker ever answered
    budget_denied: int = 0        # questions never posted (budget exhausted)
    fallbacks: int = 0            # degraded answers (cache/conservative default)
    no_workers: int = 0           # vote slots with an empty (all-dropout) pool

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class _VoteResult:
    arrived: bool
    value: Any
    end: float


@dataclass(frozen=True)
class _Spec:
    """One request normalized for dispatch."""

    qkind: QuestionKind
    closed: bool
    detail: str
    ask: Callable[[Any], Any]                 # member oracle -> value
    probe: Callable[[], Optional[Any]]        # accounting-cache lookup
    commit: Callable[[Any], None]             # deferred cache write
    cost: Callable[[Any], int]                # §7 units of the reply
    fallback: Callable[[], Any]               # degraded answer


class DispatchEngine:
    """Routes question rounds through a simulated worker pool.

    One engine drives one cleaning session: it accumulates the virtual
    clock, the timeline, and the dispatch statistics across rounds.
    Bind it to a :class:`ParallelQOCO` via :attr:`scheduler_factory`.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultModel] = None,
        budget: Optional[Budget] = None,
        votes_per_closed: int = 3,
        latency: Optional[LatencySampler] = None,
        rng: Optional[random.Random] = None,
        dedup: bool = True,
        shared: Optional[AnswerBoard] = None,
    ) -> None:
        if votes_per_closed < 1:
            raise ValueError("need at least one vote per closed question")
        self.pool = pool
        #: cross-session answer board (repro.server); None = solo session
        self.shared = shared
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults if faults is not None else FaultModel()
        if self.faults.lossy and self.retry.timeout is None:
            raise ValueError(
                "no-show/dropout faults require a RetryPolicy timeout, "
                "otherwise a lost assignment would hang forever"
            )
        self.budget = budget
        self.votes_per_closed = votes_per_closed
        self.latency = latency if latency is not None else lognormal_latency()
        self.rng = rng if rng is not None else random.Random()
        self.dedup_enabled = dedup
        self.oracle: Optional[AccountingOracle] = None
        self.timeline = Timeline()
        self.stats = DispatchStats()
        self.degraded = False
        self._clock = 0.0
        self._wave_kind: Optional[QuestionKind] = None
        self._wave_ends: list[float] = []
        self._watermark = 0.0

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    @property
    def scheduler_factory(self) -> Callable[[AccountingOracle], "DispatchRoundScheduler"]:
        """Pass as ``ParallelQOCO(scheduler_factory=engine.scheduler_factory)``."""

        def factory(oracle: AccountingOracle) -> DispatchRoundScheduler:
            self.bind(oracle)
            return DispatchRoundScheduler(oracle, self)

        return factory

    def bind(self, oracle: AccountingOracle) -> "DispatchEngine":
        if self.oracle is not None and self.oracle is not oracle:
            raise RuntimeError(
                "engine already bound to another session; "
                "use one DispatchEngine per cleaning run"
            )
        self.oracle = oracle
        return self

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def wall_clock(self) -> float:
        """Simulated seconds until the last collected answer."""
        return self._watermark

    # ------------------------------------------------------------------
    # the round interface
    # ------------------------------------------------------------------
    def resolve_round(self, requests: Sequence[tuple]) -> list[Any]:
        """Answer one round of question requests.

        Questions post concurrently: cache visibility is the state at
        round start (answers land in the accounting cache only when the
        round completes), which is exactly why cross-task deduplication
        exists — concurrent duplicates cannot help each other through
        the cache the way sequential ones do.
        """
        if self.oracle is None:
            raise RuntimeError("engine not bound: use scheduler_factory")
        deadline_ref = self._watermark  # wall-clock as of round start
        inflight: dict[Any, Any] = {}
        commits: list[tuple[_Spec, Any]] = []
        answers = []
        for request in requests:
            answers.append(
                self._resolve_one(request, inflight, commits, deadline_ref)
            )
        for spec, value in commits:
            spec.commit(value)
        return answers

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _count(self, name: str, value: float = 1) -> None:
        if _TELEMETRY.enabled:
            _TELEMETRY.count(name, value)

    def _resolve_one(
        self,
        request: tuple,
        inflight: dict,
        commits: list,
        deadline_ref: float,
    ) -> Any:
        spec = self._spec(request)
        cached = spec.probe()
        if cached is not None:
            self.stats.cache_hits += 1
            self._count("oracle.cache_hits")  # mirrors the synchronous path
            return cached
        key = question_key(request) if self.dedup_enabled else None
        if key is not None and key in inflight:
            self.stats.dedup_coalesced += 1
            self._count("dispatch.dedup_coalesced")
            return inflight[key]
        if key is not None and self.shared is not None:
            published = self.shared.get(key)
            if published is not None:
                # another session already paid for this closed question;
                # adopt its final verdict and remember it locally so the
                # accounting cache serves repeats
                self.stats.shared_hits += 1
                self._count("dispatch.shared_hits")
                commits.append((spec, published))
                inflight[key] = published
                return published
            probe = getattr(self.shared, "get_similar", None)
            similar = probe(key) if probe is not None else None
            if similar is not None:
                # a variable-renamed twin of this question was already
                # answered; adopt its verdict, and republish under the
                # exact key so later sessions hit directly
                self.stats.similarity_hits += 1
                self._count("dispatch.similarity_hits")
                commits.append((spec, similar))
                inflight[key] = similar
                self.shared.put(key, similar)
                return similar
        if self.budget is not None and (
            self.budget.cost_exhausted()
            or self.budget.time_exhausted(deadline_ref)
        ):
            self.stats.budget_denied += 1
            self.stats.fallbacks += 1
            self.degraded = True
            self._count("dispatch.budget_denied")
            return spec.fallback()
        value, answered = self._dispatch(spec)
        if answered:
            commits.append((spec, value))
            if key is not None:
                inflight[key] = value
                if self.shared is not None:
                    self.shared.put(key, value)
        return value

    def _dispatch(self, spec: _Spec) -> tuple[Any, bool]:
        """Route one question to the pool; returns ``(value, answered)``."""
        self._enter_wave(spec.qkind)
        post_time = self._clock
        q_index = len(self.oracle.log.records)
        votes = self.votes_per_closed if spec.closed else 1
        collected: list[Any] = []
        ends: list[float] = []
        for _ in range(votes):
            vote = self._vote(spec, post_time, q_index)
            ends.append(vote.end)
            if vote.arrived:
                collected.append(vote.value)
        completed = max(ends)
        self._wave_ends.append(completed)
        if completed > self._watermark:
            self._watermark = completed
        if not collected:
            # no worker ever answered: nothing to log, degrade instead
            self.stats.unanswered += 1
            self.stats.fallbacks += 1
            self.degraded = True
            self._count("dispatch.unanswered")
            return spec.fallback(), False
        if spec.closed:
            if len(collected) < votes:
                self.stats.partial_votes += 1
                self._count("dispatch.partial_votes")
            value: Any = sum(1 for v in collected if v) * 2 > len(collected)
        else:
            value = collected[0]
        cost = spec.cost(value)
        self.oracle.record_interaction(spec.qkind, cost, spec.detail)
        if self.budget is not None:
            self.budget.charge(cost)
        self.timeline.completions.append(QuestionCompletion(q_index, completed))
        self.stats.questions += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("dispatch.questions")
            _TELEMETRY.observe("dispatch.question_latency", completed - post_time)
        return value, True

    def _vote(self, spec: _Spec, post_time: float, q_index: int) -> _VoteResult:
        """One vote slot: an assignment chain with timeout/retry/reroute."""
        t = post_time
        exclude: set[int] = set()
        attempt = 0
        while True:
            worker = self.pool.acquire(
                t, frozenset(exclude) if self.retry.reroute else frozenset()
            )
            if worker is None:
                self.stats.no_workers += 1
                self._count("dispatch.no_workers")
                return _VoteResult(False, None, t)
            start = max(worker.free_at, t)
            fault = self.faults.draw()
            timeout = self.retry.timeout
            if fault is FaultKind.DROPOUT or fault is FaultKind.NO_SHOW:
                if fault is FaultKind.DROPOUT:
                    self.pool.drop(worker)
                    self.stats.dropouts += 1
                    self._count("dispatch.dropouts")
                else:
                    worker.no_shows += 1
                    self.stats.no_shows += 1
                    self._count("dispatch.no_shows")
                    self.pool.commit(worker, worker.free_at)
                fail_at = start + timeout  # lossy faults imply a timeout
            else:
                duration = self.latency(self.rng)
                if fault is FaultKind.LATE:
                    duration *= self.faults.late_factor
                    self.stats.late_answers += 1
                    self._count("dispatch.late_answers")
                end = start + duration
                worker.occupy(start, end)
                self.pool.commit(worker, end)
                value = spec.ask(worker.member)
                worker.answered += 1
                self.stats.member_answers += 1
                self._count("dispatch.member_answers")
                self.timeline.answers.append(
                    AnswerEvent(q_index, worker.worker_id, start, end)
                )
                if timeout is None or duration <= timeout:
                    return _VoteResult(True, value, end)
                # the answer exists but arrived past the cutoff
                self.stats.discarded_answers += 1
                self._count("dispatch.discarded_answers")
                fail_at = start + timeout
            self.stats.timeouts += 1
            self._count("dispatch.timeouts")
            attempt += 1
            if attempt > self.retry.max_retries:
                return _VoteResult(False, None, fail_at)
            self.stats.retries += 1
            self._count("dispatch.retries")
            exclude.add(worker.worker_id)
            t = fail_at + self.retry.delay(attempt - 1)

    def _enter_wave(self, qkind: QuestionKind) -> None:
        """Barrier between maximal same-kind runs (the replay model)."""
        if qkind is not self._wave_kind:
            if self._wave_ends:
                self._clock = max(self._wave_ends)
            self._wave_ends = []
            self._wave_kind = qkind

    # -- request normalization ------------------------------------------
    def _spec(self, request: tuple) -> _Spec:
        kind = request[0]
        oracle = self.oracle
        if kind == "verify_fact":
            fact = request[1]
            return _Spec(
                QuestionKind.VERIFY_FACT, True, str(fact),
                ask=lambda m: m.verify_fact(fact),
                probe=lambda: oracle.known_fact_value(fact),
                commit=lambda v: oracle.remember_fact(fact, v),
                cost=lambda v: 1,
                # "the fact is fine": never deletes on a guess
                fallback=lambda: True,
            )
        if kind == "verify_answer":
            _, query, answer = request
            return _Spec(
                QuestionKind.VERIFY_ANSWER, True, f"{query.name}{answer}",
                ask=lambda m: m.verify_answer(query, answer),
                probe=lambda: oracle.cached_answer(query, answer),
                commit=lambda v: oracle.remember_answer(query, answer, v),
                cost=lambda v: 1,
                # "leave the answer alone" (the degraded report is
                # already flagged converged=False)
                fallback=lambda: True,
            )
        if kind == "verify_candidate":
            _, query, partial = request
            return _Spec(
                QuestionKind.VERIFY_CANDIDATE, True, query.name,
                ask=lambda m: m.verify_candidate(query, partial),
                probe=lambda: None,
                commit=lambda v: None,
                cost=lambda v: 1,
                fallback=lambda: False,  # never inserts on a guess
            )
        if kind == "complete":
            _, query, partial = request
            return _Spec(
                QuestionKind.COMPLETE_ASSIGNMENT, False, query.name,
                ask=lambda m: m.complete_assignment(query, partial),
                probe=lambda: None,
                commit=lambda v: None,
                cost=lambda v: open_question_cost(query, partial, v),
                fallback=lambda: None,
            )
        if kind == "complete_result":
            _, query, known = request
            return _Spec(
                QuestionKind.COMPLETE_RESULT, False, query.name,
                ask=lambda m: m.complete_result(query, known),
                probe=lambda: None,
                commit=lambda v: None,
                cost=lambda v: result_question_cost(query, v),
                fallback=lambda: None,
            )
        raise ValueError(f"unknown request {request!r}")


class DispatchRoundScheduler(RoundScheduler):
    """A :class:`~repro.core.parallel.RoundScheduler` whose rounds go
    through the dispatch engine instead of synchronous oracle calls."""

    def __init__(self, oracle: AccountingOracle, engine: DispatchEngine) -> None:
        super().__init__(oracle)
        self.engine = engine.bind(oracle)

    def answer_batch(self, requests: list) -> list:
        return self.engine.resolve_round(requests)

    @property
    def wall_clock(self) -> float:
        return self.engine.wall_clock

    @property
    def degraded(self) -> bool:
        return self.engine.degraded


def dispatch_clean(
    database,
    query,
    members: Sequence,
    *,
    oracle: Optional[AccountingOracle] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultModel] = None,
    budget: Optional[Budget] = None,
    votes_per_closed: int = 3,
    latency: Optional[LatencySampler] = None,
    rng: Optional[random.Random] = None,
    dedup: bool = True,
    shared: Optional[AnswerBoard] = None,
    inbox_capacity: Optional[int] = None,
    **parallel_kwargs,
):
    """Run one dispatched cleaning session; returns ``(report, engine)``.

    *members* are the worker backends (one worker each; repeat an
    oracle to share knowledge across workers).  The wrapped accounting
    oracle's own backend is never consulted — every question goes
    through the engine — so *oracle* only needs to be supplied to share
    a log or cache with other runs.
    """
    pool = WorkerPool(members, inbox_capacity=inbox_capacity)
    engine = DispatchEngine(
        pool,
        retry=retry,
        faults=faults,
        budget=budget,
        votes_per_closed=votes_per_closed,
        latency=latency,
        rng=rng,
        dedup=dedup,
        shared=shared,
    )
    accounting = oracle if oracle is not None else AccountingOracle(members[0])
    qoco = ParallelQOCO(
        database,
        accounting,
        scheduler_factory=engine.scheduler_factory,
        **parallel_kwargs,
    )
    report = qoco.clean(query)
    return report, engine
