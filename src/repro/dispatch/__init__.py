"""Live crowd-dispatch: asynchronous question routing for the cleaning loop.

The paper's deployment (§6.2, §7) cleans against human experts whose
answers are slow, duplicated across concurrent tasks, and sometimes
never arrive.  This package makes those realities first-class inside
``ParallelQOCO``: rounds of questions are routed through a pool of
simulated workers with stochastic latency, fault injection, per-question
timeout/retry/re-routing, cross-task deduplication of identical closed
questions, and deadline/cost budgets with graceful degradation.  See
``docs/dispatch.md``.
"""

from .dedup import AnswerBoard, DedupIndex, question_key
from .engine import (
    DispatchEngine,
    DispatchRoundScheduler,
    DispatchStats,
    dispatch_clean,
)
from .policy import Budget, FaultKind, FaultModel, RetryPolicy
from .workers import Worker, WorkerPool, perfect_pool

__all__ = [
    "AnswerBoard",
    "Budget",
    "DedupIndex",
    "DispatchEngine",
    "DispatchRoundScheduler",
    "DispatchStats",
    "FaultKind",
    "FaultModel",
    "RetryPolicy",
    "Worker",
    "WorkerPool",
    "dispatch_clean",
    "perfect_pool",
    "question_key",
]
