"""Simulated crowd workers with bounded inboxes.

Each :class:`Worker` wraps one member oracle (usually a
:class:`~repro.oracle.perfect.PerfectOracle` or
:class:`~repro.oracle.imperfect.ImperfectOracle`) — the *knowledge* —
while the pool owns the *availability* model: a min-heap of
``(free_at, worker_id)`` entries, exactly the expert heap of
:class:`repro.crowdsim.CrowdSimulator`, so a fault-free dispatch run
consumes workers (and therefore latency samples) in the identical
order as a post-hoc replay of its log.

On top of the replay model the pool adds what a live system needs:

* **bounded inboxes** — a worker holding ``inbox_capacity`` unfinished
  assignments is skipped, so bursts spread over the pool instead of
  stacking on whoever happens to head the heap;
* **exclusion** — retries can route around workers that already failed
  the question (:attr:`RetryPolicy.reroute`);
* **dropout** — a worker that drew a dropout fault leaves the pool for
  good (lazily discarded from the heap).
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..oracle.base import Oracle


@dataclass
class Worker:
    """One simulated crowd member: knowledge plus availability."""

    worker_id: int
    member: Oracle
    free_at: float = 0.0
    alive: bool = True
    answered: int = 0
    no_shows: int = 0
    #: open (start, end) assignment windows, pruned as time passes
    windows: list[tuple[float, float]] = field(default_factory=list)

    def inbox_depth(self, at: float) -> int:
        """Unfinished assignments at simulated time *at*."""
        self.windows = [w for w in self.windows if w[1] > at]
        return len(self.windows)

    def occupy(self, start: float, end: float) -> None:
        self.windows.append((start, end))
        if end > self.free_at:
            self.free_at = end


class WorkerPool:
    """The availability heap over a fixed set of workers."""

    def __init__(
        self,
        members: Sequence[Oracle],
        inbox_capacity: Optional[int] = None,
    ) -> None:
        if not members:
            raise ValueError("pool needs at least one worker")
        if inbox_capacity is not None and inbox_capacity < 1:
            raise ValueError("inbox capacity must be >= 1 (or None)")
        self.workers = [Worker(i, member) for i, member in enumerate(members)]
        self.inbox_capacity = inbox_capacity
        self.inbox_rejections = 0
        self._heap: list[tuple[float, int]] = [
            (0.0, w.worker_id) for w in self.workers
        ]
        heapq.heapify(self._heap)
        #: serializes heap access when the pool is shared by concurrent
        #: sessions (repro.server); reentrant so acquire's spill path
        #: stays simple
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self.workers)

    @property
    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for w in self.workers if w.alive)

    # ------------------------------------------------------------------
    def acquire(
        self, at: float, exclude: frozenset[int] = frozenset()
    ) -> Optional[Worker]:
        """The earliest-free eligible worker, or ``None`` if all dropped.

        Eligible means alive, not in *exclude*, and with inbox head-room
        at *at*.  If exclusion/capacity disqualifies everyone, the
        earliest-free alive worker is used anyway (the question must go
        somewhere); capacity-forced skips are counted so saturation is
        observable.
        """
        with self._lock:
            return self._acquire_locked(at, exclude)

    def _acquire_locked(
        self, at: float, exclude: frozenset[int]
    ) -> Optional[Worker]:
        skipped: list[tuple[float, int]] = []
        chosen: Optional[Worker] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            worker = self.workers[entry[1]]
            if not worker.alive:
                continue  # dropped out: discard the stale entry
            if entry[1] in exclude:
                skipped.append(entry)
                continue
            if (
                self.inbox_capacity is not None
                and worker.inbox_depth(at) >= self.inbox_capacity
            ):
                skipped.append(entry)
                self.inbox_rejections += 1
                continue
            chosen = worker
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        if chosen is None and skipped:
            # every alive worker was excluded or saturated: spill onto
            # the earliest-free one rather than stalling forever
            entry = heapq.heappop(self._heap)
            chosen = self.workers[entry[1]]
        return chosen

    def commit(self, worker: Worker, free_at: float) -> None:
        """Requeue *worker* with its new availability."""
        with self._lock:
            heapq.heappush(self._heap, (free_at, worker.worker_id))

    def drop(self, worker: Worker) -> None:
        """Permanently remove *worker* (dropout fault)."""
        with self._lock:
            worker.alive = False


def perfect_pool(ground_truth, n_workers: int, **kwargs) -> WorkerPool:
    """A pool of *n_workers* sharing one perfect member (the paper's
    simulated-experiment setting: every expert knows ``D_G``)."""
    from ..oracle.perfect import PerfectOracle

    member = PerfectOracle(ground_truth)
    return WorkerPool([member] * n_workers, **kwargs)
