"""Cross-task deduplication of concurrent closed questions.

When the parallel loop posts a whole round at once, distinct tasks can
ask the *same* closed question in the same round — two wrong answers
sharing a suspect fact both yield ``TRUE(R(ā))?`` for it.  The
synchronous path coalesces these for free because answers resolve one
at a time against the :class:`~repro.oracle.base.AccountingOracle`
cache; a live dispatcher posts them concurrently, *before* either
answer has returned, so without help both go to the crowd and both pay
for a full vote sample.

:func:`question_key` maps a closed request to a structural identity —
the same key the accounting cache would use once the answer lands — and
the engine keeps an in-flight index per round: the first occurrence is
routed, later occurrences subscribe to its shared vote.  Open questions
(``COMPL``) are never deduplicated: their payload includes run-specific
context (the known-answer set, the partial assignment's history), and
the paper's protocol treats each as a fresh task.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..oracle.questions import QuestionKind

#: Request kinds (as yielded by the round scheduler's tasks) that are
#: closed questions and therefore safe to coalesce structurally.
_CLOSED_REQUEST_KINDS = frozenset(
    {"verify_fact", "verify_answer", "verify_candidate"}
)


def question_key(request: tuple) -> Optional[Hashable]:
    """A structural identity for a closed request, ``None`` for open ones.

    Keys are value-based (facts, queries, and answers are immutable and
    hashable) — never ``id()``-based, so two structurally equal queries
    from different task objects coalesce, and a recycled object id can
    never alias two distinct questions.
    """
    kind = request[0]
    if kind not in _CLOSED_REQUEST_KINDS:
        return None
    if kind == "verify_fact":
        return ("verify_fact", request[1])
    if kind == "verify_answer":
        return ("verify_answer", request[1], request[2])
    # verify_candidate: the partial assignment arrives as a mapping
    return ("verify_candidate", request[1], frozenset(request[2].items()))


class DedupIndex:
    """In-flight closed questions of the current dispatch window."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, object] = {}
        self.coalesced = 0

    def lookup(self, key: Hashable):
        return self._inflight.get(key)

    def publish(self, key: Hashable, outcome) -> None:
        self._inflight[key] = outcome

    def subscribe(self, key: Hashable):
        """Record one coalesced duplicate and return the shared outcome."""
        self.coalesced += 1
        return self._inflight[key]

    def clear(self) -> None:
        self._inflight.clear()


__all__ = ["DedupIndex", "question_key", "QuestionKind"]
