"""Cross-task deduplication of concurrent closed questions.

When the parallel loop posts a whole round at once, distinct tasks can
ask the *same* closed question in the same round — two wrong answers
sharing a suspect fact both yield ``TRUE(R(ā))?`` for it.  The
synchronous path coalesces these for free because answers resolve one
at a time against the :class:`~repro.oracle.base.AccountingOracle`
cache; a live dispatcher posts them concurrently, *before* either
answer has returned, so without help both go to the crowd and both pay
for a full vote sample.

:func:`question_key` maps a closed request to a structural identity —
the same key the accounting cache would use once the answer lands — and
the engine keeps an in-flight index per round: the first occurrence is
routed, later occurrences subscribe to its shared vote.  Open questions
(``COMPL``) are never deduplicated: their payload includes run-specific
context (the known-answer set, the partial assignment's history), and
the paper's protocol treats each as a fresh task.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional

from ..oracle.questions import QuestionKind

#: Request kinds (as yielded by the round scheduler's tasks) that are
#: closed questions and therefore safe to coalesce structurally.
_CLOSED_REQUEST_KINDS = frozenset(
    {"verify_fact", "verify_answer", "verify_candidate"}
)


def question_key(request: tuple) -> Optional[Hashable]:
    """A structural identity for a closed request, ``None`` for open ones.

    Keys are value-based (facts, queries, and answers are immutable and
    hashable) — never ``id()``-based, so two structurally equal queries
    from different task objects coalesce, and a recycled object id can
    never alias two distinct questions.
    """
    kind = request[0]
    if kind not in _CLOSED_REQUEST_KINDS:
        return None
    if kind == "verify_fact":
        return ("verify_fact", request[1])
    if kind == "verify_answer":
        return ("verify_answer", request[1], request[2])
    # verify_candidate: the partial assignment arrives as a mapping
    return ("verify_candidate", request[1], frozenset(request[2].items()))


class DedupIndex:
    """In-flight closed questions of the current dispatch window."""

    def __init__(self) -> None:
        self._inflight: dict[Hashable, object] = {}
        self.coalesced = 0

    def lookup(self, key: Hashable):
        return self._inflight.get(key)

    def publish(self, key: Hashable, outcome) -> None:
        self._inflight[key] = outcome

    def subscribe(self, key: Hashable):
        """Record one coalesced duplicate and return the shared outcome."""
        self.coalesced += 1
        return self._inflight[key]

    def clear(self) -> None:
        self._inflight.clear()


class AnswerBoard:
    """Completed closed answers shared *across* cleaning sessions.

    The :class:`DedupIndex` coalesces duplicates inside one round of one
    session; the board extends the same structural identity across
    sessions running concurrently against a shared crowd.  Tenants whose
    views overlap ask many of the same closed questions — once any
    session has a final value for a key, every other session reads it
    for free instead of paying a fresh vote sample.

    Only *final* values are published (a closed question's majority
    verdict, never an in-flight vote), so reads need no blocking: a miss
    simply means "ask the crowd yourself".  The board is keyed by
    :func:`question_key`, the same value-based identity the accounting
    cache uses, and is safe to share between session threads.

    With ``similarity=True`` the board additionally indexes every
    published entry by its :func:`repro.plan.similarity.similarity_key`
    canonical class, so :meth:`get_similar` can serve a
    variable-renamed twin of an already-answered question.  The index is
    *derived* — rebuilt by :meth:`put` itself — so durability snapshots
    and the :meth:`entries` cursor contract are untouched: recovery
    replays ``put`` and the index reappears.
    """

    def __init__(self, *, similarity: bool = False) -> None:
        self._answers: dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.publishes = 0
        self.similarity = similarity
        self.similarity_hits = 0
        self._canonical: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._answers)

    def get(self, key: Hashable) -> Optional[Any]:
        """The published value for *key*, or ``None`` (also counts the hit)."""
        if key is None:
            return None
        with self._lock:
            value = self._answers.get(key)
            if value is not None:
                self.hits += 1
            return value

    def get_similar(self, key: Hashable) -> Optional[Any]:
        """A published value for any question in *key*'s similarity
        class, or ``None`` (disabled boards always miss)."""
        if not self.similarity or key is None:
            return None
        ckey = _similarity_key(key)
        if ckey is None:
            return None
        with self._lock:
            value = self._canonical.get(ckey)
            if value is not None:
                self.similarity_hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Publish a final value for *key* (first writer wins)."""
        if key is None or value is None:
            return
        with self._lock:
            if key not in self._answers:
                self._answers[key] = value
                self.publishes += 1
                if self.similarity:
                    ckey = _similarity_key(key)
                    if ckey is not None and ckey not in self._canonical:
                        self._canonical[ckey] = value

    def entries(self, start: int = 0) -> list[tuple[Hashable, Any]]:
        """The published ``(key, value)`` pairs, in publication order.

        **Concurrent-append contract** (pinned by
        ``tests/test_dispatch.py::TestAnswerBoardCursor``): the board is
        append-only — first-writer-wins, no deletions, no reordering —
        so position ``i`` refers to the same entry forever.  A reader
        holding an integer cursor ``n`` and repeatedly calling
        ``entries(n)`` (advancing ``n`` by the length of each slice)
        therefore observes every entry **exactly once**, in publication
        order, even while writer threads keep appending between calls:
        appends land strictly after the snapshot this call copies under
        the lock, so they appear in a later slice — never skipped, never
        doubled.  This is how the durability layer exports board deltas
        per WAL record, and how the warm follower preloads its board
        incrementally from shipped records.
        """
        with self._lock:
            items = list(self._answers.items())
        return items[start:]


def _similarity_key(key: Hashable) -> Optional[Hashable]:
    """The canonical similarity class of *key* (lazy import keeps this
    module free of query-layer dependencies unless similarity is on)."""
    from ..plan.similarity import similarity_key

    return similarity_key(key)  # type: ignore[arg-type]


__all__ = ["AnswerBoard", "DedupIndex", "question_key", "QuestionKind"]
