"""Dispatch policies: retries, fault injection, and budgets (§6.2, §7).

The live deployment the paper describes (real experts on §7.2's Soccer
database) is slow and unreliable: answers straggle, some never arrive,
and the experiment has a wall-clock and a question budget.  These
policies make those dimensions explicit knobs of the dispatch engine:

* :class:`RetryPolicy` — per-question timeout, exponential backoff, and
  re-routing of the retried question to workers that have not already
  failed it;
* :class:`FaultModel` — stochastic no-shows (a worker silently ignores
  an assignment), dropouts (the worker leaves the pool for good), and
  late answers (the reply arrives after the timeout and is discarded);
* :class:`Budget` — a cost ceiling in the paper's §7 question units
  and/or a simulated wall-clock deadline.  Exhaustion never raises mid
  round: the engine degrades gracefully (cached knowledge + conservative
  defaults) and the cleaning report flags ``converged=False``.

Cost-bounded degradation echoes the budgeted-repair line of work
(Livshits/Kimelfeld/Roy, *Computing Optimal Repairs for Functional
Dependencies*): when the budget cannot cover a full repair, the engine
still terminates with the best state the spent budget bought.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional


class FaultKind(enum.Enum):
    """What went wrong with one worker assignment."""

    NO_SHOW = "no_show"    # the worker never answers this assignment
    DROPOUT = "dropout"    # the worker leaves the pool permanently
    LATE = "late"          # the answer arrives, but slower than usual


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout → exponential backoff → re-route to a fresh worker.

    Parameters
    ----------
    timeout:
        Seconds (simulated) after which an unanswered assignment is
        abandoned and retried.  ``None`` disables timeouts entirely —
        the fault-free configuration whose timing is bit-identical to
        :class:`repro.crowdsim.CrowdSimulator` replay.
    max_retries:
        Retries per *vote slot* (the original attempt is not a retry).
    backoff_base / backoff_factor:
        Retry *k* (0-based) is delayed ``backoff_base * backoff_factor**k``
        seconds past the abandoning timeout, the usual exponential
        backoff so a struggling pool is not hammered.
    reroute:
        Exclude workers that already failed this question when choosing
        the retry's worker (fresh eyes; also dodges a no-show worker
        deterministically ignoring the same task again).
    """

    timeout: Optional[float] = None
    max_retries: int = 3
    backoff_base: float = 15.0
    backoff_factor: float = 2.0
    reroute: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None to disable)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry *retry_index* (0-based)."""
        return self.backoff_base * self.backoff_factor**retry_index


@dataclass
class FaultModel:
    """Stochastic per-assignment fault injection.

    Rates are independent probabilities checked in order
    (dropout, no-show, late); at most one fault fires per assignment.
    Draws come from the model's own RNG so fault injection never
    perturbs the latency sampler's stream (fault-free runs stay
    bit-identical to crowd-simulator replay).
    """

    no_show_rate: float = 0.0
    dropout_rate: float = 0.0
    late_rate: float = 0.0
    late_factor: float = 4.0
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        for name in ("no_show_rate", "dropout_rate", "late_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} {rate} outside [0, 1]")
        if self.late_factor < 1.0:
            raise ValueError("late_factor must be >= 1")

    @property
    def active(self) -> bool:
        return (self.no_show_rate or self.dropout_rate or self.late_rate) > 0

    @property
    def lossy(self) -> bool:
        """Can an assignment fail to ever produce an answer?"""
        return (self.no_show_rate or self.dropout_rate) > 0

    def draw(self) -> Optional[FaultKind]:
        if not self.active:
            return None
        if self.dropout_rate and self.rng.random() < self.dropout_rate:
            return FaultKind.DROPOUT
        if self.no_show_rate and self.rng.random() < self.no_show_rate:
            return FaultKind.NO_SHOW
        if self.late_rate and self.rng.random() < self.late_rate:
            return FaultKind.LATE
        return None


@dataclass
class Budget:
    """Cost and/or deadline ceiling for one dispatch session.

    ``max_cost`` is in the paper's §7 question units (what
    :class:`~repro.oracle.questions.InteractionLog` sums);
    ``deadline`` is in simulated seconds against the engine's clock.
    The engine checks :meth:`exhausted` *before* posting a question, so
    in-flight work always completes — exhaustion degrades, never hangs.
    """

    max_cost: Optional[float] = None
    deadline: Optional[float] = None
    spent: float = 0.0

    def __post_init__(self) -> None:
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError("max_cost must be >= 0")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")

    def charge(self, cost: float) -> None:
        self.spent += cost

    def cost_exhausted(self) -> bool:
        return self.max_cost is not None and self.spent >= self.max_cost

    def time_exhausted(self, clock: float) -> bool:
        return self.deadline is not None and clock >= self.deadline

    def exhausted(self, clock: float) -> bool:
        return self.cost_exhausted() or self.time_exhausted(clock)


# Tenant-aware lease scheduling for the service broker lives in
# ``repro.plan.schedule`` (a leaf module); re-exported here because the
# dispatch layer is where deployments pick their crowd policies.
from ..plan.schedule import DEFAULT_KIND_COSTS, CapacityScheduler  # noqa: E402,F401
