"""Oracle-guided constraint repair.

:class:`OracleRepairer` resolves the violation hypergraph the way
Section 4 resolves witness sets, with one extra lever constraints
provide: since the ground truth satisfies every constraint, *each*
violation contains at least one false fact, so

* a **singleton** edge proves its fact false — deleted for free, no
  question (the Theorem 4.5 condition lifted to constraints);
* asking ``TRUE(R(ā))?`` about the fact shared by the **most** edges
  either deletes it (resolving all of them at once) or shrinks every
  edge containing it — and a pair edge shrinking to a singleton pins
  its partner false *without asking* (``constraints.inferred``);
* questions are never repeated: the :class:`AccountingOracle` cache and
  the cross-session :class:`~repro.dispatch.dedup.AnswerBoard` (when
  the repairer runs under a :class:`~repro.server.SessionManager`)
  dedupe structurally.

Cost/deadline budgets degrade gracefully: when the budget runs out the
remaining edges are hit by the frequency-greedy deletion repair without
asking anything — the result satisfies the constraints (best-effort)
but is no longer certified against the ground truth, so the report says
``converged=False``.

:class:`ExhaustiveRepairer` is the enumerate-and-score baseline: it
verifies every fact of every violation, then deletes the false ones —
correct, oracle-hungry, and the contrast ``benchmarks/bench_constraints.py``
gates (oracle-guided must ask strictly fewer questions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..core.registry import REGISTRY
from ..db.database import Database
from ..db.edits import Edit, EditKind, delete as delete_edit, insert as insert_edit
from ..db.tuples import Fact
from ..oracle.base import AccountingOracle, Oracle
from ..query.backend import EvalBackend
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Constraint, as_constraints
from .repair import greedy_repair, violation_hypergraph
from .violations import Violation, find_violations


@dataclass
class RepairBudget:
    """Question-cost and wall-clock ceilings for one repair run.

    Mirrors the dispatch :class:`~repro.dispatch.policy.Budget`
    semantics: checked *before* each question, so exhaustion degrades
    (best-effort greedy repair) rather than aborting mid-question.
    """

    max_cost: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError("max_cost must be >= 0")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")

    def exhausted(self, spent: float, elapsed: float) -> bool:
        if self.max_cost is not None and spent >= self.max_cost:
            return True
        return self.deadline is not None and elapsed >= self.deadline


@dataclass
class RepairReport:
    """The outcome of one constraint-repair run (ReportLike surface).

    ``converged`` means every repair decision was certified by the
    oracle (or soundly inferred); ``consistent`` that the final
    database satisfies the constraints.  A budget-degraded run is
    typically ``consistent=True, converged=False``.
    """

    query_name: str
    edits: list[Edit] = field(default_factory=list)
    violations_found: int = 0
    questions_asked: int = 0
    cost: int = 0
    inferred: int = 0
    free_deletions: int = 0
    updates_applied: int = 0
    rounds: int = 0
    converged: bool = True
    consistent: bool = True
    wall_clock: float = 0.0

    @property
    def deletions(self) -> list[Edit]:
        return [e for e in self.edits if e.kind is EditKind.DELETE]

    @property
    def insertions(self) -> list[Edit]:
        return [e for e in self.edits if e.kind is EditKind.INSERT]

    @property
    def total_cost(self) -> int:
        return self.cost

    def summary(self) -> str:
        text = (
            f"{self.query_name}: {self.violations_found} violation(s), "
            f"{len(self.deletions)}-/{len(self.insertions)}+ edits, "
            f"{self.questions_asked} question(s) ({self.cost} units), "
            f"{self.inferred} inferred free, {self.rounds} round(s)"
        )
        if not self.consistent:
            text += " [still inconsistent]"
        if not self.converged:
            text += " [budget-degraded]"
        return text


def _as_accounting(oracle: Oracle) -> AccountingOracle:
    return oracle if isinstance(oracle, AccountingOracle) else AccountingOracle(oracle)


class OracleRepairer:
    """Repairs constraint violations by asking the oracle which facts lie.

    Parameters
    ----------
    database:
        The instance to repair in place (a plain :class:`Database` or a
        session's :class:`~repro.db.fork.DatabaseFork`).
    oracle:
        The crowd backend; wrapped in an :class:`AccountingOracle` if it
        is not one already, so questions are logged, charged, and cached.
    constraints:
        :class:`~repro.constraints.ast.FD` / ``DenialConstraint``
        objects, FD strings (``"games: date -> winner"``), or an
        iterable of either.
    backend:
        Evaluation substrate for violation detection (``EvalBackend``
        name or instance; default the reference engine).
    updates:
        Attempt FD value-update repairs: when a pair's false side is
        known and its partner certified true, ask whether the corrected
        fact (false fact with the partner's RHS value) belongs to the
        ground truth and insert it on a yes.  Off by default — it
        spends extra questions to preserve rows.
    budget:
        Optional :class:`RepairBudget`; exhaustion degrades to the
        greedy best-effort repair.
    max_rounds:
        Detection/resolution rounds (updates can surface new
        violations; deletions cannot, since violation queries are
        positive CQs).
    """

    def __init__(
        self,
        database: Database,
        oracle: Oracle,
        constraints: Union[Constraint, str, Iterable[Union[Constraint, str]]],
        *,
        backend: Union[str, EvalBackend, None] = None,
        updates: bool = False,
        budget: Optional[RepairBudget] = None,
        max_rounds: int = 10,
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.database = database
        self.oracle = _as_accounting(oracle)
        self.constraints = as_constraints(constraints)
        self.backend = backend
        self.updates = updates
        self.budget = budget
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def run(self) -> RepairReport:
        names = ",".join(c.name for c in self.constraints)
        report = RepairReport(query_name=f"repair({names})")
        start = time.perf_counter()
        cost_before = self.oracle.log.total_cost
        questions_before = self.oracle.log.question_count
        with _TELEMETRY.span("constraints.repair", constraints=len(self.constraints)):
            for _ in range(self.max_rounds):
                violations = find_violations(
                    self.database, self.constraints, backend=self.backend
                )
                if not violations:
                    break
                report.rounds += 1
                report.violations_found += len(violations)
                self._resolve(violations, report, cost_before, start)
            report.consistent = not find_violations(
                self.database, self.constraints, backend=self.backend
            )
        report.questions_asked = self.oracle.log.question_count - questions_before
        report.cost = self.oracle.log.total_cost - cost_before
        report.wall_clock = time.perf_counter() - start
        if _TELEMETRY.enabled:
            _TELEMETRY.count("constraints.repair_edits", len(report.edits))
            if not report.converged:
                _TELEMETRY.count("constraints.budget_exhausted")
        return report

    # ------------------------------------------------------------------
    def _resolve(
        self,
        violations: list[Violation],
        report: RepairReport,
        cost_before: int,
        start: float,
    ) -> None:
        """Decide a repair for every edge of this round's hypergraph."""
        edges = violation_hypergraph(violations)
        # Edges carry their FD context so updates know which cell differs.
        pair_context: dict[frozenset[Fact], Violation] = {}
        for violation in violations:
            if violation.rhs_position is not None and len(violation.facts) == 2:
                pair_context.setdefault(violation.facts, violation)
        #: facts the oracle certified true in this round
        certified: set[Fact] = set()
        while edges:
            # 1. singleton edges are free: their fact is certainly false
            singleton = next((e for e in edges if len(e) == 1), None)
            if singleton is not None:
                (fact,) = singleton
                self._delete(fact, report)
                if self.updates:
                    self._try_update(fact, pair_context, certified, report)
                report.free_deletions += 1
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("constraints.free_deletions")
                edges = [e for e in edges if fact not in e]
                continue
            # 2. budget gate before the next paid question
            spent = self.oracle.log.total_cost - cost_before
            elapsed = time.perf_counter() - start
            if self.budget is not None and self.budget.exhausted(spent, elapsed):
                self._degrade(edges, report)
                return
            # 3. ask about the most shared fact (cache makes repeats free)
            fact = self._most_frequent(edges)
            if self.oracle.verify_fact(fact):
                certified.add(fact)
                shrunk = []
                for edge in edges:
                    if fact in edge:
                        rest = frozenset(edge - {fact})
                        if len(rest) == 1 and _TELEMETRY.enabled:
                            _TELEMETRY.count("constraints.inferred")
                        if len(rest) == 1:
                            report.inferred += 1
                            (partner,) = rest
                            self.oracle.remember_fact(partner, False)
                        shrunk.append(rest)
                    else:
                        shrunk.append(edge)
                edges = shrunk
            else:
                self._delete(fact, report)
                if self.updates:
                    self._try_update(fact, pair_context, certified, report)
                edges = [e for e in edges if fact not in e]

    # ------------------------------------------------------------------
    def _most_frequent(self, edges: list[frozenset[Fact]]) -> Fact:
        """The fact on the most edges; known verdicts first so cached
        questions (free) are preferred over fresh ones at equal degree."""
        counts: dict[Fact, int] = {}
        for edge in edges:
            for fact in edge:
                counts[fact] = counts.get(fact, 0) + 1
        return max(
            counts,
            key=lambda f: (counts[f], self.oracle.knows_fact(f), repr(f)),
        )

    def _delete(self, fact: Fact, report: RepairReport) -> None:
        if self.database.delete(fact):
            report.edits.append(delete_edit(fact))
        self.oracle.remember_fact(fact, False)

    def _try_update(
        self,
        false_fact: Fact,
        pair_context: dict[frozenset[Fact], Violation],
        certified: set[Fact],
        report: RepairReport,
    ) -> None:
        """Propose ``false[rhs] := partner[rhs]`` for one certified pair."""
        for facts, violation in pair_context.items():
            if false_fact not in facts:
                continue
            (partner,) = facts - {false_fact}
            if partner not in certified:
                continue
            position = violation.rhs_position
            corrected = false_fact.replace(position, partner.values[position])
            if corrected in self.database:
                continue
            if self.oracle.verify_fact(corrected):
                if self.database.insert(corrected):
                    report.edits.append(insert_edit(corrected))
                    report.updates_applied += 1
                    if _TELEMETRY.enabled:
                        _TELEMETRY.count("constraints.updates_applied")
            return

    def _degrade(self, edges: list[frozenset[Fact]], report: RepairReport) -> None:
        """Best-effort: greedily hit the remaining edges without asking."""
        report.converged = False
        fake = [Violation("budget", e) for e in edges]
        for edit in greedy_repair(fake).edits:
            if edit.apply(self.database):
                report.edits.append(edit)


class ExhaustiveRepairer:
    """The enumerate-and-score baseline: verify every involved fact.

    Scores the candidate-repair pool the blunt way — one
    ``TRUE(R(ā))?`` per distinct fact of the violation hypergraph, in
    deterministic order, no frequency ordering and no inference — then
    deletes every fact the oracle called false.  Repeats until
    consistent.  Same final database as the oracle-guided path under a
    perfect oracle; strictly more questions whenever any inference or
    free deletion fires.
    """

    def __init__(
        self,
        database: Database,
        oracle: Oracle,
        constraints: Union[Constraint, str, Iterable[Union[Constraint, str]]],
        *,
        backend: Union[str, EvalBackend, None] = None,
        max_rounds: int = 10,
    ) -> None:
        self.database = database
        self.oracle = _as_accounting(oracle)
        self.constraints = as_constraints(constraints)
        self.backend = backend
        self.max_rounds = max_rounds

    def run(self) -> RepairReport:
        names = ",".join(c.name for c in self.constraints)
        report = RepairReport(query_name=f"exhaustive({names})")
        start = time.perf_counter()
        cost_before = self.oracle.log.total_cost
        questions_before = self.oracle.log.question_count
        for _ in range(self.max_rounds):
            violations = find_violations(
                self.database, self.constraints, backend=self.backend
            )
            if not violations:
                break
            report.rounds += 1
            report.violations_found += len(violations)
            facts = sorted(
                {f for v in violations for f in v.facts}, key=repr
            )
            false_facts = [f for f in facts if not self.oracle.verify_fact(f)]
            for fact in false_facts:
                if self.database.delete(fact):
                    report.edits.append(delete_edit(fact))
            if not false_facts:
                # the oracle certified every involved fact: the violation
                # cannot be repaired by deletion alone — give up cleanly
                report.converged = False
                break
        report.consistent = not find_violations(
            self.database, self.constraints, backend=self.backend
        )
        report.questions_asked = self.oracle.log.question_count - questions_before
        report.cost = self.oracle.log.total_cost - cost_before
        report.wall_clock = time.perf_counter() - start
        return report


def repair(
    database: Database,
    constraints: Union[Constraint, str, Iterable[Union[Constraint, str]]],
    oracle: Oracle,
    *,
    strategy: str = "oracle",
    **options,
) -> RepairReport:
    """One-call constraint repair (see :mod:`repro.api`).

    *strategy* is a registry name — ``"oracle"`` (default),
    ``"exhaustive"``, or any name registered under the ``"repair"``
    kind; remaining keyword arguments go to the repairer.
    """
    factory = REGISTRY.resolve("repair", strategy)
    return factory.repair(database, oracle, constraints, **options)


# ----------------------------------------------------------------------
# registry strategies
# ----------------------------------------------------------------------
class OracleRepairStrategy:
    """Registry adapter for :class:`OracleRepairer`."""

    name = "oracle"

    def repair(self, database, oracle, constraints, **options) -> RepairReport:
        return OracleRepairer(database, oracle, constraints, **options).run()


class ExhaustiveRepairStrategy:
    """Registry adapter for :class:`ExhaustiveRepairer`."""

    name = "exhaustive"

    def repair(self, database, oracle, constraints, **options) -> RepairReport:
        return ExhaustiveRepairer(database, oracle, constraints, **options).run()


class GreedyRepairStrategy:
    """Oracle-free fallback: greedy hitting-set deletion, zero questions."""

    name = "greedy"

    def repair(self, database, oracle, constraints, *, backend=None, max_rounds=10):
        names = ",".join(c.name for c in as_constraints(constraints))
        report = RepairReport(query_name=f"greedy({names})", converged=False)
        for _ in range(max_rounds):
            violations = find_violations(database, constraints, backend=backend)
            if not violations:
                break
            report.rounds += 1
            report.violations_found += len(violations)
            for edit in greedy_repair(violations).edits:
                if edit.apply(database):
                    report.edits.append(edit)
        report.consistent = not find_violations(database, constraints, backend=backend)
        return report


REGISTRY.register("repair", "oracle", OracleRepairStrategy)
REGISTRY.register("repair", "exhaustive", ExhaustiveRepairStrategy)
REGISTRY.register("repair", "greedy", GreedyRepairStrategy)


__all__ = [
    "ExhaustiveRepairer",
    "OracleRepairer",
    "RepairBudget",
    "RepairReport",
    "repair",
]
