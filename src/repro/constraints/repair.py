"""Candidate-repair enumeration over the violation hypergraph.

The violations of a constraint set form a hypergraph: vertices are
facts, each violation contributes the hyperedge of its fact set.  A
*deletion repair* is a set of facts whose removal leaves no violation —
i.e. a hitting set of the hypergraph — and the subset-minimal ones are
exactly the minimal hitting sets, which :mod:`repro.hitting` already
enumerates (the same machinery Section 4 uses for witness sets).

FD violations additionally admit *value updates*: a violating pair
disagrees on one right-hand-side attribute, so overwriting either
fact's RHS cell with the partner's value resolves the pair without
shrinking the instance (the Livshits/Kimelfeld/Roy update-repair
setting).  An update is modelled as a delete+insert edit pair, which is
what the fork/WAL/commit machinery already transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..db.edits import Edit, delete, insert
from ..db.tuples import Fact
from ..hitting.hitting_set import (
    all_minimal_hitting_sets,
    greedy_hitting_set,
    unique_minimal_hitting_set,
)
from .violations import Violation


class RepairError(RuntimeError):
    """Raised when no repair can be proposed (e.g. empty violation)."""


@dataclass(frozen=True)
class CandidateRepair:
    """One proposed repair: the edits and what they do.

    ``kind`` is ``"delete"`` (remove the chosen facts) or ``"update"``
    (rewrite one fact's RHS cell); ``cost`` counts edited facts, the
    quantity optimal-repair work minimizes.
    """

    kind: str
    edits: tuple[Edit, ...]
    cost: int

    @classmethod
    def deletion(cls, facts: Iterable[Fact]) -> "CandidateRepair":
        chosen = sorted(set(facts), key=repr)
        if not chosen:
            raise RepairError("a deletion repair needs at least one fact")
        return cls("delete", tuple(delete(f) for f in chosen), len(chosen))

    @classmethod
    def update(cls, old: Fact, new: Fact) -> "CandidateRepair":
        if old == new:
            raise RepairError("an update repair must change the fact")
        return cls("update", (delete(old), insert(new)), 1)

    def __str__(self) -> str:
        body = "; ".join(str(e) for e in self.edits)
        return f"{self.kind}[{body}]"


def violation_hypergraph(violations: Iterable[Violation]) -> list[frozenset[Fact]]:
    """The deduplicated hyperedges (one per distinct violating fact set)."""
    seen: set[frozenset[Fact]] = set()
    edges: list[frozenset[Fact]] = []
    for violation in violations:
        if violation.facts not in seen:
            seen.add(violation.facts)
            edges.append(violation.facts)
    return edges


def minimal_deletion_repairs(
    violations: Iterable[Violation], *, limit: Optional[int] = None
) -> list[CandidateRepair]:
    """Every subset-minimal deletion repair (exhaustive; small instances).

    The enumeration is exponential in general — this is the *candidate*
    pool the exhaustive baseline scores, not the oracle-guided path.
    ``limit`` truncates the pool after sorting by cost (cheapest first),
    matching how optimal-repair systems explore cheapest candidates.
    """
    edges = violation_hypergraph(violations)
    if not edges:
        return []
    repairs = [
        CandidateRepair.deletion(hitting)
        for hitting in all_minimal_hitting_sets(edges)
    ]
    repairs.sort(key=lambda r: (r.cost, repr(r.edits)))
    return repairs[:limit] if limit is not None else repairs


def update_candidates(violation: Violation) -> list[CandidateRepair]:
    """The value-update repairs of one FD violation (empty otherwise).

    A pair ``{a, b}`` disagreeing at ``rhs_position`` yields two
    candidates: ``a[rhs] := b[rhs]`` and ``b[rhs] := a[rhs]``.
    """
    if violation.rhs_position is None or len(violation.facts) != 2:
        return []
    a, b = sorted(violation.facts, key=repr)
    position = violation.rhs_position
    return [
        CandidateRepair.update(a, a.replace(position, b.values[position])),
        CandidateRepair.update(b, b.replace(position, a.values[position])),
    ]


def candidate_repairs(
    violations: Iterable[Violation],
    *,
    updates: bool = True,
    limit: Optional[int] = None,
) -> list[CandidateRepair]:
    """Deletion repairs plus (for FDs) per-violation value updates."""
    pool = list(violations)
    repairs = minimal_deletion_repairs(pool, limit=limit)
    if updates:
        for violation in pool:
            repairs.extend(update_candidates(violation))
    return repairs


def greedy_repair(violations: Iterable[Violation]) -> CandidateRepair:
    """The frequency-greedy deletion repair (no oracle, ln-n approximate).

    The best-effort fallback when the question budget runs out: hit the
    remaining hypergraph with :func:`greedy_hitting_set` and delete.
    Raises :class:`RepairError` on an empty violation list.
    """
    edges = violation_hypergraph(violations)
    if not edges:
        raise RepairError("nothing to repair")
    return CandidateRepair.deletion(greedy_hitting_set(edges))


def inferable_deletions(violations: Iterable[Violation]) -> Optional[set[Fact]]:
    """The Theorem 4.5 shortcut lifted to constraints.

    When the violation hypergraph has a *unique* minimal hitting set
    (its singleton edges already hit everything), that set is the only
    subset-minimal deletion repair — no oracle question can change the
    answer, so the repairer applies it for free.  Returns ``None`` when
    the minimal repair is not unique.
    """
    return unique_minimal_hitting_set(violation_hypergraph(violations))


__all__ = [
    "CandidateRepair",
    "RepairError",
    "candidate_repairs",
    "greedy_repair",
    "inferable_deletions",
    "minimal_deletion_repairs",
    "update_candidates",
    "violation_hypergraph",
]
