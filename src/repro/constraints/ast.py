"""The constraint language: functional dependencies and denial constraints.

Both constraint kinds reduce to *forbidden conjunctive-query bodies*:

* an FD ``R: X -> Y`` forbids two ``R``-tuples agreeing on every ``X``
  attribute while disagreeing on some ``Y`` attribute — one boolean CQ
  (with a single inequality) per right-hand-side attribute;
* a denial constraint *is* a forbidden body: a conjunction of atoms and
  inequalities that must have no satisfying assignment in a consistent
  instance.

Keeping the compiled form a plain :class:`~repro.query.ast.Query` means
violation detection inherits every evaluation substrate behind
:class:`~repro.query.backend.EvalBackend` for free: a violation check is
just a boolean CQ whose witnesses are the violating tuple sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..db.schema import Schema, SchemaError
from ..query.ast import Atom, Inequality, Query, Var


class ConstraintError(ValueError):
    """Raised for malformed constraints (unknown attributes, empty sides)."""


@dataclass(frozen=True)
class FD:
    """A functional dependency ``relation: lhs -> rhs`` over attribute names.

    Attributes are resolved against the database schema at detection
    time, so an FD is schema-independent data until it meets an
    instance.  ``FD("games", ("date",), ("winner", "result"))`` reads
    "two games rows sharing a date agree on winner and result".
    """

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, tuple):
            object.__setattr__(self, "lhs", tuple(self.lhs))
        if not isinstance(self.rhs, tuple):
            object.__setattr__(self, "rhs", tuple(self.rhs))
        if not self.lhs:
            raise ConstraintError(f"FD on {self.relation!r} needs a left-hand side")
        if not self.rhs:
            raise ConstraintError(f"FD on {self.relation!r} needs a right-hand side")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            raise ConstraintError(
                f"FD on {self.relation!r}: attributes {sorted(overlap)} appear "
                f"on both sides"
            )

    @property
    def name(self) -> str:
        return f"fd:{self.relation}:{','.join(self.lhs)}->{','.join(self.rhs)}"

    def positions(self, schema: Schema) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(lhs positions, rhs positions)`` under *schema*."""
        try:
            rel = schema.relation(self.relation)
        except SchemaError as error:
            raise ConstraintError(str(error)) from None
        try:
            return (
                tuple(rel.attribute_index(a) for a in self.lhs),
                tuple(rel.attribute_index(a) for a in self.rhs),
            )
        except SchemaError as error:
            raise ConstraintError(str(error)) from None

    def __str__(self) -> str:
        return f"{self.relation}: {', '.join(self.lhs)} -> {', '.join(self.rhs)}"


@dataclass(frozen=True)
class DenialConstraint:
    """A forbidden conjunctive-query body: ``NOT EXISTS (atoms, inequalities)``.

    A consistent instance admits no assignment satisfying the body; each
    satisfying assignment's witness (the grounded atom set) is one
    violation.  This is exactly the denial-constraint fragment the
    SAT-based CQA line of work (Dixit & Kolaitis) reasons over, minus
    built-in order predicates.
    """

    atoms: tuple[Atom, ...]
    inequalities: tuple[Inequality, ...] = ()
    label: str = "denial"

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.inequalities, tuple):
            object.__setattr__(self, "inequalities", tuple(self.inequalities))
        if not self.atoms:
            raise ConstraintError("a denial constraint needs at least one atom")

    @property
    def name(self) -> str:
        return f"dc:{self.label}"

    def as_query(self) -> Query:
        """The boolean violation query (empty head; witnesses = violations)."""
        return Query(
            head=(),
            atoms=self.atoms,
            inequalities=self.inequalities,
            name=self.name,
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(e) for e in self.inequalities]
        return f"deny {', '.join(parts)}"


#: Anything the detector accepts as one constraint.
Constraint = Union[FD, DenialConstraint]


def parse_fd(text: str) -> FD:
    """Parse ``"relation: a, b -> c, d"`` into an :class:`FD`.

    The one-line spelling used by docs, benchmarks, and CSV sidecars::

        parse_fd("games: date -> winner, result")
    """
    head, sep, arrow = text.partition(":")
    if not sep:
        raise ConstraintError(f"FD {text!r} is missing the 'relation:' prefix")
    lhs_text, sep, rhs_text = arrow.partition("->")
    if not sep:
        raise ConstraintError(f"FD {text!r} is missing '->'")
    lhs = tuple(a.strip() for a in lhs_text.split(",") if a.strip())
    rhs = tuple(a.strip() for a in rhs_text.split(",") if a.strip())
    return FD(head.strip(), lhs, rhs)


def as_constraints(
    specs: Union[Constraint, str, Iterable[Union[Constraint, str]]]
) -> tuple[Constraint, ...]:
    """Normalize user input: one constraint/string or an iterable of them."""
    if isinstance(specs, (FD, DenialConstraint, str)):
        specs = (specs,)
    out: list[Constraint] = []
    for spec in specs:
        if isinstance(spec, str):
            out.append(parse_fd(spec))
        elif isinstance(spec, (FD, DenialConstraint)):
            out.append(spec)
        else:
            raise ConstraintError(f"not a constraint: {spec!r}")
    return tuple(out)


def fd_violation_queries(fd: FD, schema: Schema) -> list[Query]:
    """One boolean CQ per RHS attribute: two rows agree on X, differ there.

    ``R(x̄, y₁), R(x̄, y₂), y₁ != y₂`` with the LHS positions sharing
    variables between the two atoms.  Every satisfying assignment's
    witness is a violating *pair* of facts (the two atoms may also bind
    the same fact, but then the inequality fails, so witnesses are
    genuine pairs).
    """
    rel = schema.relation(fd.relation)
    lhs_positions, rhs_positions = fd.positions(schema)
    queries = []
    for rhs_position in rhs_positions:
        first = []
        second = []
        for position in range(rel.arity):
            if position in lhs_positions:
                shared = Var(f"x{position}")
                first.append(shared)
                second.append(shared)
            elif position == rhs_position:
                first.append(Var(f"a{position}"))
                second.append(Var(f"b{position}"))
            else:
                first.append(Var(f"u{position}"))
                second.append(Var(f"v{position}"))
        queries.append(
            Query(
                head=(),
                atoms=(Atom(fd.relation, tuple(first)), Atom(fd.relation, tuple(second))),
                inequalities=(Inequality(Var(f"a{rhs_position}"), Var(f"b{rhs_position}")),),
                name=f"{fd.name}@{rel.attributes[rhs_position]}",
            )
        )
    return queries


__all__ = [
    "Constraint",
    "ConstraintError",
    "DenialConstraint",
    "FD",
    "as_constraints",
    "fd_violation_queries",
    "parse_fd",
]
