"""Violation detection: constraints run as boolean CQs on any backend.

A denial constraint *is* a boolean conjunctive query; an FD compiles to
one boolean CQ per right-hand-side attribute
(:func:`repro.constraints.ast.fd_violation_queries`).  The detector
runs those queries through the pluggable
:class:`~repro.query.backend.EvalBackend` interface and reads each
answer's *witnesses* — the grounded fact sets — as the violations.
Witnesses are frozensets, so the two symmetric bindings of an FD pair
collapse to one :class:`Violation` for free.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..db.database import Database
from ..db.tuples import Fact
from ..query.ast import Query
from ..query.backend import EvalBackend, resolve_backend
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Constraint, DenialConstraint, FD, as_constraints, fd_violation_queries

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One constraint violation: the minimal fact set exhibiting it.

    For an FD this is a pair of same-relation facts agreeing on the LHS
    and differing on one RHS attribute (``rhs_position`` names it, so
    the repair enumerator can propose value updates); for a denial
    constraint it is the grounded body.  Since the ground truth
    satisfies every constraint, **at least one fact of every violation
    is false** — a violation is a witness in the Section 4 sense, and
    the whole hitting-set treatment applies.
    """

    constraint_name: str
    facts: frozenset[Fact]
    #: RHS column of the violated FD (None for denial constraints).
    rhs_position: Optional[int] = None

    def __str__(self) -> str:
        body = ", ".join(sorted(str(f) for f in self.facts))
        return f"{self.constraint_name}{{{body}}}"


def violation_queries(
    constraint: Constraint, schema
) -> list[tuple[Query, Optional[int]]]:
    """The boolean CQs checking *constraint*, each with its RHS position."""
    if isinstance(constraint, FD):
        _, rhs_positions = constraint.positions(schema)
        queries = fd_violation_queries(constraint, schema)
        return list(zip(queries, rhs_positions))
    if isinstance(constraint, DenialConstraint):
        return [(constraint.as_query(), None)]
    raise TypeError(f"not a constraint: {constraint!r}")


def find_violations(
    database: Database,
    constraints: Union[Constraint, str, Iterable[Union[Constraint, str]]],
    *,
    backend: Union[str, EvalBackend, None] = None,
) -> list[Violation]:
    """Every violation of *constraints* in *database*, deterministic order.

    *backend* picks the evaluation substrate (``"naive"`` default,
    ``"columnar"``, ``"sql"``, or an instance); unsupported shapes fall
    back to the reference engine exactly as in query cleaning.
    """
    engine = resolve_backend(backend)
    found: list[Violation] = []
    # keyed per RHS attribute: a pair disagreeing on two RHS columns is
    # two violations (each needs its own value-update candidate); the
    # repair hypergraph dedupes the shared edge downstream
    seen: set[tuple[str, Optional[int], frozenset[Fact]]] = set()
    with _TELEMETRY.span("constraints.detect", backend=engine.name):
        for constraint in as_constraints(constraints):
            for query, rhs_position in violation_queries(constraint, database.schema):
                result = engine.run(query, database)
                for answer in result.answers:
                    for witness in result.witnesses(answer):
                        key = (constraint.name, rhs_position, witness)
                        if key in seen:
                            continue
                        seen.add(key)
                        found.append(
                            Violation(constraint.name, witness, rhs_position)
                        )
    found.sort(
        key=lambda v: (
            v.constraint_name,
            -1 if v.rhs_position is None else v.rhs_position,
            sorted(map(repr, v.facts)),
        )
    )
    if _TELEMETRY.enabled:
        _TELEMETRY.count("constraints.checks")
        _TELEMETRY.count("constraints.violations_found", len(found))
    return found


def satisfies(
    database: Database,
    constraints: Union[Constraint, str, Iterable[Union[Constraint, str]]],
    *,
    backend: Union[str, EvalBackend, None] = None,
) -> bool:
    """Whether *database* satisfies every constraint (no violations)."""
    engine = resolve_backend(backend)
    for constraint in as_constraints(constraints):
        for query, _ in violation_queries(constraint, database.schema):
            if engine.evaluate(query, database):
                return False
    return True


__all__ = ["Violation", "find_violations", "satisfies", "violation_queries"]
