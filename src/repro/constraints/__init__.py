"""Constraint-driven repairs (FDs and denial constraints).

QOCO cleans a database through one *query*; the related work cleans
through *integrity constraints* — optimal repairs for functional
dependencies (Livshits, Kimelfeld & Roy) and SAT-based consistent query
answering over denial constraints (Dixit & Kolaitis).  This package
brings both constraint languages onto the machinery PRs 1-9 built:

* :mod:`repro.constraints.ast` — :class:`FD` (``R: X -> Y``) and
  :class:`DenialConstraint` (a forbidden conjunctive-query body);
* :mod:`repro.constraints.violations` — the detector: every constraint
  compiles to boolean conjunctive queries and runs on any
  :class:`~repro.query.backend.EvalBackend` (columnar/SQL included);
* :mod:`repro.constraints.repair` — the candidate-repair enumerator:
  violations form a hypergraph over facts, minimal deletion repairs are
  its minimal hitting sets (:mod:`repro.hitting`), and FD violations
  additionally admit right-hand-side value updates;
* :mod:`repro.constraints.repairer` — :class:`OracleRepairer` drives
  repair selection through the oracle (ask which tuple of a violating
  pair is wrong, infer the partner, respect budgets), and
  :class:`ExhaustiveRepairer` is the ask-about-everything baseline the
  benchmark gate compares against.

See ``docs/constraints.md``.
"""

from .ast import FD, ConstraintError, DenialConstraint, parse_fd
from .repair import (
    CandidateRepair,
    RepairError,
    candidate_repairs,
    greedy_repair,
    minimal_deletion_repairs,
    violation_hypergraph,
)
from .repairer import (
    ExhaustiveRepairer,
    OracleRepairer,
    RepairBudget,
    RepairReport,
    repair,
)
from .violations import Violation, find_violations, satisfies, violation_queries

__all__ = [
    "CandidateRepair",
    "ConstraintError",
    "DenialConstraint",
    "ExhaustiveRepairer",
    "FD",
    "OracleRepairer",
    "RepairBudget",
    "RepairError",
    "RepairReport",
    "Violation",
    "candidate_repairs",
    "find_violations",
    "greedy_repair",
    "minimal_deletion_repairs",
    "parse_fd",
    "repair",
    "satisfies",
    "violation_hypergraph",
    "violation_queries",
]
