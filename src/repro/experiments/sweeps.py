"""Parameter sweeps over the Section 7.2 noise knobs.

The paper varies *degree of data cleanliness* from 60% to 95% (default
80%) and *noise skewness* from 0% to 100%; the figures show selected
points, and the text summarizes the trends.  These drivers sweep the
full ranges and report total cleaning cost, edits, and convergence per
level — the raw material behind Figures 3d/3e.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..core.qoco import QOCO, QOCOConfig
from ..datasets.noise import NoiseSpec, make_dirty
from ..db.database import Database
from ..oracle.base import AccountingOracle
from ..oracle.perfect import PerfectOracle
from ..query.ast import Query
from ..query.evaluator import Evaluator
from .figures import FigureResult

SWEEP_HEADERS = (
    "level",
    "wrong",
    "missing",
    "questions",
    "cost",
    "edits",
    "converged",
)


@dataclass(frozen=True)
class SweepPoint:
    level: float
    wrong: int
    missing: int
    questions: int
    cost: int
    edits: int
    converged: bool

    def as_row(self) -> tuple:
        return (
            f"{self.level:.2f}",
            self.wrong,
            self.missing,
            self.questions,
            self.cost,
            self.edits,
            self.converged,
        )


def _run_point(
    ground_truth: Database,
    query: Query,
    spec: NoiseSpec,
    protected: set,
    seed: int,
) -> SweepPoint:
    rng = random.Random(seed)
    dirty = make_dirty(ground_truth, spec, rng, protected=protected)
    true_answers = Evaluator(query, ground_truth).answers()
    dirty_answers = Evaluator(query, dirty).answers()
    wrong = len(dirty_answers - true_answers)
    missing = len(true_answers - dirty_answers)

    oracle = AccountingOracle(PerfectOracle(ground_truth))
    report = QOCO(dirty, oracle, QOCOConfig(seed=seed, max_iterations=25)).clean(query)
    converged = (
        report.converged
        and Evaluator(query, dirty).answers() == true_answers
    )
    return SweepPoint(
        level=0.0,  # overwritten by callers
        wrong=wrong,
        missing=missing,
        questions=oracle.log.question_count,
        cost=oracle.log.total_cost,
        edits=len(report.edits),
        converged=converged,
    )


def sweep_cleanliness(
    ground_truth: Database,
    query: Query,
    levels: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 0.95),
    skewness: float = 0.5,
    protected: set | None = None,
    seed: int = 401,
) -> FigureResult:
    """Mixed cleaning cost as data cleanliness varies (paper's 60-95%)."""
    protected = protected if protected is not None else set()
    result = FigureResult(
        "sweep-cleanliness",
        f"{query.name}: cost vs data cleanliness (skew={skewness:.0%})",
        SWEEP_HEADERS,
    )
    for level in levels:
        point = _run_point(
            ground_truth,
            query,
            NoiseSpec(cleanliness=level, skewness=skewness),
            protected,
            seed,
        )
        result.rows.append((f"{level:.2f}",) + point.as_row()[1:])
    return result


def sweep_skewness(
    ground_truth: Database,
    query: Query,
    levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    cleanliness: float = 0.9,
    protected: set | None = None,
    seed: int = 402,
) -> FigureResult:
    """Mixed cleaning cost as noise skewness varies (0% .. 100%)."""
    protected = protected if protected is not None else set()
    result = FigureResult(
        "sweep-skewness",
        f"{query.name}: cost vs noise skewness (cleanliness={cleanliness:.0%})",
        SWEEP_HEADERS,
    )
    for level in levels:
        point = _run_point(
            ground_truth,
            query,
            NoiseSpec(cleanliness=cleanliness, skewness=level),
            protected,
            seed,
        )
        result.rows.append((f"{level:.2f}",) + point.as_row()[1:])
    return result
