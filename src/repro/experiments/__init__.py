"""Experiment harness: one driver per table/figure of the paper."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    dbgroup_case_study,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    fig3e,
    fig3f,
    fig4,
)
from .harness import (
    BAR_HEADERS,
    BarMeasurement,
    MixedMeasurement,
    deletion_upper_bound,
    insertion_upper_bound,
    plant_errors,
    run_deletion,
    run_insertion,
    run_mixed,
)
from .export import export_figures, figure_to_csv, figure_to_dict, load_exported
from .metrics import RepairQuality, edit_is_correct, repair_quality
from .reporting import render_category_stack, render_figure, render_table
from .sweeps import sweep_cleanliness, sweep_skewness

__all__ = [
    "ALL_FIGURES",
    "BAR_HEADERS",
    "BarMeasurement",
    "FigureResult",
    "MixedMeasurement",
    "dbgroup_case_study",
    "deletion_upper_bound",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "fig4",
    "insertion_upper_bound",
    "plant_errors",
    "RepairQuality",
    "edit_is_correct",
    "export_figures",
    "figure_to_csv",
    "figure_to_dict",
    "load_exported",
    "render_category_stack",
    "render_figure",
    "render_table",
    "repair_quality",
    "run_deletion",
    "run_insertion",
    "run_mixed",
    "sweep_cleanliness",
    "sweep_skewness",
]
