"""Plain-text rendering of experiment results.

The paper's figures are stacked bar charts; we render each as an ASCII
table plus a proportional text bar so the "shape" (who wins, by how
much) is visible directly in terminal output and in the benchmark logs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BAR_WIDTH = 40
_SEGMENT_CHARS = ("#", "=", ".")  # lower bound / questions / avoided


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A simple aligned table."""
    cells = [list(map(str, headers))] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(value.ljust(width) for value, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_stacked_bar(segments: Sequence[int], total: int) -> str:
    """One proportional stacked bar (lower/questions/avoided)."""
    if total <= 0:
        return ""
    bar = []
    for value, char in zip(segments, _SEGMENT_CHARS):
        width = round(_BAR_WIDTH * value / total)
        bar.append(char * width)
    return "".join(bar)


def render_figure(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
) -> str:
    """A titled table with optional footnotes."""
    parts = [title, "=" * len(title), render_table(headers, rows)]
    for note in notes:
        parts.append(f"  {note}")
    return "\n".join(parts) + "\n"


def render_telemetry_summary(hub=None, title: str = "telemetry summary") -> str:
    """The runtime telemetry rollup (counters/histograms/spans).

    Renders the global hub by default; pass an explicit
    :class:`~repro.telemetry.Telemetry` to render another instance.
    """
    from ..telemetry import TELEMETRY, summary_table

    return summary_table(hub if hub is not None else TELEMETRY, title=title)


def render_category_stack(stacks: Mapping[str, Mapping[str, int]]) -> str:
    """Rows of category->count stacks (Figures 3f / 4)."""
    categories = sorted({c for stack in stacks.values() for c in stack})
    headers = ["setting"] + categories + ["total"]
    rows = []
    for label, stack in stacks.items():
        values = [stack.get(c, 0) for c in categories]
        rows.append([label] + values + [sum(values)])
    return render_table(headers, rows)
