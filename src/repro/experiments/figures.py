"""Per-figure experiment drivers (Section 7.2, Figures 3-4; Section 7.1).

Each ``figN`` function reproduces one panel of the paper's evaluation:
it generates the ground truth, plants the panel's noise profile, runs
every algorithm of the panel, and returns a :class:`FigureResult` with
the same rows the paper plots (lower bound / questions / avoided per
algorithm and group).  Absolute numbers differ from the paper (different
concrete data), but the comparative shape is asserted by the test suite
and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.qoco import QOCO, QOCOConfig
from ..datasets.dbgroup import dbgroup_database, seeded_errors
from ..datasets.worldcup import worldcup_database
from ..db.database import Database
from ..oracle.aggregator import MajorityVote
from ..oracle.base import AccountingOracle
from ..oracle.crowd import Crowd
from ..oracle.imperfect import ImperfectOracle
from ..oracle.perfect import PerfectOracle
from ..query.evaluator import Evaluator
from ..workloads.dbgroup_queries import DBGROUP_QUERIES
from ..workloads.soccer_queries import SOCCER_QUERIES
from .harness import BAR_HEADERS, plant_errors, run_deletion, run_insertion, run_mixed
from .reporting import render_figure

DELETION_ALGOS = ("QOCO", "QOCO-", "Random")
INSERTION_ALGOS = ("Provenance", "MinCut", "Random")


@dataclass
class FigureResult:
    """Rows + rendering for one reproduced figure."""

    name: str
    title: str
    headers: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        rows = self.rows
        headers = self.headers
        if tuple(self.headers) == tuple(BAR_HEADERS):
            # Append a proportional stacked bar (lower/questions/avoided),
            # mirroring the paper's Figure 3 visuals in plain text.
            from .reporting import render_stacked_bar

            headers = tuple(self.headers) + ("profile  (#lower =questions .avoided)",)
            rows = [
                row
                + (
                    render_stacked_bar(
                        [row[2], row[3], row[4]], row[2] + row[3] + row[4]
                    ),
                )
                for row in self.rows
            ]
        return render_figure(f"{self.name}: {self.title}", headers, rows, self.notes)

    def by_algorithm(self, group: str) -> dict[str, tuple]:
        """``{algorithm: row}`` within one group (for shape assertions)."""
        result = {}
        for row in self.rows:
            if row[0] == group:
                result[row[1]] = row
        return result


def _ground_truth(cache: dict = {}) -> Database:
    """The Soccer ground truth, generated once per process."""
    if "db" not in cache:
        cache["db"] = worldcup_database()
    return cache["db"]


# ---------------------------------------------------------------------------
# Figure 3a — Deletion, multiple queries
# ---------------------------------------------------------------------------


def fig3a(
    queries: Sequence[str] = ("Q1", "Q2", "Q3"),
    n_wrong: int = 5,
    seed: int = 101,
) -> FigureResult:
    """Deletion cost across queries for QOCO / QOCO− / Random."""
    gt = _ground_truth()
    result = FigureResult(
        "fig3a", "Deletion - multiple queries (perfect oracle)", BAR_HEADERS
    )
    for query_name in queries:
        query = SOCCER_QUERIES[query_name]
        errors = plant_errors(gt, query, n_wrong=n_wrong, n_missing=0, seed=seed)
        for algorithm in DELETION_ALGOS:
            bar = run_deletion(gt, query, errors, algorithm, seed=seed)
            result.rows.append((query_name,) + bar.as_row()[1:])
    result.notes.append(f"{n_wrong} wrong answers per query, skew=100%")
    return result


# ---------------------------------------------------------------------------
# Figure 3b — Insertion, multiple queries
# ---------------------------------------------------------------------------


def fig3b(
    queries: Sequence[str] = ("Q3", "Q4", "Q5"),
    n_missing: int = 5,
    seed: int = 102,
) -> FigureResult:
    """Insertion cost across queries for Provenance / MinCut / Random."""
    gt = _ground_truth()
    result = FigureResult(
        "fig3b", "Insertion - multiple queries (perfect oracle)", BAR_HEADERS
    )
    for query_name in queries:
        query = SOCCER_QUERIES[query_name]
        errors = plant_errors(gt, query, n_wrong=0, n_missing=n_missing, seed=seed)
        for algorithm in INSERTION_ALGOS:
            bar = run_insertion(gt, query, errors, algorithm, seed=seed)
            result.rows.append((query_name,) + bar.as_row()[1:])
    result.notes.append(f"{n_missing} missing answers per query, skew=0%")
    return result


# ---------------------------------------------------------------------------
# Figure 3c — Mixed, multiple queries
# ---------------------------------------------------------------------------


def fig3c(
    queries: Sequence[str] = ("Q1", "Q2", "Q3"),
    n_wrong: int = 5,
    n_missing: int = 5,
    seed: int = 103,
) -> FigureResult:
    """Mixed cleaning across queries: Mixed(QOCO) / QOCO− / Random
    deletion, all with the Provenance insertion algorithm."""
    gt = _ground_truth()
    result = FigureResult(
        "fig3c", "Mixed - multiple queries (perfect oracle)", BAR_HEADERS
    )
    for query_name in queries:
        query = SOCCER_QUERIES[query_name]
        errors = plant_errors(gt, query, n_wrong=n_wrong, n_missing=n_missing, seed=seed)
        for algorithm in DELETION_ALGOS:
            mixed = run_mixed(
                gt, query, errors, strategy_name=algorithm, seed=seed
            )
            result.rows.append((query_name,) + mixed.bar.as_row()[1:])
    result.notes.append(
        f"{n_wrong} wrong + {n_missing} missing answers per query, skew=50%"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 3d — Deletion vs number of wrong answers (Q3)
# ---------------------------------------------------------------------------


def fig3d(
    wrong_counts: Sequence[int] = (2, 5, 10),
    query_name: str = "Q3",
    seed: int = 104,
) -> FigureResult:
    """Deletion cost on Q3 as the number of wrong answers grows."""
    gt = _ground_truth()
    query = SOCCER_QUERIES[query_name]
    result = FigureResult(
        "fig3d", f"Deletion - varying #wrong answers ({query_name})", BAR_HEADERS
    )
    for n_wrong in wrong_counts:
        errors = plant_errors(gt, query, n_wrong=n_wrong, n_missing=0, seed=seed)
        for algorithm in DELETION_ALGOS:
            bar = run_deletion(gt, query, errors, algorithm, seed=seed)
            result.rows.append((f"wrong={n_wrong}",) + bar.as_row()[1:])
    return result


# ---------------------------------------------------------------------------
# Figure 3e — Insertion vs number of missing answers (Q3)
# ---------------------------------------------------------------------------


def fig3e(
    missing_counts: Sequence[int] = (2, 5, 10),
    query_name: str = "Q3",
    seed: int = 105,
) -> FigureResult:
    """Insertion cost on Q3 as the number of missing answers grows."""
    gt = _ground_truth()
    query = SOCCER_QUERIES[query_name]
    result = FigureResult(
        "fig3e", f"Insertion - varying #missing answers ({query_name})", BAR_HEADERS
    )
    for n_missing in missing_counts:
        errors = plant_errors(gt, query, n_wrong=0, n_missing=n_missing, seed=seed)
        for algorithm in INSERTION_ALGOS:
            bar = run_insertion(gt, query, errors, algorithm, seed=seed)
            result.rows.append((f"missing={n_missing}",) + bar.as_row()[1:])
    return result


# ---------------------------------------------------------------------------
# Figure 3f — Mixed: distribution of question types (Q3)
# ---------------------------------------------------------------------------

FIG3F_HEADERS = (
    "setting",
    "verify_answers",
    "verify_tuples",
    "fill_missing",
    "total",
)


def fig3f(
    error_counts: Sequence[tuple[int, int]] = ((2, 2), (5, 5), (10, 10)),
    query_name: str = "Q3",
    seed: int = 106,
) -> FigureResult:
    """Question-type distribution of the Mixed algorithm on Q3."""
    gt = _ground_truth()
    query = SOCCER_QUERIES[query_name]
    result = FigureResult(
        "fig3f", f"Mixed - types of questions ({query_name})", FIG3F_HEADERS
    )
    for n_missing, n_wrong in error_counts:
        errors = plant_errors(
            gt, query, n_wrong=n_wrong, n_missing=n_missing, seed=seed
        )
        mixed = run_mixed(gt, query, errors, seed=seed)
        cats = mixed.categories
        result.rows.append(
            (
                f"{n_missing} missing, {n_wrong} wrong",
                cats["verify_answers"],
                cats["verify_tuples"],
                cats["fill_missing"],
                sum(cats.values()),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Figure 4 — Real (imperfect) expert crowd
# ---------------------------------------------------------------------------

FIG4_HEADERS = (
    "group",
    "algorithm",
    "verify_answers",
    "verify_tuples",
    "fill_missing",
    "total",
    "residual_errors",
)


def fig4(
    queries: Sequence[str] = ("Q2", "Q3"),
    n_wrong: int = 5,
    n_missing: int = 5,
    n_experts: int = 3,
    error_rate: float = 0.1,
    n_trials: int = 3,
    seed: int = 107,
) -> FigureResult:
    """Mixed cleaning with a majority-vote crowd of imperfect experts.

    Counts *crowd answers* (per Section 7's convention), split into the
    Figure 4 stack categories, for QOCO / QOCO− / Random deletion with
    Provenance insertion.  Numbers are means over *n_trials* independent
    crowds (single runs vary a lot: one wrong majority vote triggers a
    whole extra verification round).
    """
    gt = _ground_truth()
    result = FigureResult(
        "fig4",
        f"Real experts crowd ({n_experts} members, p_err={error_rate}, "
        f"mean of {n_trials} trials)",
        FIG4_HEADERS,
    )
    for query_name in queries:
        query = SOCCER_QUERIES[query_name]
        errors = plant_errors(
            gt, query, n_wrong=n_wrong, n_missing=n_missing, seed=seed
        )
        for algorithm in DELETION_ALGOS:
            totals = {key: 0.0 for key in ("va", "vt", "fm", "all", "residual")}
            for trial in range(n_trials):
                stats, residual = _run_crowd_trial(
                    gt,
                    query,
                    errors,
                    algorithm,
                    n_experts,
                    error_rate,
                    seed=seed * 7919 + trial * 104729 + _algo_offset(algorithm),
                )
                totals["va"] += stats["verify_answers"]
                totals["vt"] += stats["verify_tuples"]
                totals["fm"] += stats["fill_missing"]
                totals["all"] += sum(stats.values())
                totals["residual"] += residual
            result.rows.append(
                (
                    query_name,
                    algorithm,
                    round(totals["va"] / n_trials, 1),
                    round(totals["vt"] / n_trials, 1),
                    round(totals["fm"] / n_trials, 1),
                    round(totals["all"] / n_trials, 1),
                    round(totals["residual"] / n_trials, 2),
                )
            )
    result.notes.append(
        "counts are crowd member answers (majority vote, early stop at 2)"
    )
    return result


def _algo_offset(algorithm: str) -> int:
    """A stable per-algorithm seed offset (hash() is salted per process)."""
    return sum(ord(c) for c in algorithm)


def _run_crowd_trial(
    gt: Database,
    query,
    errors,
    algorithm: str,
    n_experts: int,
    error_rate: float,
    seed: int,
) -> tuple[dict[str, int], int]:
    from .harness import make_split, make_strategy

    rng = random.Random(seed)
    members = [
        ImperfectOracle(gt, error_rate, random.Random(rng.randrange(1 << 30)))
        for _ in range(n_experts)
    ]
    crowd = Crowd(members, MajorityVote(sample_size=n_experts))
    dirty = errors.dirty.copy()
    accounting = AccountingOracle(crowd)
    config = QOCOConfig(
        deletion=make_strategy(algorithm),
        split=make_split("Provenance"),
        seed=seed,
        max_iterations=6,
    )
    QOCO(dirty, accounting, config).clean(query)
    residual = len(
        Evaluator(query, dirty).answers() ^ Evaluator(query, gt).answers()
    )
    return dict(crowd.stats.answers), residual


# ---------------------------------------------------------------------------
# Section 7.1 — the DBGroup case study
# ---------------------------------------------------------------------------

DBGROUP_HEADERS = (
    "query",
    "wrong_found",
    "missing_found",
    "deletions",
    "insertions",
    "questions",
    "result_matches_gt",
)


def dbgroup_case_study(seed: int = 108) -> FigureResult:
    """Run the four grant-report queries over the seeded-dirty DBGroup DB.

    Reproduces the Section 7.1 narrative: QOCO discovers the planted
    wrong and missing answers and repairs the underlying database.
    """
    gt = dbgroup_database()
    dirty, _corruption = seeded_errors(gt, seed=seed)
    oracle = AccountingOracle(PerfectOracle(gt))
    result = FigureResult("dbgroup", "DBGroup case study (Section 7.1)", DBGROUP_HEADERS)
    system = QOCO(dirty, oracle, QOCOConfig(seed=seed))
    for name, query in DBGROUP_QUERIES.items():
        before = oracle.log.total_cost
        report = system.clean(query)
        questions = oracle.log.total_cost - before
        matches = (
            Evaluator(query, dirty).answers() == Evaluator(query, gt).answers()
        )
        result.rows.append(
            (
                name,
                len(report.wrong_answers_removed),
                len(report.missing_answers_added),
                len(report.deletions),
                len(report.insertions),
                questions,
                matches,
            )
        )
    return result


def sweep_cleanliness_q1(seed: int = 401) -> FigureResult:
    """CLI wrapper: the §7.2 cleanliness sweep (60-95%) on Q1."""
    from .sweeps import sweep_cleanliness

    gt = _ground_truth()
    return sweep_cleanliness(
        gt, SOCCER_QUERIES["Q1"], protected=set(gt.facts("stages")), seed=seed
    )


def sweep_skewness_q1(seed: int = 402) -> FigureResult:
    """CLI wrapper: the §7.2 skewness sweep (0-100%) on Q1."""
    from .sweeps import sweep_skewness

    gt = _ground_truth()
    return sweep_skewness(
        gt, SOCCER_QUERIES["Q1"], protected=set(gt.facts("stages")), seed=seed
    )


def dispatch_modes(seed: int = 5) -> FigureResult:
    """Live-dispatch ablation: one Soccer session per routing mode.

    The §6.2/§7.2 wall-clock dimension made live: the same dirty Q2
    instance (a hub team with fabricated games, so concurrent removal
    tasks ask duplicate questions) is cleaned synchronously, through
    the dispatch engine, with deduplication disabled, and under fault
    injection with retries.  Every mode must reach the same final
    database; they differ in member answers and simulated wall-clock.
    """
    from ..core.parallel import ParallelQOCO
    from ..crowdsim import lognormal_latency
    from ..datasets.worldcup import WorldCupConfig
    from ..db.tuples import fact
    from ..dispatch import FaultModel, RetryPolicy, dispatch_clean

    gt = worldcup_database(WorldCupConfig(players_per_team=6, group_games_per_cup=4))
    dirty_base = gt.copy()
    for i, partner in enumerate(("AUT", "BEL", "WAL")):
        for j in (1, 2):
            dirty_base.insert(
                fact("games", f"0{j}.01.19{70 + i}", "YUG", partner, "Group", f"{j}:0")
            )
    query = SOCCER_QUERIES["Q2"]
    result = FigureResult(
        "dispatch",
        "Live crowd-dispatch modes on Q2 (see docs/dispatch.md)",
        ("mode", "cost", "member answers", "coalesced", "retries",
         "rounds", "wall-clock (s)", "converged"),
    )

    db = dirty_base.copy()
    report = ParallelQOCO(
        db, AccountingOracle(PerfectOracle(gt)), seed=seed
    ).clean(query)
    result.rows.append(
        ("synchronous", report.total_cost, "-", "-", "-",
         report.rounds, 0, report.converged)
    )

    modes = (
        ("dispatch", dict()),
        ("no-dedup", dict(dedup=False)),
        (
            "faulted",
            dict(
                faults=FaultModel(
                    no_show_rate=0.2, dropout_rate=0.02, late_rate=0.2,
                    rng=random.Random(3),
                ),
                retry=RetryPolicy(timeout=300.0, max_retries=6),
            ),
        ),
    )
    for name, kwargs in modes:
        db = dirty_base.copy()
        report, engine = dispatch_clean(
            db, query, [PerfectOracle(gt)] * 8,
            votes_per_closed=3,
            latency=lognormal_latency(120.0),
            rng=random.Random(7),
            seed=seed,
            **kwargs,
        )
        result.rows.append(
            (
                name,
                report.total_cost,
                engine.stats.member_answers,
                engine.stats.dedup_coalesced,
                engine.stats.retries,
                report.rounds,
                round(report.wall_clock),
                report.converged,
            )
        )
    result.notes.append(
        "all modes reach the same final database; dedup saves member "
        "answers, faults cost retries and wall-clock"
    )
    return result


#: All figure drivers, for the CLI and the benchmark suite.
ALL_FIGURES: dict[str, Callable[[], FigureResult]] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
    "fig4": fig4,
    "dbgroup": dbgroup_case_study,
    "sweep-cleanliness": sweep_cleanliness_q1,
    "sweep-skewness": sweep_skewness_q1,
    "dispatch": dispatch_modes,
}
