"""Exporting experiment results (CSV / JSON) for external plotting.

``qoco-experiments --export DIR`` writes every figure's rows to
``DIR/<figure>.csv`` and a combined ``results.json``, so the tables can
be re-plotted with any tool without re-running the experiments.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from .figures import FigureResult

PathLike = Union[str, Path]


def figure_to_csv(result: FigureResult, file_path: PathLike) -> None:
    """Write one figure's rows as CSV with a header."""
    with open(file_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow([str(value) for value in row])


def figure_to_dict(result: FigureResult) -> dict:
    """One figure's rows/notes as a JSON-serializable dict."""
    return {
        "name": result.name,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(map(_jsonable, row)) for row in result.rows],
        "notes": list(result.notes),
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_figures(results: Iterable[FigureResult], directory: PathLike) -> Path:
    """Write per-figure CSVs and a combined JSON; return the directory."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    combined = []
    for result in results:
        figure_to_csv(result, path / f"{result.name}.csv")
        combined.append(figure_to_dict(result))
    with open(path / "results.json", "w", encoding="utf-8") as handle:
        json.dump(combined, handle, indent=2)
    return path


def load_exported(directory: PathLike) -> list[dict]:
    """Read back a ``results.json`` written by :func:`export_figures`."""
    with open(Path(directory) / "results.json", encoding="utf-8") as handle:
        return json.load(handle)
