"""Command-line entry point: regenerate every figure of the paper.

Usage::

    qoco-experiments               # run all figures
    qoco-experiments fig3a fig4    # run selected figures
    python -m repro.experiments.cli --list
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qoco-experiments",
        description="Reproduce the QOCO (SIGMOD'15) evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="figure ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figures and exit"
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        help="also write per-figure CSVs and results.json into DIR",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect runtime telemetry and print the summary table",
    )
    parser.add_argument(
        "--telemetry-jsonl",
        metavar="FILE",
        help="stream telemetry spans + final summary to FILE (implies --telemetry)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_FIGURES:
            print(name)
        return 0

    selected = args.figures or list(ALL_FIGURES)
    unknown = [name for name in selected if name not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    telemetry_on = args.telemetry or args.telemetry_jsonl
    jsonl_sink = None
    if telemetry_on:
        from ..telemetry import TELEMETRY, JSONLSink

        TELEMETRY.reset()
        if args.telemetry_jsonl:
            jsonl_sink = JSONLSink(args.telemetry_jsonl)
            TELEMETRY.add_sink(jsonl_sink)
        TELEMETRY.enable()

    results = []
    for name in selected:
        start = time.perf_counter()
        with_span = ALL_FIGURES[name]
        if telemetry_on:
            from ..telemetry import TELEMETRY

            with TELEMETRY.span("experiments.figure", figure=name):
                result = with_span()
        else:
            result = with_span()
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name} completed in {elapsed:.2f}s]\n")
        results.append(result)

    if args.export:
        from .export import export_figures

        path = export_figures(results, args.export)
        print(f"[results exported to {path}]")

    if telemetry_on:
        from ..telemetry import TELEMETRY

        from .reporting import render_telemetry_summary

        TELEMETRY.disable()
        TELEMETRY.flush()
        print(render_telemetry_summary())
        if jsonl_sink is not None:
            TELEMETRY.remove_sink(jsonl_sink)
            jsonl_sink.close()
            print(f"[telemetry trace written to {args.telemetry_jsonl}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
