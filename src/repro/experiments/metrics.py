"""Repair-quality metrics: precision/recall of the applied edits.

The paper validates its DBGroup run by hand: "we have later manually
verified to be all indeed correct edits."  This module mechanizes that
check.  Given the corruption that produced the dirty database, the
*ideal repair* is the inverted corruption; an applied edit is

* **correct** if it moves the database toward the ground truth (deletes
  a false fact or inserts a true-missing one),
* **spurious** otherwise (a perfect oracle never produces these; an
  imperfect crowd can).

Because QOCO is query-scoped it is *not* expected to reach recall 1.0
against the full corruption — only against the part visible through the
cleaned queries — so the recall here is reported both raw and restricted
to the query-relevant corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..db.database import Database
from ..db.edits import Edit, EditKind


@dataclass(frozen=True)
class RepairQuality:
    """Precision/recall of a repair against the planted corruption."""

    correct_edits: int
    spurious_edits: int
    repaired_corruption: int
    total_corruption: int

    @property
    def precision(self) -> float:
        applied = self.correct_edits + self.spurious_edits
        return self.correct_edits / applied if applied else 1.0

    @property
    def recall(self) -> float:
        if self.total_corruption == 0:
            return 1.0
        return self.repaired_corruption / self.total_corruption

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.2f} recall={self.recall:.2f} "
            f"f1={self.f1:.2f} ({self.correct_edits} correct, "
            f"{self.spurious_edits} spurious, "
            f"{self.repaired_corruption}/{self.total_corruption} corruption undone)"
        )


def edit_is_correct(edit: Edit, ground_truth: Database) -> bool:
    """Does the edit move any database toward the ground truth?

    A deletion is correct iff the fact is false (not in ``D_G``); an
    insertion is correct iff the fact is true (in ``D_G``).
    """
    if edit.kind is EditKind.DELETE:
        return edit.fact not in ground_truth
    return edit.fact in ground_truth


def repair_quality(
    applied_edits: Iterable[Edit],
    corruption_edits: Iterable[Edit],
    ground_truth: Database,
    relevant_corruption: Optional[Iterable[Edit]] = None,
) -> RepairQuality:
    """Score *applied_edits* against the planted *corruption_edits*.

    *relevant_corruption* optionally restricts recall to the corruption
    visible through the cleaned queries (QOCO's actual target).
    """
    applied = list(applied_edits)
    correct = sum(1 for edit in applied if edit_is_correct(edit, ground_truth))
    spurious = len(applied) - correct

    target = list(relevant_corruption if relevant_corruption is not None else corruption_edits)
    ideal = {edit.inverted() for edit in target}
    repaired = sum(1 for edit in applied if edit in ideal)
    return RepairQuality(
        correct_edits=correct,
        spurious_edits=spurious,
        repaired_corruption=repaired,
        total_corruption=len(ideal),
    )
