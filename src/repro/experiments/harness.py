"""Experiment harness: measurement procedures behind every figure.

Measurement conventions (see DESIGN.md §2 and EXPERIMENTS.md):

* **Deletion** (Figures 3a/3d): every answer of ``Q(D)`` must be
  verified (``TRUE(Q, t)?`` — the black "# results" bar); the red
  "# questions" bar counts the ``TRUE(R(ā))?`` fact verifications the
  strategy asked; the white "# avoided" bar is the naive upper bound
  (every distinct fact across the wrong answers' witnesses) minus the
  questions asked.
* **Insertion** (Figures 3b/3e): the black "# missing" bar counts the
  ``COMPL(Q(D))`` identifications (one per missing answer); the red bar
  counts candidate verifications plus the variables the crowd filled;
  the white bar is the naive upper bound (all unique variables of each
  ``Q|t``) minus the questions.
* **Mixed** (Figure 3c): sum of the two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..core.deletion import (
    DELETION_STRATEGIES,
    DeletionStrategy,
    crowd_remove_wrong_answer,
)
from ..core.insertion import InsertionConfig, crowd_add_missing_answer
from ..core.split import SPLIT_STRATEGIES, SplitStrategy
from ..db.database import Database
from ..datasets.noise import ResultErrors, inject_result_errors
from ..oracle.base import AccountingOracle, Oracle
from ..oracle.perfect import PerfectOracle
from ..oracle.questions import QuestionKind
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator
from ..query.subquery import embed_answer, unique_variables


@dataclass(frozen=True)
class BarMeasurement:
    """One stacked bar of a Figure 3 panel."""

    figure: str
    group: str          # e.g. the query name or "#wrong=5"
    algorithm: str
    lower: int          # black segment (forced interactions)
    questions: int      # red segment (actual strategy questions)
    naive_upper: int    # lower + questions + avoided

    @property
    def avoided(self) -> int:
        return max(0, self.naive_upper - self.questions)

    @property
    def total(self) -> int:
        return self.lower + self.questions + self.avoided

    def as_row(self) -> tuple:
        return (
            self.group,
            self.algorithm,
            self.lower,
            self.questions,
            self.avoided,
            self.lower + self.naive_upper,
        )


BAR_HEADERS = ("group", "algorithm", "lower", "questions", "avoided", "total")


def make_strategy(name: str) -> DeletionStrategy:
    return DELETION_STRATEGIES[name]()


def make_split(name: str) -> SplitStrategy:
    return SPLIT_STRATEGIES[name]()


# ---------------------------------------------------------------------------
# deletion experiments
# ---------------------------------------------------------------------------


def deletion_upper_bound(
    query: Query, dirty: Database, wrong_answers: Iterable[Answer]
) -> int:
    """Distinct facts across all witnesses of the wrong answers."""
    evaluator = Evaluator(query, dirty)
    facts = set()
    for answer in wrong_answers:
        for witness in evaluator.witnesses(answer):
            facts |= witness
    return len(facts)


def run_deletion(
    ground_truth: Database,
    query: Query,
    errors: ResultErrors,
    strategy_name: str,
    seed: int = 0,
    oracle: Oracle | None = None,
) -> BarMeasurement:
    """Verify every answer of Q(D); remove the wrong ones with *strategy*."""
    dirty = errors.dirty.copy()
    backend = oracle if oracle is not None else PerfectOracle(ground_truth)
    accounting = AccountingOracle(backend)
    strategy = make_strategy(strategy_name)
    rng = random.Random(seed)

    upper = deletion_upper_bound(query, dirty, errors.wrong_answers)

    for answer in sorted(Evaluator(query, dirty).answers(), key=repr):
        if answer not in Evaluator(query, dirty).answers():
            continue  # collateral removal by an earlier deletion
        if accounting.verify_answer(query, answer):
            continue
        crowd_remove_wrong_answer(
            query, dirty, answer, accounting, strategy=strategy, rng=rng
        )

    log = accounting.log
    return BarMeasurement(
        figure="deletion",
        group=query.name,
        algorithm=strategy_name,
        lower=log.cost_of([QuestionKind.VERIFY_ANSWER]),
        questions=log.cost_of([QuestionKind.VERIFY_FACT]),
        naive_upper=upper,
    )


# ---------------------------------------------------------------------------
# insertion experiments
# ---------------------------------------------------------------------------


def insertion_upper_bound(
    query: Query, missing_answers: Iterable[Answer]
) -> int:
    """Unique variables of ``Q|t`` summed over the missing answers —
    what the naive whole-witness task would make the crowd fill."""
    return sum(
        len(unique_variables(embed_answer(query, answer)))
        for answer in missing_answers
    )


def run_insertion(
    ground_truth: Database,
    query: Query,
    errors: ResultErrors,
    split_name: str,
    seed: int = 0,
    oracle: Oracle | None = None,
    insertion_config: InsertionConfig | None = None,
) -> BarMeasurement:
    """Identify missing answers via COMPL(Q(D)) and insert witnesses."""
    dirty = errors.dirty.copy()
    backend = oracle if oracle is not None else PerfectOracle(ground_truth)
    accounting = AccountingOracle(backend)
    split = make_split(split_name)
    rng = random.Random(seed)

    identified: list[Answer] = []
    while True:
        current = Evaluator(query, dirty).answers()
        missing = accounting.complete_result(query, current)
        if missing is None:
            break
        if missing in current:
            continue
        identified.append(missing)
        crowd_add_missing_answer(
            query,
            dirty,
            missing,
            accounting,
            split=split,
            rng=rng,
            config=insertion_config,
        )

    # Upper bound over the answers the crowd actually had to supply
    # witnesses for (one insertion can restore several missing answers
    # when they shared a deleted fact, so this can be < the planted
    # count — all algorithms see the same identified set under the
    # perfect oracle, keeping bars comparable).
    upper = insertion_upper_bound(query, identified)

    log = accounting.log
    questions = log.total_cost - log.cost_of([QuestionKind.COMPLETE_RESULT])
    return BarMeasurement(
        figure="insertion",
        group=query.name,
        algorithm=split_name,
        lower=len(identified),
        questions=questions,
        naive_upper=upper,
    )


# ---------------------------------------------------------------------------
# mixed experiments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MixedMeasurement:
    """A Figure 3c/3f data point: bar segments plus category stack."""

    bar: BarMeasurement
    categories: dict[str, int] = field(default_factory=dict)


def run_mixed(
    ground_truth: Database,
    query: Query,
    errors: ResultErrors,
    strategy_name: str = "QOCO",
    split_name: str = "Provenance",
    seed: int = 0,
    oracle: Oracle | None = None,
) -> MixedMeasurement:
    """Algorithm 3 over a database with both wrong and missing answers."""
    from ..core.qoco import QOCO, QOCOConfig

    dirty = errors.dirty.copy()
    backend = oracle if oracle is not None else PerfectOracle(ground_truth)
    accounting = AccountingOracle(backend)
    config = QOCOConfig(
        deletion=make_strategy(strategy_name),
        split=make_split(split_name),
        seed=seed,
    )
    system = QOCO(dirty, accounting, config)
    report = system.clean(query)

    upper = deletion_upper_bound(
        query, errors.dirty, errors.wrong_answers
    ) + insertion_upper_bound(query, errors.missing_answers)

    log = accounting.log
    lower = log.count_of([QuestionKind.VERIFY_ANSWER]) + len(
        report.missing_answers_added
    )
    questions = (
        log.cost_of([QuestionKind.VERIFY_FACT])
        + log.cost_of([QuestionKind.VERIFY_CANDIDATE])
        + log.cost_of([QuestionKind.COMPLETE_ASSIGNMENT])
    )
    bar = BarMeasurement(
        figure="mixed",
        group=query.name,
        algorithm=strategy_name,
        lower=lower,
        questions=questions,
        naive_upper=upper,
    )
    return MixedMeasurement(bar=bar, categories=log.category_costs())


# ---------------------------------------------------------------------------
# noise helpers
# ---------------------------------------------------------------------------


def plant_errors(
    ground_truth: Database,
    query: Query,
    n_wrong: int,
    n_missing: int,
    seed: int,
) -> ResultErrors:
    """Deterministically plant result errors for one experiment cell."""
    return inject_result_errors(
        ground_truth, query, n_wrong, n_missing, rng=random.Random(seed)
    )
