"""Telemetry sinks: where spans, counter events, and observations go.

Three sinks cover the reproduction's needs:

* :class:`InMemorySink` — keeps everything in lists; the test suite's
  window into the exact event stream (ordering included).
* :class:`JSONLSink` — one JSON object per line; spans are written
  eagerly as they close, aggregate counters/histograms on ``flush``.
* :func:`summary_table` — the human-readable rollup printed by
  ``qoco-experiments --telemetry``.
"""

from __future__ import annotations

import json
from typing import IO, Union

from .core import Span, Telemetry


class Sink:
    """Base sink: every hook is a no-op; subclass what you need."""

    def on_span(self, span: Span) -> None:
        """A span just closed."""

    def on_counter(self, name: str, delta: float, total: float) -> None:
        """Counter *name* was incremented by *delta* (running *total*)."""

    def on_observation(self, name: str, value: float) -> None:
        """Histogram *name* recorded *value*."""

    def flush(self, hub: Telemetry) -> None:
        """Persist aggregate state (called by ``Telemetry.flush``)."""

    def close(self) -> None:
        """Release resources."""


class InMemorySink(Sink):
    """Records the full event stream; used by tests and notebooks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.counter_events: list[tuple[str, float, float]] = []
        self.observations: list[tuple[str, float]] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)

    def on_counter(self, name: str, delta: float, total: float) -> None:
        self.counter_events.append((name, delta, total))

    def on_observation(self, name: str, value: float) -> None:
        self.observations.append((name, value))

    # -- conveniences ----------------------------------------------------
    def span_names(self) -> list[str]:
        return [span.name for span in self.spans]

    def span_paths(self) -> list[str]:
        return [span.path for span in self.spans]

    def counter_stream(self, name: str) -> list[float]:
        """The ordered deltas recorded against counter *name*."""
        return [delta for n, delta, _ in self.counter_events if n == name]

    def clear(self) -> None:
        self.spans.clear()
        self.counter_events.clear()
        self.observations.clear()


class JSONLSink(Sink):
    """Writes one JSON record per line to a path or open handle.

    Span records are streamed as they close::

        {"type": "span", "name": ..., "path": ..., "duration_s": ..., ...}

    ``flush`` appends one ``{"type": "summary", ...}`` record holding the
    hub's aggregate counters/histograms/span stats, so a truncated file
    still carries the trace and a complete one ends with the rollup.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")

    def on_span(self, span: Span) -> None:
        self._write(span.to_dict())

    def flush(self, hub: Telemetry) -> None:
        self._write({"type": "summary", **hub.snapshot()})
        self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


def summary_table(hub: Telemetry, title: str = "telemetry summary") -> str:
    """Render the hub's aggregates as aligned plain-text tables."""
    from ..experiments.reporting import render_table

    parts: list[str] = [title, "=" * len(title)]

    counters = hub.counters()
    if counters:
        parts.append("counters")
        rows = [[name, _fmt(value)] for name, value in sorted(counters.items())]
        parts.append(render_table(["name", "value"], rows))

    histograms = hub.histograms()
    if histograms:
        parts.append("")
        parts.append("histograms")
        rows = [
            [name, stat.count, _fmt(stat.mean), _fmt(stat.minimum), _fmt(stat.maximum), _fmt(stat.total)]
            for name, stat in sorted(histograms.items())
        ]
        parts.append(render_table(["name", "count", "mean", "min", "max", "total"], rows))

    spans = hub.span_stats()
    if spans:
        parts.append("")
        parts.append("spans")
        rows = [
            [name, stat.calls, f"{stat.total_seconds:.4f}", f"{stat.mean_seconds * 1000:.3f}"]
            for name, stat in sorted(spans.items())
        ]
        parts.append(render_table(["name", "calls", "total_s", "mean_ms"], rows))

    if len(parts) == 2:
        parts.append("(no telemetry recorded)")
    return "\n".join(parts) + "\n"


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))
