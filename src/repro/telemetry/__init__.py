"""Zero-dependency tracing and metrics for the QOCO pipeline.

The paper's evaluation (Section 7, Figures 3-4) is entirely about
*budgets*: how many oracle questions and crowd rounds each algorithm
spends.  This package gives the runtime the fine-grained accounting the
figures need — hierarchical wall-time spans, named counters, and
histograms — with pluggable sinks (in-memory for tests, JSONL for
post-hoc analysis, a summary table for humans).

Design constraints:

* **Zero dependencies** — standard library only.
* **Near-zero disabled cost** — every instrumentation site guards on
  ``TELEMETRY.enabled`` (one attribute lookup) before doing any work;
  ``benchmarks/bench_telemetry.py`` keeps this honest.
* **Semantics-free** — instrumentation observes, never branches; the
  differential test suite proves telemetry-on and telemetry-off runs
  produce identical answers and edits.

Usage::

    from repro.telemetry import TELEMETRY, InMemorySink

    sink = InMemorySink()
    TELEMETRY.enable(sink)
    ...  # run a cleaning session
    print(TELEMETRY.counter("oracle.questions.verify_fact"))
    TELEMETRY.disable()

or, scoped (restores prior state on exit)::

    with telemetry_session() as (tel, sink):
        ...
"""

from .core import (
    TELEMETRY,
    HistogramStat,
    Span,
    SpanStat,
    Telemetry,
    get_telemetry,
    telemetry_session,
)
from .sinks import InMemorySink, JSONLSink, Sink, summary_table

__all__ = [
    "TELEMETRY",
    "HistogramStat",
    "InMemorySink",
    "JSONLSink",
    "Sink",
    "Span",
    "SpanStat",
    "Telemetry",
    "get_telemetry",
    "summary_table",
    "telemetry_session",
]
