"""The telemetry engine: spans, counters, histograms, and the global hub.

One process-wide :data:`TELEMETRY` instance is shared by every
instrumented module (imported at module load, so the hot paths pay a
single attribute lookup — ``tel.enabled`` — per event when disabled).
Tests use :func:`telemetry_session` to enable it with an in-memory sink
and restore the prior state afterwards.

Spans nest: entering a span pushes it on the hub's stack, so a span's
``path`` is the slash-joined chain of its ancestors
(``qoco.clean/qoco.deletion_phase/deletion.remove_answer``).  Span
timing uses ``time.perf_counter``.  The hub also aggregates per-name
span statistics (call count, total seconds) so the summary table does
not need a sink.

The engine is not thread-safe; QOCO's "parallel" mode is cooperative
round-scheduling in one thread, which is exactly what this supports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass
class HistogramStat:
    """Running summary of an observed distribution (no sample storage)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }


@dataclass
class SpanStat:
    """Aggregate over all completed spans sharing one name."""

    calls: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Span:
    """One timed, attributed region.  Context manager; nests via the hub."""

    __slots__ = ("name", "attributes", "path", "depth", "start_time", "end_time", "_hub")

    def __init__(self, hub: "Telemetry", name: str, attributes: dict[str, Any]) -> None:
        self._hub = hub
        self.name = name
        self.attributes = attributes
        self.path = name
        self.depth = 0
        self.start_time = 0.0
        self.end_time = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.end_time - self.start_time

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
        }

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        stack = self._hub._stack
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_time = time.perf_counter()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        stack = self._hub._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._hub._finish_span(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.path!r}, {self.duration:.6f}s, {self.attributes!r})"


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """The hub: owns the enabled flag, aggregates, sinks, and span stack.

    Every public mutator early-returns when disabled, so instrumented
    code may call unconditionally; hot loops should still guard with
    ``if tel.enabled:`` to skip argument construction.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._sinks: list = []
        self._counters: dict[str, float] = {}
        self._histograms: dict[str, HistogramStat] = {}
        self._span_stats: dict[str, SpanStat] = {}
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self, *sinks) -> "Telemetry":
        """Turn collection on, optionally attaching *sinks*."""
        for sink in sinks:
            self.add_sink(sink)
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Turn collection off (aggregates and sinks are kept)."""
        self.enabled = False
        return self

    def add_sink(self, sink) -> None:
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def reset(self) -> None:
        """Drop all aggregates and any dangling span stack."""
        self._counters.clear()
        self._histograms.clear()
        self._span_stats.clear()
        self._stack.clear()

    def flush(self) -> None:
        for sink in self._sinks:
            sink.flush(self)

    def close(self) -> None:
        self.flush()
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """A context manager timing one region (no-op when disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attributes)

    def count(self, name: str, value: float = 1) -> None:
        """Increment counter *name* by *value*."""
        if not self.enabled:
            return
        total = self._counters.get(name, 0) + value
        self._counters[name] = total
        for sink in self._sinks:
            sink.on_counter(name, value, total)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of histogram *name*."""
        if not self.enabled:
            return
        stat = self._histograms.get(name)
        if stat is None:
            stat = self._histograms[name] = HistogramStat()
        stat.observe(value)
        for sink in self._sinks:
            sink.on_observation(name, value)

    def _finish_span(self, span: Span) -> None:
        stat = self._span_stats.get(span.name)
        if stat is None:
            stat = self._span_stats[span.name] = SpanStat()
        stat.calls += 1
        stat.total_seconds += span.duration
        for sink in self._sinks:
            sink.on_span(span)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """A copy of all counters, optionally filtered by name prefix."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def histogram(self, name: str) -> HistogramStat:
        return self._histograms.get(name, HistogramStat())

    def histograms(self, prefix: str = "") -> dict[str, HistogramStat]:
        return {
            name: stat
            for name, stat in self._histograms.items()
            if name.startswith(prefix)
        }

    def span_stats(self, prefix: str = "") -> dict[str, SpanStat]:
        return {
            name: stat
            for name, stat in self._span_stats.items()
            if name.startswith(prefix)
        }

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # merging (cross-process aggregation)
    # ------------------------------------------------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold another hub's :meth:`snapshot` into this hub's aggregates.

        The sharded driver collects each worker process's snapshot with
        its result and merges it here, so child-process counters,
        histogram summaries, and span statistics show up in the parent
        instead of dying with the worker.  Counters add; histograms fold
        count/total/min/max; span stats fold calls/total seconds.  Sinks
        are *not* replayed (the events already happened in the child);
        only the aggregates move.  No-op while the hub is disabled, like
        every other mutator.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, data in snapshot.get("histograms", {}).items():
            if not data.get("count"):
                continue
            stat = self._histograms.get(name)
            if stat is None:
                stat = self._histograms[name] = HistogramStat()
            stat.count += data["count"]
            stat.total += data["total"]
            if data["min"] is not None and data["min"] < stat.minimum:
                stat.minimum = data["min"]
            if data["max"] is not None and data["max"] > stat.maximum:
                stat.maximum = data["max"]
        for name, data in snapshot.get("spans", {}).items():
            stat = self._span_stats.get(name)
            if stat is None:
                stat = self._span_stats[name] = SpanStat()
            stat.calls += data["calls"]
            stat.total_seconds += data["total_s"]

    def snapshot(self) -> dict:
        """JSON-serializable view of every aggregate (for export/sinks)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "histograms": {
                name: stat.to_dict()
                for name, stat in sorted(self._histograms.items())
            },
            "spans": {
                name: {
                    "calls": stat.calls,
                    "total_s": stat.total_seconds,
                    "mean_s": stat.mean_seconds,
                }
                for name, stat in sorted(self._span_stats.items())
            },
        }


#: The process-wide hub every instrumented module imports.
TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The global hub (one per process; modules bind it at import)."""
    return TELEMETRY


@contextmanager
def telemetry_session(*sinks, hub: Optional[Telemetry] = None) -> Iterator[tuple]:
    """Enable the (global) hub with *sinks* for one scoped block.

    Resets aggregates on entry, yields ``(hub, first_sink)`` — creating
    an :class:`~repro.telemetry.sinks.InMemorySink` when none is given —
    and restores the hub's previous enabled/sink/aggregate state on
    exit, so tests cannot leak telemetry into each other.
    """
    from .sinks import InMemorySink

    hub = hub if hub is not None else TELEMETRY
    saved_enabled = hub.enabled
    saved_sinks = list(hub._sinks)
    saved = (
        dict(hub._counters),
        dict(hub._histograms),
        dict(hub._span_stats),
    )
    if not sinks:
        sinks = (InMemorySink(),)
    hub.reset()
    hub._sinks = list(sinks)
    hub.enabled = True
    try:
        yield hub, sinks[0]
    finally:
        hub.enabled = saved_enabled
        hub._sinks = saved_sinks
        hub._counters, hub._histograms, hub._span_stats = (
            dict(saved[0]),
            dict(saved[1]),
            dict(saved[2]),
        )
        hub._stack.clear()
