"""A small datalog-style text syntax for queries.

Example (query Q1 from the paper's running example)::

    q1(x) :- games(d1, x, y, "Final", u1),
             games(d2, x, z, "Final", u2),
             teams(x, "EU"), d1 != d2.

Conventions:

* bare identifiers are **variables** (``x``, ``d1``);
* double-quoted strings and numeric literals are **constants**
  (``"Final"``, ``1992``, ``4.5``);
* the trailing period is optional;
* the head name is optional: ``(x) :- ...`` names the query ``ans``.

The parser is a hand-rolled tokenizer + recursive descent, and
``parse_query(str(q))`` round-trips for every well-formed query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..db.tuples import Constant
from .ast import Atom, Inequality, Query, Term, Var


class ParseError(ValueError):
    """Raised on malformed query text, with position information."""

    def __init__(self, message: str, position: int, text: str) -> None:
        snippet = text[max(0, position - 20) : position + 20]
        super().__init__(f"{message} at offset {position}: ...{snippet!r}...")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<neq>!=)
  | (?P<implies>:-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<period>\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position, text)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers --------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, got {token.kind}", token.position, self.text)
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    # -- grammar --------------------------------------------------------
    def parse(self) -> Query:
        name, head = self._head()
        self._expect("implies")
        atoms: list[Atom] = []
        negated: list[Atom] = []
        inequalities: list[Inequality] = []
        while True:
            self._body_element(atoms, negated, inequalities)
            if not self._accept("comma"):
                break
        self._accept("period")
        trailing = self._peek()
        if trailing is not None:
            raise ParseError("trailing input after query", trailing.position, self.text)
        return Query(
            tuple(head), tuple(atoms), tuple(inequalities), name, tuple(negated)
        )

    def _head(self) -> tuple[str, list[Term]]:
        name = "ans"
        token = self._peek()
        if token is not None and token.kind == "ident":
            name = self._next().value
        self._expect("lparen")
        terms = self._term_list()
        return name, terms

    def _term_list(self) -> list[Term]:
        terms: list[Term] = []
        if self._accept("rparen"):
            return terms
        terms.append(self._term())
        while self._accept("comma"):
            terms.append(self._term())
        self._expect("rparen")
        return terms

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            return Var(token.value)
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "number":
            return _parse_number(token.value)
        raise ParseError(f"expected a term, got {token.kind}", token.position, self.text)

    def _body_element(
        self,
        atoms: list[Atom],
        negated: list[Atom],
        inequalities: list[Inequality],
    ) -> None:
        token = self._peek()
        if token is not None and token.kind == "ident" and token.value == "not":
            self._next()
            element = self._term_or_atom()
            if not isinstance(element, Atom):
                raise ParseError(
                    "'not' must be followed by a relational atom",
                    token.position,
                    self.text,
                )
            negated.append(element)
            return
        first = self._term_or_atom()
        if isinstance(first, Atom):
            atoms.append(first)
            return
        self._expect("neq")
        right = self._term()
        inequalities.append(Inequality(first, right))

    def _term_or_atom(self) -> Atom | Term:
        token = self._next()
        if token.kind == "ident":
            if self._accept("lparen"):
                start = self.index
                self.index = start  # (no-op; kept for clarity)
                terms = self._atom_terms()
                return Atom(token.value, tuple(terms))
            return Var(token.value)
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "number":
            return _parse_number(token.value)
        raise ParseError(
            f"expected atom or term, got {token.kind}", token.position, self.text
        )

    def _atom_terms(self) -> list[Term]:
        terms: list[Term] = []
        if self._accept("rparen"):
            return terms
        terms.append(self._term())
        while self._accept("comma"):
            terms.append(self._term())
        self._expect("rparen")
        return terms


def _unquote(literal: str) -> str:
    body = literal[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _parse_number(literal: str) -> Constant:
    if "." in literal:
        return float(literal)
    return int(literal)


def parse_query(text: str) -> Query:
    """Parse a single query from *text*.

    Raises :class:`ParseError` with offset information on malformed input.
    """
    return _Parser(text).parse()


def parse_queries(text: str) -> list[Query]:
    """Parse several newline/period-separated queries.

    Each query must end with a period; blank lines and ``%``-comments are
    ignored.
    """
    queries: list[Query] = []
    chunks: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        chunks.append(stripped)
        if stripped.endswith("."):
            queries.append(parse_query(" ".join(chunks)))
            chunks = []
    if chunks:
        queries.append(parse_query(" ".join(chunks)))
    return queries
