"""Query evaluation: assignments, answers, witnesses (Section 2).

The evaluator enumerates *valid assignments* — total mappings from
``Var(Q)`` to constants such that every relational atom maps to a fact of
the database and every inequality holds — by index-backed backtracking
join.  At every step it binds the atom with the most bound positions
(and, among those, the smallest relation), which keeps the search cheap
on the paper's laptop-scale databases.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Atom, Query, QueryError, Var

#: A (partial) assignment maps variables to constants.
Assignment = dict[Var, Constant]

#: An answer is the head instantiated by an assignment.
Answer = tuple[Constant, ...]

#: A witness is the set of facts in ``α(body(Q))`` (Section 2).
Witness = frozenset[Fact]


def atom_pattern(atom: Atom, assignment: Mapping[Var, Constant]) -> list[Optional[Constant]]:
    """The match pattern for *atom* under *assignment* (``None`` = unbound)."""
    pattern: list[Optional[Constant]] = []
    for term in atom.terms:
        if isinstance(term, Var):
            pattern.append(assignment.get(term))
        else:
            pattern.append(term)
    return pattern


def _bind_atom(
    atom: Atom, fact: Fact, assignment: Assignment
) -> Optional[list[Var]]:
    """Extend *assignment* in place so that *atom* maps to *fact*.

    Returns the list of newly bound variables, or ``None`` (with no
    mutation left behind) if the fact conflicts with existing bindings or
    with a repeated variable inside the atom.
    """
    new_vars: list[Var] = []
    for term, value in zip(atom.terms, fact.values):
        if isinstance(term, Var):
            bound = assignment.get(term)
            if bound is None:
                assignment[term] = value
                new_vars.append(term)
            elif bound != value:
                for var in new_vars:
                    del assignment[var]
                return None
        elif term != value:
            for var in new_vars:
                del assignment[var]
            return None
    return new_vars


def negated_match_exists(
    atom: Atom,
    assignment: Mapping[Var, Constant],
    database: Database,
    shared: Optional[set[Var]] = None,
) -> bool:
    """Whether any database fact matches a negated atom under
    *assignment* (local wildcards match anything, but a wildcard
    repeated inside the atom must take one consistent value)."""
    pattern: list[Optional[Constant]] = []
    local_positions: dict[Var, list[int]] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Var):
            value = assignment.get(term)
            if value is not None:
                pattern.append(value)
            else:
                pattern.append(None)
                local_positions.setdefault(term, []).append(position)
        else:
            pattern.append(term)
    for fact in database.match(atom.relation, pattern):
        consistent = all(
            len({fact.values[i] for i in positions}) == 1
            for positions in local_positions.values()
        )
        if consistent:
            return True
    return False


class Evaluator:
    """Evaluates one query against one database.

    The class is cheap to construct; it precomputes, per inequality, the
    set of variables it mentions so ground checks fire as soon as both
    sides are bound.
    """

    def __init__(self, query: Query, database: Database) -> None:
        query.validate(database.schema)
        self.query = query
        self.database = database

    # ------------------------------------------------------------------
    # assignment enumeration
    # ------------------------------------------------------------------
    def assignments(
        self, partial: Optional[Mapping[Var, Constant]] = None
    ) -> Iterator[Assignment]:
        """All valid (total) assignments extending *partial*.

        Yields fresh dict copies, so callers may retain them.
        """
        assignment: Assignment = dict(partial or {})
        for inequality in self.query.inequalities:
            if inequality.holds(assignment) is False:
                return
        if not self._negations_ok(assignment):
            return
        remaining = list(self.query.atoms)
        yield from self._search(assignment, remaining)

    def _search(self, assignment: Assignment, remaining: list[Atom]) -> Iterator[Assignment]:
        tel = _TELEMETRY
        if not remaining:
            if tel.enabled:
                tel.count("evaluator.assignments")
            yield dict(assignment)
            return
        index = self._pick_atom(assignment, remaining)
        atom = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        pattern = atom_pattern(atom, assignment)
        if tel.enabled:
            tel.count("evaluator.index_probes")
        for fact in self.database.match(atom.relation, pattern):
            if tel.enabled:
                tel.count("evaluator.backtrack_steps")
            new_vars = _bind_atom(atom, fact, assignment)
            if new_vars is None:
                continue
            if self._inequalities_ok(assignment, new_vars) and self._negations_ok(
                assignment, set(new_vars)
            ):
                yield from self._search(assignment, rest)
            for var in new_vars:
                del assignment[var]

    def _pick_atom(self, assignment: Assignment, remaining: list[Atom]) -> int:
        """Greedy join order: most bound positions, then smallest relation."""
        best_index = 0
        best_key: Optional[tuple[int, int]] = None
        for i, atom in enumerate(remaining):
            bound = sum(
                1
                for term in atom.terms
                if not isinstance(term, Var) or term in assignment
            )
            key = (-bound, self.database.size(atom.relation))
            if best_key is None or key < best_key:
                best_key = key
                best_index = i
        return best_index

    def _inequalities_ok(self, assignment: Assignment, new_vars: list[Var]) -> bool:
        """Check inequalities that the newly bound variables made ground."""
        fresh = set(new_vars)
        for inequality in self.query.inequalities:
            if fresh & inequality.variables():
                if inequality.holds(assignment) is False:
                    return False
        return True

    def _negations_ok(
        self, assignment: Assignment, fresh: Optional[set[Var]] = None
    ) -> bool:
        """Check negated atoms whose shared variables are bound (§9).

        A negated atom fails the assignment when *some* database fact
        matches it — variables local to the negated atom act as
        existential wildcards (``NOT EXISTS``).  With *fresh* given,
        only atoms touched by the newly bound variables are re-checked;
        with ``None`` every currently-checkable atom is (the initial
        sweep, covering constant-only atoms).
        """
        body_vars = self.query.body_variables()
        for atom in self.query.negated_atoms:
            shared = atom.variables() & body_vars
            if fresh is not None and shared and not (shared & fresh):
                continue
            if not shared <= set(assignment):
                continue  # shared vars not bound yet; checked later
            if negated_match_exists(atom, assignment, self.database, shared):
                return False
        return True

    # ------------------------------------------------------------------
    # derived notions
    # ------------------------------------------------------------------
    def answers(self) -> set[Answer]:
        """``Q(D)``: the set of head instantiations over valid assignments."""
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("evaluator.evaluations")
        results: set[Answer] = set()
        for assignment in self.assignments():
            results.add(instantiate_head(self.query, assignment))
        return results

    def is_satisfiable(self, partial: Mapping[Var, Constant]) -> bool:
        """Whether *partial* extends to a valid assignment w.r.t. D."""
        return next(self.assignments(partial), None) is not None

    def witnesses(self, answer: Answer) -> list[Witness]:
        """All distinct witnesses for *answer* (deduplicated fact sets).

        Distinct assignments that ground the body to the same fact set
        (e.g. symmetric role swaps) yield a single witness, matching the
        paper's Example 4.6.
        """
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("evaluator.witness_enumerations")
        partial = answer_to_partial(self.query, answer)
        if partial is None:
            return []
        seen: set[Witness] = set()
        ordered: list[Witness] = []
        for assignment in self.assignments(partial):
            witness = witness_of(self.query, assignment)
            if witness not in seen:
                seen.add(witness)
                ordered.append(witness)
        if tel.enabled:
            tel.observe("evaluator.witnesses_per_answer", len(ordered))
        return ordered


def instantiate_head(query: Query, assignment: Mapping[Var, Constant]) -> Answer:
    """``α(head(Q))``."""
    values: list[Constant] = []
    for term in query.head:
        if isinstance(term, Var):
            try:
                values.append(assignment[term])
            except KeyError:
                raise QueryError(f"assignment does not bind head variable {term}") from None
        else:
            values.append(term)
    return tuple(values)


def witness_of(query: Query, assignment: Mapping[Var, Constant]) -> Witness:
    """The facts of ``α(body(Q))`` for a total assignment α."""
    facts = []
    for atom in query.atoms:
        ground = atom.substitute(assignment)
        if not ground.is_ground():
            raise QueryError(f"assignment leaves atom {ground} non-ground")
        facts.append(Fact(ground.relation, tuple(ground.terms)))  # type: ignore[arg-type]
    return frozenset(facts)


def answer_to_partial(query: Query, answer: Answer) -> Optional[Assignment]:
    """The partial assignment induced by an answer tuple (Section 2).

    Maps head variables to the answer's constants.  Returns ``None`` when
    the answer cannot match the head (wrong length, conflicting constant,
    or inconsistent repeat of a head variable).
    """
    if len(answer) != len(query.head):
        return None
    partial: Assignment = {}
    for term, value in zip(query.head, answer):
        if isinstance(term, Var):
            bound = partial.get(term)
            if bound is None:
                partial[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return partial


def evaluate(query: Query, database: Database) -> set[Answer]:
    """``Q(D)`` — convenience wrapper over :class:`Evaluator`."""
    return Evaluator(query, database).answers()


def valid_assignments(
    query: Query,
    database: Database,
    partial: Optional[Mapping[Var, Constant]] = None,
) -> Iterator[Assignment]:
    """``A(Q, D)`` restricted to extensions of *partial* (if given)."""
    return Evaluator(query, database).assignments(partial)


def witnesses_for(query: Query, database: Database, answer: Answer) -> list[Witness]:
    """``wit(A(t, Q, D))``: all witnesses for *answer*."""
    return Evaluator(query, database).witnesses(answer)


def is_satisfiable(
    query: Query, database: Database, partial: Mapping[Var, Constant]
) -> bool:
    """Whether a partial assignment is satisfiable w.r.t. *database*."""
    return Evaluator(query, database).is_satisfiable(partial)


def naive_evaluate(query: Query, database: Database) -> set[Answer]:
    """Reference semantics: enumerate the full cross product.

    Exponentially slower than :func:`evaluate`; exists as an oracle for
    property-based tests on small instances.
    """
    results: set[Answer] = set()
    atoms = list(query.atoms)
    # One snapshot per *distinct* relation up front; ``Database.facts``
    # allocates a fresh frozenset per call, which the innermost recursion
    # would otherwise pay at every node of the cross-product tree — and a
    # self-join must not pay it once per atom occurrence either.
    snapshots: dict[str, tuple[Fact, ...]] = {}
    for atom in atoms:
        if atom.relation not in snapshots:
            snapshots[atom.relation] = tuple(database.facts(atom.relation))

    def recurse(index: int, assignment: Assignment) -> None:
        if index == len(atoms):
            if not all(e.holds(assignment) for e in query.inequalities):
                return
            for negated in query.negated_atoms:
                if negated_match_exists(negated, assignment, database):
                    return
            results.add(instantiate_head(query, assignment))
            return
        atom = atoms[index]
        for fact in snapshots[atom.relation]:
            new_vars = _bind_atom(atom, fact, assignment)
            if new_vars is None:
                continue
            recurse(index + 1, assignment)
            for var in new_vars:
                del assignment[var]

    recurse(0, {})
    return results
