"""Conjunctive-query containment and minimization (Chandra–Merlin).

Redundant body atoms inflate everything QOCO touches: witnesses carry
extra facts, the deletion algorithm sees bigger hitting-set instances,
and the insertion algorithm embeds larger ``Q|t`` bodies.  Minimizing
the view definition first is therefore a free question-count
optimization.

Classic theory, implemented directly:

* ``Q1 ⊑ Q2`` iff there is a homomorphism from ``Q2`` to ``Q1`` mapping
  head to head (checked by evaluating ``Q2`` over ``Q1``'s canonical
  (frozen) database);
* the *core* of a query — the minimal equivalent subquery — is found by
  repeatedly dropping an atom and checking equivalence.

Inequalities are handled conservatively: they are carried along, and
containment additionally requires the inequality sets to be implied
syntactically (sound, not complete — fine for an optimizer, which may
only ever *keep* a query it cannot prove redundant).
"""

from __future__ import annotations

from typing import Optional

from ..db.database import Database
from ..db.schema import RelationSchema, Schema
from ..db.tuples import Fact
from .ast import Atom, Inequality, Query, Var
from .evaluator import Evaluator


def _freeze_term(term) -> str:
    """Map a term of the canonical database: variables become fresh
    constants tagged so they cannot collide with real constants."""
    if isinstance(term, Var):
        return f"§var:{term.name}"
    return f"§const:{term!r}"


def canonical_database(query: Query) -> tuple[Database, tuple]:
    """The frozen body of *query* as a database, plus its frozen head."""
    relations: dict[str, int] = {}
    for atom in query.atoms:
        relations.setdefault(atom.relation, atom.arity)
    schema = Schema(
        [
            RelationSchema(name, tuple(f"c{i}" for i in range(arity)))
            for name, arity in relations.items()
        ]
    )
    database = Database(schema)
    for atom in query.atoms:
        database.insert(Fact(atom.relation, tuple(_freeze_term(t) for t in atom.terms)))
    frozen_head = tuple(_freeze_term(t) for t in query.head)
    return database, frozen_head


def _freeze_constants(query: Query) -> Query:
    """Rewrite *query* so its constants use the canonical-database
    encoding; homomorphism search then compares like with like."""

    def freeze(term):
        return term if isinstance(term, Var) else _freeze_term(term)

    return Query(
        head=tuple(freeze(t) for t in query.head),
        atoms=tuple(
            Atom(a.relation, tuple(freeze(t) for t in a.terms)) for a in query.atoms
        ),
        inequalities=tuple(
            Inequality(freeze(e.left), freeze(e.right)) for e in query.inequalities
        ),
        name=query.name,
    )


def _inequalities_implied(candidate: Query, query: Query) -> bool:
    """Conservative check: every inequality of *candidate* appears in
    *query* (as a set, orientation-insensitive).

    Needed for soundness: the canonical database treats *query*'s
    inequalities as satisfied (distinct frozen constants), so any extra
    inequality *candidate* demands must be guaranteed by *query* itself.
    """
    def normal(inequality: Inequality):
        return frozenset((repr(inequality.left), repr(inequality.right)))

    have = {normal(e) for e in query.inequalities}
    return all(normal(e) in have for e in candidate.inequalities)


def is_contained_in(query: Query, other: Query) -> bool:
    """Whether ``query ⊑ other`` (every answer of *query* is one of
    *other*, on all databases).  Sound; conservative on inequalities
    (may return ``False`` where deeper reasoning would say ``True``)."""
    if len(query.head) != len(other.head):
        return False
    if query.negated_atoms or other.negated_atoms:
        # negation breaks the Chandra-Merlin argument; stay conservative
        return False
    if not _inequalities_implied(other, query):
        return False
    database, frozen_head = canonical_database(query)
    target = _freeze_constants(other)
    for atom in target.atoms:
        if atom.relation not in database.schema:
            return False
        if atom.arity != database.schema.arity(atom.relation):
            return False
    # Inequalities of `target` are evaluated over the frozen constants:
    # two terms differ exactly when the homomorphism separates them.
    return frozen_head in Evaluator(target, database).answers()


def are_equivalent(query: Query, other: Query) -> bool:
    """Mutual containment."""
    return is_contained_in(query, other) and is_contained_in(other, query)


def _subquery_keeping(query: Query, kept: tuple[int, ...]) -> Optional[Query]:
    """The query restricted to the kept atom indices, or ``None`` when
    the restriction is unsafe (drops a head/inequality variable)."""
    atoms = tuple(query.atoms[i] for i in kept)
    kept_vars = set().union(*(a.variables() for a in atoms)) if atoms else set()
    for term in query.head:
        if isinstance(term, Var) and term not in kept_vars:
            return None
    for inequality in query.inequalities:
        if not inequality.variables() <= kept_vars:
            return None
    for negated in query.negated_atoms:
        if not negated.variables() <= kept_vars:
            return None
    return Query(
        head=query.head,
        atoms=atoms,
        inequalities=query.inequalities,
        name=query.name,
        negated_atoms=query.negated_atoms,
    )


def minimize(query: Query) -> Query:
    """The core of *query*: a minimal equivalent subquery.

    Greedy atom removal; for CQs (no negation) the result is the unique
    core up to isomorphism.  Queries with negation are returned as-is
    (containment is undecidable-in-general there; see module docstring).
    """
    if query.negated_atoms:
        return query
    current = query
    changed = True
    while changed and len(current.atoms) > 1:
        changed = False
        for drop in range(len(current.atoms)):
            kept = tuple(i for i in range(len(current.atoms)) if i != drop)
            candidate = _subquery_keeping(current, kept)
            if candidate is None:
                continue
            if are_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current
