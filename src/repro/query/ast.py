"""Abstract syntax for conjunctive queries with inequalities (Section 2).

A query has the form::

    Ans(u0) :- R1(u1), ..., Rn(un), E1, ..., Em

where each ``u_i`` is a vector of variables and constants, and each ``E_j``
is an inequality ``l != r`` between a variable and a variable-or-constant.
Every head term must occur in some body atom (safety).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..db.schema import Schema, SchemaError
from ..db.tuples import Constant


@dataclass(frozen=True, order=True)
class Var:
    """A query variable (compared by name)."""

    name: str

    def __str__(self) -> str:
        return self.name


#: A term is a variable or a constant.
Term = Var | Constant


def is_var(term: Term) -> bool:
    return isinstance(term, Var)


def term_str(term: Term) -> str:
    """Render a term: variables bare, string constants quoted."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, str):
        return f'"{term}"'
    return str(term)


class QueryError(ValueError):
    """Raised for malformed queries (unsafe head, bad arity, ...)."""


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(l1, ..., lk)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Var]:
        return {t for t in self.terms if isinstance(t, Var)}

    def constants(self) -> set[Constant]:
        return {t for t in self.terms if not isinstance(t, Var)}

    def is_ground(self) -> bool:
        return not any(isinstance(t, Var) for t in self.terms)

    def substitute(self, assignment: Mapping[Var, Constant]) -> "Atom":
        """Replace every assigned variable with its constant."""
        terms = tuple(
            assignment.get(t, t) if isinstance(t, Var) else t for t in self.terms
        )
        return Atom(self.relation, terms)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(term_str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Inequality:
    """An inequality ``left != right``.

    The paper requires ``left`` to be a variable; after embedding an answer
    into the query (``Q|t``, Section 5) either side may become a constant,
    so we allow arbitrary terms and evaluate once both are ground.
    """

    left: Term
    right: Term

    def variables(self) -> set[Var]:
        return {t for t in (self.left, self.right) if isinstance(t, Var)}

    def is_ground(self) -> bool:
        return not self.variables()

    def holds(self, assignment: Mapping[Var, Constant]) -> Optional[bool]:
        """Truth value under *assignment*, or ``None`` if not yet decided."""
        left = assignment.get(self.left, self.left) if isinstance(self.left, Var) else self.left
        right = (
            assignment.get(self.right, self.right)
            if isinstance(self.right, Var)
            else self.right
        )
        if isinstance(left, Var) or isinstance(right, Var):
            return None
        return left != right

    def substitute(self, assignment: Mapping[Var, Constant]) -> "Inequality":
        left = assignment.get(self.left, self.left) if isinstance(self.left, Var) else self.left
        right = (
            assignment.get(self.right, self.right)
            if isinstance(self.right, Var)
            else self.right
        )
        return Inequality(left, right)

    def __str__(self) -> str:
        return f"{term_str(self.left)} != {term_str(self.right)}"


@dataclass(frozen=True)
class Query:
    """A conjunctive query with inequalities.

    Attributes
    ----------
    head:
        The terms of ``head(Q)`` — the answer template.
    atoms:
        The relational atoms of ``body(Q)``.
    inequalities:
        The inequality atoms of ``body(Q)``.
    name:
        Optional label used in printing and experiment reports.
    negated_atoms:
        Safely negated atoms (``not R(ū)``, §9 extension).  Variables
        shared with positive atoms are bound by them; variables local to
        a negated atom are existential wildcards under the negation
        (``NOT EXISTS`` semantics: no matching fact with *any* value).
        A local wildcard may not occur in any other negated atom.
    """

    head: tuple[Term, ...]
    atoms: tuple[Atom, ...]
    inequalities: tuple[Inequality, ...] = ()
    name: str = "ans"
    negated_atoms: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.inequalities, tuple):
            object.__setattr__(self, "inequalities", tuple(self.inequalities))
        if not isinstance(self.negated_atoms, tuple):
            object.__setattr__(self, "negated_atoms", tuple(self.negated_atoms))
        if not self.atoms:
            raise QueryError("query body must contain at least one relational atom")
        body_vars = self.body_variables()
        for term in self.head:
            if isinstance(term, Var) and term not in body_vars:
                raise QueryError(f"unsafe head variable {term}")
        for ineq in self.inequalities:
            for term in (ineq.left, ineq.right):
                if isinstance(term, Var) and term not in body_vars:
                    raise QueryError(f"inequality variable {term} not in any atom")
        seen_local: set[Var] = set()
        for atom in self.negated_atoms:
            local = atom.variables() - body_vars
            clash = local & seen_local
            if clash:
                raise QueryError(
                    f"negated atom {atom} reuses local wildcard(s) "
                    f"{sorted(map(str, clash))} from another negated atom"
                )
            seen_local |= local

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def head_variables(self) -> tuple[Var, ...]:
        return tuple(t for t in self.head if isinstance(t, Var))

    def body_variables(self) -> set[Var]:
        return set().union(*(a.variables() for a in self.atoms))

    def variables(self) -> set[Var]:
        """``Var(Q)``: all variables of the body (head vars are a subset)."""
        return self.body_variables()

    def constants(self) -> set[Constant]:
        """``Const(Q)``: constants of body atoms and inequalities."""
        consts: set[Constant] = set().union(*(a.constants() for a in self.atoms))
        for ineq in self.inequalities:
            for term in (ineq.left, ineq.right):
                if not isinstance(term, Var):
                    consts.add(term)
        return consts

    @property
    def body_size(self) -> int:
        return len(self.atoms)

    def validate(self, schema: Schema) -> None:
        """Check every atom against *schema* (relation exists, arity fits)."""
        for atom in self.atoms + self.negated_atoms:
            if atom.relation not in schema:
                raise SchemaError(f"query uses unknown relation {atom.relation!r}")
            expected = schema.arity(atom.relation)
            if atom.arity != expected:
                raise SchemaError(
                    f"atom {atom} has arity {atom.arity}, "
                    f"relation {atom.relation!r} expects {expected}"
                )

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def substitute(self, assignment: Mapping[Var, Constant]) -> "Query":
        """Apply *assignment* to head and body (used to build ``Q|t``)."""
        return Query(
            head=tuple(
                assignment.get(t, t) if isinstance(t, Var) else t for t in self.head
            ),
            atoms=tuple(a.substitute(assignment) for a in self.atoms),
            inequalities=tuple(e.substitute(assignment) for e in self.inequalities),
            name=self.name,
            negated_atoms=tuple(a.substitute(assignment) for a in self.negated_atoms),
        )

    def with_name(self, name: str) -> "Query":
        return Query(self.head, self.atoms, self.inequalities, name, self.negated_atoms)

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(term_str(t) for t in self.head)})"
        parts = (
            [str(a) for a in self.atoms]
            + [f"not {a}" for a in self.negated_atoms]
            + [str(e) for e in self.inequalities]
        )
        return f"{head} :- {', '.join(parts)}."


def make_query(
    head: Sequence[Term],
    atoms: Iterable[Atom],
    inequalities: Iterable[Inequality] = (),
    name: str = "ans",
) -> Query:
    """Convenience constructor mirroring the dataclass with sequence args."""
    return Query(tuple(head), tuple(atoms), tuple(inequalities), name)
