"""Unions of conjunctive queries with inequalities (UCQs).

Section 2: "Our results in this paper extend to unions of conjunctive
queries with inequalities.  However, for simplicity, we will only
describe our results for conjunctive queries..."  This module supplies
the extension: a :class:`UnionQuery` is a finite set of CQ *disjuncts*
sharing a head arity; an answer is produced by any disjunct, and a
witness of an answer is a witness under any disjunct.

The cleaning semantics follow directly:

* a **wrong** answer must lose all its witnesses across *every*
  disjunct (its witness system is the union of the per-disjunct ones);
* a **missing** answer needs a witness under *some* disjunct — the
  algorithms pick which one with a single closed question per disjunct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..db.database import Database
from ..db.schema import Schema
from .ast import Query, QueryError
from .evaluator import Answer, Evaluator, Witness


@dataclass(frozen=True)
class UnionQuery:
    """A union of conjunctive queries with a shared head arity."""

    disjuncts: tuple[Query, ...]
    name: str = "union"

    def __post_init__(self) -> None:
        if not isinstance(self.disjuncts, tuple):
            object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise QueryError("a union query needs at least one disjunct")
        arities = {len(q.head) for q in self.disjuncts}
        if len(arities) != 1:
            raise QueryError(f"disjuncts have mismatched head arities {arities}")

    @property
    def arity(self) -> int:
        return len(self.disjuncts[0].head)

    def validate(self, schema: Schema) -> None:
        for disjunct in self.disjuncts:
            disjunct.validate(schema)

    def answers(self, database: Database) -> set[Answer]:
        """``Q(D)`` — the union of the disjuncts' results."""
        result: set[Answer] = set()
        for disjunct in self.disjuncts:
            result |= Evaluator(disjunct, database).answers()
        return result

    def witnesses(self, database: Database, answer: Answer) -> list[Witness]:
        """All witnesses of *answer* across disjuncts (deduplicated)."""
        seen: set[Witness] = set()
        ordered: list[Witness] = []
        for disjunct in self.disjuncts:
            for witness in Evaluator(disjunct, database).witnesses(answer):
                if witness not in seen:
                    seen.add(witness)
                    ordered.append(witness)
        return ordered

    def producing_disjuncts(self, database: Database, answer: Answer) -> list[Query]:
        """Disjuncts under which *answer* currently has a witness."""
        return [
            disjunct
            for disjunct in self.disjuncts
            if Evaluator(disjunct, database).witnesses(answer)
        ]

    def __str__(self) -> str:
        return "\n".join(str(q.with_name(self.name)) for q in self.disjuncts)


def make_union(disjuncts: Iterable[Query], name: str = "union") -> UnionQuery:
    """Convenience constructor accepting any iterable of disjuncts."""
    return UnionQuery(tuple(disjuncts), name)


def union_from_queries(queries: Sequence[Query]) -> UnionQuery:
    """Group parsed rules into one UCQ (rules share the head name)."""
    if not queries:
        raise QueryError("no rules to union")
    names = {q.name for q in queries}
    if len(names) != 1:
        raise QueryError(f"rules define different predicates: {sorted(names)}")
    return UnionQuery(tuple(queries), queries[0].name)


def evaluate_union(union: UnionQuery, database: Database) -> set[Answer]:
    """``Q(D)`` for a UCQ — mirror of :func:`repro.query.evaluate`."""
    return union.answers(database)


def parse_union(text: str) -> UnionQuery:
    """Parse several rules with the same head predicate into one UCQ::

        q(x) :- games(d, x, y, "Final", r).
        q(x) :- games(d, y, x, "Final", r).
    """
    from .parser import parse_queries

    return union_from_queries(parse_queries(text))
