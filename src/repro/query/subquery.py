"""Answer embedding ``Q|t`` and subqueries (Section 5, Definition 5.3).

``Q|t`` is the query whose body is ``t(body(Q))`` (the body with the
answer's head bindings substituted in) and whose head contains **all**
variables of that body — no projection, so every valid assignment for a
subquery directly names the facts it used.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..db.tuples import Fact
from .ast import Query, QueryError, Var
from .evaluator import Answer, answer_to_partial


def embed_answer(query: Query, answer: Answer) -> Query:
    """Build ``Q|t`` for a (missing) answer *t*.

    Raises :class:`QueryError` if the answer cannot match the query head
    (e.g. a head constant differs).
    """
    partial = answer_to_partial(query, answer)
    if partial is None:
        raise QueryError(f"answer {answer!r} does not match head of {query.name}")
    substituted = query.substitute(partial)
    head_vars = sorted(
        set().union(*(a.variables() for a in substituted.atoms)), key=lambda v: v.name
    )
    return Query(
        head=tuple(head_vars),
        atoms=substituted.atoms,
        inequalities=substituted.inequalities,
        name=f"{query.name}|{','.join(str(v) for v in answer)}",
        negated_atoms=substituted.negated_atoms,
    )


def subquery(query: Query, atom_indices: Sequence[int]) -> Query:
    """The subquery of *query* over the given body-atom positions.

    Per Definition 5.3 the subquery keeps a subset of relational atoms;
    we keep exactly those inequalities whose variables all occur in the
    kept atoms (others would be unsafe).  The head lists every variable
    of the kept atoms (no projection).
    """
    indices = sorted(set(atom_indices))
    if not indices:
        raise QueryError("subquery needs at least one atom")
    if indices[0] < 0 or indices[-1] >= len(query.atoms):
        raise QueryError(f"atom indices {indices} out of range for {query.name}")
    atoms = tuple(query.atoms[i] for i in indices)
    kept_vars = set().union(*(a.variables() for a in atoms))
    inequalities = tuple(
        e for e in query.inequalities if e.variables() <= kept_vars
    )
    negated = tuple(
        a for a in query.negated_atoms if a.variables() <= kept_vars
    )
    head_vars = sorted(kept_vars, key=lambda v: v.name)
    return Query(
        head=tuple(head_vars),
        atoms=atoms,
        inequalities=inequalities,
        name=f"{query.name}[{','.join(map(str, indices))}]",
        negated_atoms=negated,
    )


def is_subquery(candidate: Query, query: Query) -> bool:
    """Definition 5.3: ``candidate ≤ query`` (atoms and inequalities subsets)."""
    atoms = set(query.atoms)
    inequalities = set(query.inequalities)
    return set(candidate.atoms) <= atoms and set(candidate.inequalities) <= inequalities


def split_by_partition(query: Query, left_indices: Iterable[int]) -> tuple[Query, Query]:
    """Split *query* into two subqueries along an atom partition.

    ``left_indices`` selects the first subquery's atoms; the complement
    forms the second.  Both sides must be non-empty.
    """
    left = sorted(set(left_indices))
    right = [i for i in range(len(query.atoms)) if i not in set(left)]
    if not left or not right:
        raise QueryError("split must leave both sides non-empty")
    return subquery(query, left), subquery(query, right)


def ground_atoms(query: Query) -> list[Fact]:
    """Facts for the body atoms that contain only constants.

    Algorithm 2, line 1: for a missing answer ``t ∈ Q(D_G)``, every ground
    atom of ``Q|t`` must hold in the ground truth, so it can be inserted
    without consulting the crowd.
    """
    facts = []
    for atom in query.atoms:
        if atom.is_ground():
            facts.append(Fact(atom.relation, tuple(atom.terms)))  # type: ignore[arg-type]
    return facts


def unique_variables(query: Query) -> set[Var]:
    """``Var(Q)`` — the unit of the paper's open-question accounting."""
    return query.body_variables()
