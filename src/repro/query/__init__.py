"""Conjunctive queries with inequalities: AST, parser, evaluation."""

from .ast import Atom, Inequality, Query, QueryError, Term, Var, make_query
from .evaluator import (
    Answer,
    Assignment,
    Evaluator,
    Witness,
    answer_to_partial,
    evaluate,
    instantiate_head,
    is_satisfiable,
    naive_evaluate,
    valid_assignments,
    witness_of,
    witnesses_for,
)
from .graph import QueryGraph, build_query_graph
from .incremental import (
    IncrementalAnswers,
    assignments_using_fact,
    supports_incremental,
)
from .minimize import are_equivalent, is_contained_in, minimize
from .parser import ParseError, parse_queries, parse_query
from .planner import (
    PlannedEvaluator,
    StaleStatisticsError,
    Statistics,
    explain,
    plan_order,
)
from .union import (
    UnionQuery,
    evaluate_union,
    make_union,
    parse_union,
    union_from_queries,
)
from .subquery import (
    embed_answer,
    ground_atoms,
    is_subquery,
    split_by_partition,
    subquery,
    unique_variables,
)

__all__ = [
    "Answer",
    "Assignment",
    "Atom",
    "Evaluator",
    "IncrementalAnswers",
    "Inequality",
    "ParseError",
    "PlannedEvaluator",
    "Query",
    "QueryError",
    "QueryGraph",
    "StaleStatisticsError",
    "Statistics",
    "Term",
    "UnionQuery",
    "Var",
    "Witness",
    "answer_to_partial",
    "are_equivalent",
    "assignments_using_fact",
    "supports_incremental",
    "build_query_graph",
    "is_contained_in",
    "minimize",
    "embed_answer",
    "evaluate",
    "evaluate_union",
    "explain",
    "ground_atoms",
    "plan_order",
    "make_union",
    "parse_union",
    "union_from_queries",
    "instantiate_head",
    "is_satisfiable",
    "is_subquery",
    "make_query",
    "naive_evaluate",
    "parse_queries",
    "parse_query",
    "split_by_partition",
    "subquery",
    "unique_variables",
    "valid_assignments",
    "witness_of",
    "witnesses_for",
]
