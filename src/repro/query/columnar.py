"""Vectorized columnar evaluation: numpy hash joins over column arrays.

The reference :class:`~repro.query.evaluator.Evaluator` walks the join
tree one tuple at a time; this backend evaluates the whole query as a
sequence of *vectorized* relational operations instead:

1. **Dictionary encoding.**  Every constant is interned to an ``int64``
   code (one append-only dictionary per database), and every relation
   becomes a set of aligned code columns plus a row-aligned
   ``list[Fact]`` for decoding witnesses.  Columns are cached per
   relation and rebuilt only when that relation's
   :meth:`~repro.db.database.Database.relation_version` moves, so a
   cleaning session's point edits re-encode one relation, not ``D``.

2. **Hash-join expansion.**  Atoms are joined greedily (most already
   bound variables first, then smallest relation — the same heuristic
   as the backtracking engine).  Each step filters the relation's rows
   by constants / repeated variables, then equi-joins on the shared
   variables via sort + ``searchsorted`` range expansion.  The running
   state is a *binding table*: one code column per bound variable plus
   one row-index column per processed atom (the provenance needed for
   witnesses).

3. **Predicate masks.**  Inequalities become boolean masks as soon as
   both sides are bound; each negated atom becomes a semi-join
   *reduction* at the end — binding rows whose shared-variable key
   matches any consistent fact of the negated relation are eliminated
   (``NOT EXISTS`` with local wildcards), mirroring
   :func:`~repro.query.evaluator.negated_match_exists` exactly.

The final binding table rows are in bijection with the valid
assignments, so answers, support counts and witness multisets fall out
of column projections — answers and support stay fully vectorized
(``np.unique`` over the head projection); witnesses decode rows through
the fact lists.  Conformance with the reference engine is
property-tested in ``tests/test_backend_conformance.py``.
"""

from __future__ import annotations

import weakref
from collections import Counter
from typing import Iterator, Mapping, Optional

import numpy as np

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Atom, Query, Var
from .backend import Capabilities, EvalBackend, EvalResult
from .evaluator import Answer, Assignment, instantiate_head

_INT64_GUARD = 2**62


def _group_keys(
    left_cols: list[np.ndarray], right_cols: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Composite join keys for two column lists, in one shared key space.

    Folds the columns pairwise into dense group ids (``np.unique``
    re-normalizes after every fold, so values stay bounded by the row
    count and the ``int64`` mix cannot overflow at any realistic scale;
    a guard falls back to lexicographic ``np.unique(axis=0)`` if it
    ever would).
    """
    n_left = left_cols[0].shape[0]
    total = n_left + right_cols[0].shape[0]
    keys = np.zeros(total, dtype=np.int64)
    if total == 0:
        return keys[:n_left], keys[n_left:]
    for lc, rc in zip(left_cols, right_cols):
        col = np.concatenate([lc, rc])
        radix = int(col.max()) + 1
        if (int(keys.max()) + 1) * radix >= _INT64_GUARD:  # pragma: no cover
            stacked = np.stack([keys, col], axis=1)
            _, keys = np.unique(stacked, axis=0, return_inverse=True)
            keys = keys.astype(np.int64)
            continue
        mixed = keys * radix + col
        _, keys = np.unique(mixed, return_inverse=True)
        keys = keys.astype(np.int64)
    return keys[:n_left], keys[n_left:]


def _equi_join(
    left_cols: list[np.ndarray], right_cols: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """All (left row, right row) index pairs with equal composite keys."""
    lk, rk = _group_keys(left_cols, right_cols)
    order = np.argsort(rk, kind="stable")
    rk_sorted = rk[order]
    lo = np.searchsorted(rk_sorted, lk, side="left")
    hi = np.searchsorted(rk_sorted, lk, side="right")
    counts = hi - lo
    left_idx = np.repeat(np.arange(lk.shape[0]), counts)
    total = int(counts.sum())
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + offsets]
    return left_idx, right_idx


def _semi_mask(
    left_cols: list[np.ndarray], right_cols: list[np.ndarray]
) -> np.ndarray:
    """Boolean mask of left rows whose key appears among the right rows."""
    lk, rk = _group_keys(left_cols, right_cols)
    return np.isin(lk, rk)


class _RelationColumns:
    """One relation's encoded columns, stamped with its version."""

    __slots__ = ("version", "columns", "facts")

    def __init__(self, version: int, columns: list[np.ndarray], facts: list[Fact]):
        self.version = version
        self.columns = columns
        self.facts = facts


class _Store:
    """Per-database columnar state: the dictionary and relation caches."""

    def __init__(self) -> None:
        self.codes: dict[Constant, int] = {}
        self.constants: list[Constant] = []
        self.relations: dict[str, _RelationColumns] = {}

    def encode(self, value: Constant) -> int:
        code = self.codes.get(value)
        if code is None:
            code = len(self.constants)
            self.codes[value] = code
            self.constants.append(value)
        return code

    def relation(self, database: Database, name: str) -> _RelationColumns:
        cached = self.relations.get(name)
        version = database.relation_version(name)
        if cached is not None and cached.version == version:
            return cached
        facts = list(database.facts(name))
        arity = database.schema.arity(name)
        columns = [np.empty(len(facts), dtype=np.int64) for _ in range(arity)]
        encode = self.encode
        for row, f in enumerate(facts):
            for position, value in enumerate(f.values):
                columns[position][row] = encode(value)
        self.relations[name] = built = _RelationColumns(version, columns, facts)
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("backend.columnar.builds")
            tel.count("backend.columnar.rows_encoded", len(facts))
        return built


class _BindingTable:
    """The running join state: variable code columns + atom provenance."""

    def __init__(self, n_atoms: int) -> None:
        self.vars: dict[Var, np.ndarray] = {}
        self.atom_rows: list[Optional[np.ndarray]] = [None] * n_atoms
        self.size = -1  # -1: the unit table (no atom joined yet)

    def reindex(self, idx: np.ndarray) -> None:
        self.vars = {v: col[idx] for v, col in self.vars.items()}
        self.atom_rows = [
            col[idx] if col is not None else None for col in self.atom_rows
        ]
        self.size = idx.shape[0]

    def mask(self, keep: np.ndarray) -> None:
        if keep.all():
            return
        self.reindex(np.nonzero(keep)[0])


class ColumnarBackend(EvalBackend):
    """Numpy columnar hash-join evaluation (see the module docstring)."""

    name = "columnar"
    capabilities = Capabilities(negation=True, inequalities=True)

    def __init__(self) -> None:
        #: id(database) -> (weakref, store); entries die with the database.
        self._stores: dict[int, tuple[weakref.ref, _Store]] = {}

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def _store(self, database: Database) -> _Store:
        key = id(database)
        entry = self._stores.get(key)
        if entry is not None and entry[0]() is database:
            return entry[1]
        for stale, (ref, _) in list(self._stores.items()):
            if ref() is None:
                del self._stores[stale]
        store = _Store()
        self._stores[key] = (weakref.ref(database), store)
        return store

    # ------------------------------------------------------------------
    # the join
    # ------------------------------------------------------------------
    def _join(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Optional[_BindingTable]:
        """The binding table of all valid assignments extending *partial*
        (``None`` when a ground predicate already fails)."""
        query.validate(database.schema)
        store = self._store(database)
        partial = dict(partial or {})
        partial_codes = {v: store.encode(c) for v, c in partial.items()}

        table = _BindingTable(len(query.atoms))
        pending_ineqs = list(query.inequalities)

        def bound_vars() -> set[Var]:
            return set(table.vars) | set(partial_codes)

        def side_column(term) -> Optional[np.ndarray]:
            """A term as a code column over the current table (None if
            the term is a constant — handled by the caller)."""
            if isinstance(term, Var):
                col = table.vars.get(term)
                if col is not None:
                    return col
                return np.full(max(table.size, 0), partial_codes[term], dtype=np.int64)
            return None

        def apply_ready_inequalities() -> bool:
            nonlocal pending_ineqs
            still: list = []
            for ineq in pending_ineqs:
                known = bound_vars()
                if any(isinstance(t, Var) and t not in known for t in (ineq.left, ineq.right)):
                    still.append(ineq)
                    continue
                if ineq.is_ground() or not (ineq.variables() & set(table.vars)):
                    # both sides constants (possibly via partial): one check
                    value = ineq.substitute(partial).holds({})
                    if value is False:
                        return False
                    continue
                left = side_column(ineq.left)
                right = side_column(ineq.right)
                if left is None:
                    left = np.full(table.size, store.encode(ineq.left), dtype=np.int64)
                if right is None:
                    right = np.full(table.size, store.encode(ineq.right), dtype=np.int64)
                table.mask(left != right)
            pending_ineqs = still
            return True

        # ground predicates that involve no table columns yet
        if not apply_ready_inequalities():
            return None

        remaining = list(range(len(query.atoms)))
        while remaining:
            known = bound_vars()
            best = min(
                remaining,
                key=lambda i: (
                    -sum(
                        1
                        for t in query.atoms[i].terms
                        if not isinstance(t, Var) or t in known
                    ),
                    database.size(query.atoms[i].relation),
                ),
            )
            remaining.remove(best)
            atom = query.atoms[best]
            relation = store.relation(database, atom.relation)
            cols = relation.columns
            n_rel = len(relation.facts)
            keep = np.ones(n_rel, dtype=bool)
            first_pos: dict[Var, int] = {}
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Var):
                    keep &= cols[position] == store.encode(term)
                elif term in first_pos:
                    keep &= cols[position] == cols[first_pos[term]]
                else:
                    first_pos[term] = position
                    if term not in table.vars and term in partial_codes:
                        keep &= cols[position] == partial_codes[term]
            candidates = np.nonzero(keep)[0]

            shared = [v for v in first_pos if v in table.vars]
            if table.size < 0:
                # first atom: the binding table *is* the selection
                table.size = candidates.shape[0]
                table.atom_rows[best] = candidates
                for v, position in first_pos.items():
                    table.vars[v] = cols[position][candidates]
            elif shared:
                left_idx, right_idx = _equi_join(
                    [table.vars[v] for v in shared],
                    [cols[first_pos[v]][candidates] for v in shared],
                )
                table.reindex(left_idx)
                rows = candidates[right_idx]
                table.atom_rows[best] = rows
                for v, position in first_pos.items():
                    if v not in shared:
                        table.vars[v] = cols[position][rows]
            else:
                # no shared variables: cartesian expansion
                left_idx = np.repeat(np.arange(table.size), candidates.shape[0])
                rows = np.tile(candidates, table.size)
                table.reindex(left_idx)
                table.atom_rows[best] = rows
                for v, position in first_pos.items():
                    table.vars[v] = cols[position][rows]
            if not apply_ready_inequalities():
                return None
            if table.size == 0:
                break

        if table.size < 0:  # pragma: no cover - queries always have atoms
            table.size = 0
        if table.size and query.negated_atoms:
            self._apply_negations(query, database, store, table, partial_codes)
        return table

    def _apply_negations(
        self,
        query: Query,
        database: Database,
        store: _Store,
        table: _BindingTable,
        partial_codes: dict[Var, int],
    ) -> None:
        """Anti-join each negated atom against the binding table."""
        bound = set(table.vars) | set(partial_codes)
        for atom in query.negated_atoms:
            relation = store.relation(database, atom.relation)
            cols = relation.columns
            n_rel = len(relation.facts)
            keep = np.ones(n_rel, dtype=bool)
            shared_first: dict[Var, int] = {}
            local_first: dict[Var, int] = {}
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Var):
                    keep &= cols[position] == store.encode(term)
                    continue
                first = shared_first if term in bound else local_first
                if term in first:
                    keep &= cols[position] == cols[first[term]]
                else:
                    first[term] = position
            candidates = np.nonzero(keep)[0]
            if not shared_first:
                if candidates.shape[0]:
                    table.reindex(np.empty(0, dtype=np.int64))
                continue
            if candidates.shape[0] == 0:
                continue
            shared = list(shared_first)
            left_cols = []
            for v in shared:
                col = table.vars.get(v)
                if col is None:
                    col = np.full(table.size, partial_codes[v], dtype=np.int64)
                left_cols.append(col)
            right_cols = [cols[shared_first[v]][candidates] for v in shared]
            table.mask(~_semi_mask(left_cols, right_cols))
            if table.size == 0:
                return

    # ------------------------------------------------------------------
    # the backend surface
    # ------------------------------------------------------------------
    def _decode_head(
        self,
        query: Query,
        store: _Store,
        table: _BindingTable,
        partial_codes: Mapping[Var, int],
    ) -> np.ndarray:
        """The head projection as an (n_rows, len(head)) code matrix.

        A boolean query (empty head — e.g. a denial-constraint check)
        projects to a zero-width matrix: every surviving row decodes to
        the empty answer ``()``.
        """
        if not query.head:
            return np.empty((table.size, 0), dtype=np.int64)
        columns = []
        for term in query.head:
            if isinstance(term, Var):
                col = table.vars.get(term)
                if col is None:
                    col = np.full(table.size, partial_codes[term], dtype=np.int64)
            else:
                col = np.full(table.size, store.encode(term), dtype=np.int64)
            columns.append(col)
        return np.stack(columns, axis=1)

    def evaluate(self, query: Query, database: Database) -> set[Answer]:
        with _TELEMETRY.span("backend.evaluate", backend=self.name, query=query.name):
            table = self._join(query, database)
            if table is None or table.size == 0:
                return set()
            store = self._store(database)
            head = self._decode_head(query, store, table, {})
            unique = np.unique(head, axis=0)
            decode = store.constants
            return {tuple(decode[code] for code in row) for row in unique.tolist()}

    def run(self, query: Query, database: Database) -> EvalResult:
        with _TELEMETRY.span("backend.run", backend=self.name, query=query.name):
            result = EvalResult()
            table = self._join(query, database)
            if table is None or table.size == 0:
                return result
            store = self._store(database)
            decode = store.constants
            head = self._decode_head(query, store, table, {}).tolist()
            atom_facts = [
                relation.facts
                for relation in (
                    store.relation(database, atom.relation) for atom in query.atoms
                )
            ]
            atom_rows = [col.tolist() for col in table.atom_rows]
            for i in range(table.size):
                answer = tuple(decode[code] for code in head[i])
                witness = frozenset(
                    facts[rows[i]] for facts, rows in zip(atom_facts, atom_rows)
                )
                result.answers.add(answer)
                result.support[answer] += 1
                result.witness_support.setdefault(answer, Counter())[witness] += 1
            return result

    def assignments(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Iterator[Assignment]:
        partial = dict(partial or {})
        table = self._join(query, database, partial)
        if table is None or table.size == 0:
            return iter(())
        store = self._store(database)
        decode = store.constants
        names = list(table.vars)
        matrix = (
            np.stack([table.vars[v] for v in names], axis=1).tolist()
            if names
            else [[] for _ in range(table.size)]
        )
        extras = {v: c for v, c in partial.items() if v not in table.vars}

        def generate() -> Iterator[Assignment]:
            for row in matrix:
                assignment: Assignment = dict(extras)
                for v, code in zip(names, row):
                    assignment[v] = decode[code]
                yield assignment

        return generate()

    def is_satisfiable(
        self, query: Query, database: Database, partial: Mapping[Var, Constant]
    ) -> bool:
        table = self._join(query, database, dict(partial))
        return table is not None and table.size > 0


def columnar_evaluate(query: Query, database: Database) -> set[Answer]:
    """``Q(D)`` on a fresh columnar store (convenience / tests)."""
    return ColumnarBackend().evaluate(query, database)


__all__ = ["ColumnarBackend", "columnar_evaluate"]
