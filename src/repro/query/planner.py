"""Cost-based join ordering with simple statistics.

The default evaluator orders atoms by "most bound positions, then
smallest relation" — a safe syntactic heuristic.  This module adds the
classic System-R style refinement: per-column distinct counts turn a
partially bound atom into a cardinality *estimate*
(``|R| / Π distinct(bound column)``), and the join order greedily picks
the cheapest next atom under the bindings accumulated so far.

The planner never changes results (property-tested against the naive
semantics); it only changes the enumeration order, which matters on
queries whose selective atoms hide behind unselective ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..db.database import Database
from ..query.ast import Atom, Query, Var
from ..telemetry import TELEMETRY as _TELEMETRY
from .evaluator import Assignment, Evaluator


class StaleStatisticsError(RuntimeError):
    """Raised when version-checked statistics are used after the database
    changed and the policy is ``on_stale="raise"``."""


class Statistics:
    """Cardinalities and per-column distinct counts of a database.

    The counts are tied to the database's :attr:`~Database.version`
    stamp.  :meth:`ensure_fresh` detects staleness in O(1) and — under
    the default ``on_stale="refresh"`` policy — re-reads the counts for
    exactly the relations whose per-relation stamp moved (each is a few
    ``len`` calls on index structures, no data scan, so keeping
    statistics current across a cleaning session's edits is effectively
    free).  With ``on_stale="raise"`` a stale use raises
    :class:`StaleStatisticsError` instead.
    """

    def __init__(self, database: Database, on_stale: str = "refresh") -> None:
        if on_stale not in ("refresh", "raise"):
            raise ValueError(f"on_stale must be 'refresh' or 'raise', got {on_stale!r}")
        self.database = database
        self.on_stale = on_stale
        self.cardinality: dict[str, int] = {}
        self.distinct: dict[tuple[str, int], int] = {}
        self.version = -1
        self._relation_versions: dict[str, int] = {}
        self.refresh()

    @property
    def stale(self) -> bool:
        """Whether the database changed since the counts were read."""
        return self.version != self.database.version

    def ensure_fresh(self) -> None:
        """Apply the staleness policy; O(1) when nothing changed."""
        if not self.stale:
            return
        if self.on_stale == "raise":
            raise StaleStatisticsError(
                f"statistics at version {self.version} used against database "
                f"at version {self.database.version}"
            )
        self.refresh()

    def refresh(self) -> None:
        """Re-read counts for relations whose version stamp moved."""
        database = self.database
        for relation in database.schema:
            name = relation.name
            current = database.relation_version(name)
            if self._relation_versions.get(name) == current:
                continue
            self._relation_versions[name] = current
            self.cardinality[name] = database.size(name)
            for position in range(relation.arity):
                self.distinct[(name, position)] = max(
                    1, database.distinct_count(name, position)
                )
        self.version = database.version
        _TELEMETRY.count("planner.statistics_refreshes")

    def estimate(self, atom: Atom, bound: set[Var]) -> float:
        """Estimated matches of *atom* given already-bound variables.

        Constants and bound variables each divide the relation's
        cardinality by the column's distinct count (independence
        assumption); the estimate never drops below the reciprocal case
        of an empty relation.
        """
        size = float(self.cardinality.get(atom.relation, 0))
        if size == 0.0:
            return 0.0
        for position, term in enumerate(atom.terms):
            is_selective = not isinstance(term, Var) or term in bound
            if is_selective:
                size /= self.distinct.get((atom.relation, position), 1)
        return max(size, 1e-9)


def plan_order(
    query: Query,
    statistics: Statistics,
    initially_bound: Optional[set[Var]] = None,
) -> list[int]:
    """A static join order: greedily cheapest-next under accumulated
    bindings.  Returns atom indices in execution order."""
    bound: set[Var] = set(initially_bound or ())
    remaining = list(range(len(query.atoms)))
    order: list[int] = []
    while remaining:
        best = min(
            remaining,
            key=lambda i: (statistics.estimate(query.atoms[i], bound), i),
        )
        order.append(best)
        bound |= query.atoms[best].variables()
        remaining.remove(best)
    return order


@dataclass(frozen=True)
class PlanExplanation:
    """A human-readable account of the chosen join order."""

    order: tuple[int, ...]
    estimates: tuple[float, ...]

    def render(self, query: Query) -> str:
        lines = []
        for rank, (index, estimate) in enumerate(zip(self.order, self.estimates)):
            lines.append(
                f"  {rank + 1}. {query.atoms[index]}  (est. {estimate:.1f} matches)"
            )
        return "\n".join(lines)


def explain(
    query: Query,
    statistics: Statistics,
    initially_bound: Optional[set[Var]] = None,
) -> PlanExplanation:
    """The plan plus its per-step cardinality estimates."""
    bound: set[Var] = set(initially_bound or ())
    order = plan_order(query, statistics, bound)
    estimates = []
    running = set(bound)
    for index in order:
        estimates.append(statistics.estimate(query.atoms[index], running))
        running |= query.atoms[index].variables()
    return PlanExplanation(tuple(order), tuple(estimates))


class PlannedEvaluator(Evaluator):
    """An evaluator whose atom choice follows cost estimates.

    The choice is dynamic (re-estimated at each step against the current
    bindings) rather than the static :func:`plan_order`, so partial
    assignments supplied at enumeration time benefit too.
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        statistics: Optional[Statistics] = None,
    ) -> None:
        super().__init__(query, database)
        self.statistics = statistics if statistics is not None else Statistics(database)

    def assignments(self, partial=None):
        # Mid-cleaning edits would otherwise leave the cost model frozen
        # at construction time; apply the staleness policy per enumeration.
        self.statistics.ensure_fresh()
        return super().assignments(partial)

    def _pick_atom(self, assignment: Assignment, remaining: list[Atom]) -> int:
        bound = set(assignment)
        best_index = 0
        best_cost = None
        for i, atom in enumerate(remaining):
            cost = self.statistics.estimate(atom, bound)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = i
        return best_index
