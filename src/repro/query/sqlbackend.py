"""An optional SQL evaluation backend: the CQ AST compiled to SQL.

For datasets that outgrow the in-memory dict-of-facts representation,
the conjunctive query is compiled to one ``SELECT`` over per-relation
tables and handed to a real query engine — DuckDB when installed (the
``[sql]`` extra), the stdlib ``sqlite3`` otherwise, both spoken to
through the same DB-API subset so the compiled SQL is identical.

Two design points keep the backend bit-compatible with the reference
engine:

* **Dictionary-encoded columns.**  Constants are interned to integer
  codes by the same append-only encoder idea as the columnar backend
  and stored as ``INTEGER`` columns, so SQL equality is exactly Python
  equality (no type-affinity surprises: ``1`` vs ``"1"`` stay distinct,
  ``1`` vs ``1.0`` stay equal) and every row carries a ``rid`` pointing
  back into a row-aligned ``list[Fact]`` for witness decoding.

* **Lazy dirty-relation sync.**  Tables are reloaded per relation only
  when that relation's :meth:`~repro.db.database.Database
  .relation_version` stamp moved since the last sync — a cleaning
  session's point edits re-ship one relation, not the database.

The backend declares ``negation=False`` in its capabilities: safely
negated atoms are routed to the reference engine by
:class:`~repro.query.backend.FallbackBackend` (see
``tests/test_backend_fallback.py``), keeping the compiler small while
the conformance suite pins the supported surface.
"""

from __future__ import annotations

import weakref
from collections import Counter
from typing import Iterator, Mapping, Optional

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Query, QueryError, Var
from .backend import Capabilities, EvalBackend, EvalResult
from .evaluator import Answer, Assignment

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover
    _duckdb = None
import sqlite3 as _sqlite3


def default_engine() -> str:
    """The engine :class:`SQLBackend` picks on ``engine="auto"``."""
    return "duckdb" if _duckdb is not None else "sqlite"


def _table(relation: str) -> str:
    """The (quoted) table name of *relation*."""
    return f'"t_{relation}"'


class _SQLStore:
    """Per-database SQL state: connection, encoder, synced relations."""

    def __init__(self, engine: str) -> None:
        self.engine = engine
        if engine == "duckdb":  # pragma: no cover - optional dependency
            if _duckdb is None:
                raise RuntimeError("duckdb requested but not installed")
            self.connection = _duckdb.connect(":memory:")
        elif engine == "sqlite":
            self.connection = _sqlite3.connect(":memory:")
        else:
            raise ValueError(f"unknown SQL engine {engine!r} (duckdb|sqlite)")
        self.codes: dict[Constant, int] = {}
        self.constants: list[Constant] = []
        #: relation -> version stamp at last sync
        self.versions: dict[str, int] = {}
        #: relation -> row-aligned facts (rid = list index)
        self.facts: dict[str, list[Fact]] = {}

    def encode(self, value: Constant) -> int:
        code = self.codes.get(value)
        if code is None:
            code = len(self.constants)
            self.codes[value] = code
            self.constants.append(value)
        return code

    def sync(self, database: Database, relation: str) -> None:
        """Re-ship *relation* iff its version stamp moved (lazy sync)."""
        version = database.relation_version(relation)
        if self.versions.get(relation) == version:
            return
        arity = database.schema.arity(relation)
        table = _table(relation)
        cur = self.connection
        if relation not in self.versions:
            columns = ", ".join(["rid INTEGER"] + [f"c{i} INTEGER" for i in range(arity)])
            cur.execute(f"CREATE TABLE {table} ({columns})")
        else:
            cur.execute(f"DELETE FROM {table}")
        facts = list(database.facts(relation))
        encode = self.encode
        rows = [
            (rid, *(encode(value) for value in f.values))
            for rid, f in enumerate(facts)
        ]
        placeholders = ", ".join(["?"] * (arity + 1))
        cur.executemany(f"INSERT INTO {table} VALUES ({placeholders})", rows)
        self.facts[relation] = facts
        self.versions[relation] = version
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("backend.sql.syncs")
            tel.count("backend.sql.rows_shipped", len(facts))


class _Compiled:
    """One compiled query: SQL text plus the decode plan."""

    __slots__ = ("sql", "vars", "n_atoms", "empty")

    def __init__(self, sql: str, vars: list[Var], n_atoms: int, empty: bool) -> None:
        self.sql = sql
        self.vars = vars
        self.n_atoms = n_atoms
        #: a ground predicate already failed; the query is empty
        self.empty = empty


class SQLBackend(EvalBackend):
    """CQ evaluation by SQL compilation (see the module docstring)."""

    name = "sql"
    capabilities = Capabilities(negation=False, inequalities=True)

    def __init__(self, engine: str = "auto") -> None:
        self.engine = default_engine() if engine == "auto" else engine
        if self.engine not in ("duckdb", "sqlite"):
            raise ValueError(f"unknown SQL engine {engine!r} (auto|duckdb|sqlite)")
        self._stores: dict[int, tuple[weakref.ref, _SQLStore]] = {}

    # ------------------------------------------------------------------
    # store plumbing
    # ------------------------------------------------------------------
    def _store(self, database: Database) -> _SQLStore:
        key = id(database)
        entry = self._stores.get(key)
        if entry is not None and entry[0]() is database:
            return entry[1]
        for stale, (ref, _) in list(self._stores.items()):
            if ref() is None:
                del self._stores[stale]
        store = _SQLStore(self.engine)
        self._stores[key] = (weakref.ref(database), store)
        return store

    def _prepare(self, database: Database, query: Query) -> _SQLStore:
        query.validate(database.schema)
        if not self.supports(query):
            raise QueryError(
                f"SQL backend does not evaluate {query.name!r} natively "
                "(negated atoms); resolve_backend() adds the naive fallback"
            )
        store = self._store(database)
        for atom in query.atoms:
            store.sync(database, atom.relation)
        return store

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _compile(
        self,
        store: _SQLStore,
        query: Query,
        partial: Mapping[Var, Constant],
        select_rids: bool = True,
    ) -> _Compiled:
        """``SELECT <var columns>[, <rid columns>] FROM ... WHERE ...``.

        One table alias per atom occurrence; each variable's first
        occurrence is its canonical column, later occurrences become
        equality predicates.  Constants and partial bindings compare
        against inlined integer codes (always safe — codes come from our
        own encoder).
        """
        canon: dict[Var, str] = {}
        where: list[str] = []
        tables: list[str] = []
        for i, atom in enumerate(query.atoms):
            alias = f"a{i}"
            tables.append(f"{_table(atom.relation)} {alias}")
            for position, term in enumerate(atom.terms):
                column = f"{alias}.c{position}"
                if isinstance(term, Var):
                    if term in canon:
                        where.append(f"{column} = {canon[term]}")
                    else:
                        canon[term] = column
                        if term in partial:
                            where.append(f"{column} = {store.encode(partial[term])}")
                else:
                    where.append(f"{column} = {store.encode(term)}")
        for ineq in query.inequalities:
            sides = []
            ground = True
            for term in (ineq.left, ineq.right):
                if isinstance(term, Var) and term not in partial:
                    sides.append(canon[term])
                    ground = False
                elif isinstance(term, Var):
                    sides.append(str(store.encode(partial[term])))
                else:
                    sides.append(str(store.encode(term)))
            if ground:
                # both sides constant (possibly via partial): decide here
                if ineq.substitute(dict(partial)).holds({}) is False:
                    return _Compiled("", [], len(query.atoms), empty=True)
                continue
            where.append(f"{sides[0]} <> {sides[1]}")
        variables = list(canon)
        selected = [canon[v] for v in variables]
        if select_rids:
            selected += [f"a{i}.rid" for i in range(len(query.atoms))]
        if not selected:  # pragma: no cover - atoms always bind something
            selected = ["1"]
        sql = f"SELECT {', '.join(selected)} FROM {', '.join(tables)}"
        if where:
            sql += f" WHERE {' AND '.join(where)}"
        return _Compiled(sql, variables, len(query.atoms), empty=False)

    def _rows(self, store: _SQLStore, compiled: _Compiled) -> list[tuple]:
        if compiled.empty:
            return []
        cursor = store.connection.execute(compiled.sql)
        return cursor.fetchall()

    # ------------------------------------------------------------------
    # the backend surface
    # ------------------------------------------------------------------
    def evaluate(self, query: Query, database: Database) -> set[Answer]:
        with _TELEMETRY.span(
            "backend.evaluate", backend=self.name, engine=self.engine, query=query.name
        ):
            store = self._prepare(database, query)
            compiled = self._compile(store, query, {}, select_rids=False)
            if compiled.empty:
                return set()
            index = {v: i for i, v in enumerate(compiled.vars)}
            decode = store.constants
            answers: set[Answer] = set()
            for row in self._rows(store, compiled):
                answers.add(
                    tuple(
                        decode[row[index[t]]] if isinstance(t, Var) else t
                        for t in query.head
                    )
                )
            return answers

    def run(self, query: Query, database: Database) -> EvalResult:
        with _TELEMETRY.span(
            "backend.run", backend=self.name, engine=self.engine, query=query.name
        ):
            store = self._prepare(database, query)
            result = EvalResult()
            compiled = self._compile(store, query, {})
            index = {v: i for i, v in enumerate(compiled.vars)}
            decode = store.constants
            n_vars = len(compiled.vars)
            atom_facts = [store.facts[atom.relation] for atom in query.atoms]
            for row in self._rows(store, compiled):
                answer = tuple(
                    decode[row[index[t]]] if isinstance(t, Var) else t
                    for t in query.head
                )
                witness = frozenset(
                    facts[rid] for facts, rid in zip(atom_facts, row[n_vars:])
                )
                result.answers.add(answer)
                result.support[answer] += 1
                result.witness_support.setdefault(answer, Counter())[witness] += 1
            return result

    def assignments(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Iterator[Assignment]:
        partial = dict(partial or {})
        store = self._prepare(database, query)
        compiled = self._compile(store, query, partial, select_rids=False)
        decode = store.constants
        extras = {v: c for v, c in partial.items() if v not in set(compiled.vars)}

        def generate() -> Iterator[Assignment]:
            for row in self._rows(store, compiled):
                assignment: Assignment = dict(extras)
                for v, code in zip(compiled.vars, row):
                    assignment[v] = decode[code]
                yield assignment

        return generate()

    def is_satisfiable(
        self, query: Query, database: Database, partial: Mapping[Var, Constant]
    ) -> bool:
        store = self._prepare(database, query)
        compiled = self._compile(store, query, dict(partial), select_rids=False)
        if compiled.empty:
            return False
        cursor = store.connection.execute(f"{compiled.sql} LIMIT 1")
        return cursor.fetchone() is not None


def sql_evaluate(
    query: Query, database: Database, engine: str = "auto"
) -> set[Answer]:
    """``Q(D)`` on a fresh SQL store (convenience / tests)."""
    return SQLBackend(engine).evaluate(query, database)


__all__ = ["SQLBackend", "default_engine", "sql_evaluate"]
