"""Pluggable evaluation backends behind one narrow interface.

Everything above the evaluator — the cleaning loops, the incremental
engine, witnesses and provenance — consumes query results through three
notions: the answer set ``Q(D)``, each answer's *support* (how many
valid assignments produce it), and each answer's *witness multiset*
(how many assignments ground the body to each distinct fact set).
:class:`EvalBackend` packages exactly that surface so the evaluation
substrate can be swapped without touching the cleaning logic:

* ``naive``    — the index-backed backtracking :class:`Evaluator`, the
  reference implementation every other backend must agree with
  bit-for-bit (``tests/test_backend_conformance.py``);
* ``columnar`` — vectorized numpy hash joins over per-relation column
  arrays (:mod:`repro.query.columnar`);
* ``sql``      — the CQ AST compiled to SQL over DuckDB (or the stdlib
  sqlite3 when DuckDB is not installed), with lazy dirty-relation sync
  (:mod:`repro.query.sqlbackend`).

Backends advertise :class:`Capabilities`; :func:`resolve_backend` wraps
any non-reference backend in a :class:`FallbackBackend` so a query
shape a backend cannot evaluate transparently runs on ``naive`` instead
(counted as ``backend.fallback`` in telemetry) — results are identical
either way, only the substrate changes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Union

from ..db.database import Database
from ..db.tuples import Constant
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Query, Var
from .evaluator import (
    Answer,
    Assignment,
    Evaluator,
    Witness,
    answer_to_partial,
    instantiate_head,
    witness_of,
)


@dataclass(frozen=True)
class Capabilities:
    """What query shapes a backend can evaluate natively.

    A ``False`` flag is not an error — :class:`FallbackBackend` routes
    such queries to the reference engine — but it is the contract the
    conformance suite checks: a backend must *either* support a shape
    bit-identically or decline it here.
    """

    #: Safely negated atoms (``not R(ū)``, the §9 extension).
    negation: bool = True
    #: Inequality predicates (``x != y``).
    inequalities: bool = True
    #: Aggregate / union query objects (anything that is not a plain
    #: :class:`Query`).  No current backend evaluates these natively;
    #: the flag exists so a future one can claim them.
    aggregates: bool = False


@dataclass
class EvalResult:
    """One backend evaluation: answers, support, witness multisets.

    ``support[t]`` is the number of valid assignments producing answer
    ``t`` (so ``answers == set(support)``); ``witness_support[t][w]``
    the number of assignments grounding the body to the fact set ``w``.
    Two backends agree exactly when their ``EvalResult`` objects compare
    equal.
    """

    answers: set[Answer] = field(default_factory=set)
    support: Counter = field(default_factory=Counter)
    witness_support: dict[Answer, Counter] = field(default_factory=dict)

    def witnesses(self, answer: Answer) -> list[Witness]:
        """Distinct witnesses of *answer* in the canonical order used by
        :class:`~repro.query.incremental.IncrementalAnswers`."""
        counter = self.witness_support.get(answer)
        if not counter:
            return []
        return sorted(counter, key=lambda w: sorted(map(repr, w)))

    @classmethod
    def from_assignments(
        cls, query: Query, assignments: Iterable[Assignment]
    ) -> "EvalResult":
        """Fold an assignment stream into the three aggregates."""
        result = cls()
        for assignment in assignments:
            answer = instantiate_head(query, assignment)
            witness = witness_of(query, assignment)
            result.answers.add(answer)
            result.support[answer] += 1
            result.witness_support.setdefault(answer, Counter())[witness] += 1
        return result


class EvalBackend:
    """One evaluation substrate.

    Subclasses implement :meth:`assignments` (the one primitive every
    derived notion reduces to) and may override :meth:`evaluate` /
    :meth:`run` with vectorized paths.  All entry points take the query
    *and* the database per call — backends may cache derived per-database
    state internally (keyed by version stamps) but hold no per-query
    state, so one backend instance serves any number of sessions.
    """

    #: Registry key and telemetry label.
    name: str = "abstract"
    capabilities: Capabilities = Capabilities()

    # ------------------------------------------------------------------
    # capability gate
    # ------------------------------------------------------------------
    def supports(self, query: object) -> bool:
        """Whether this backend can evaluate *query* natively."""
        if type(query) is not Query:
            return self.capabilities.aggregates
        if query.negated_atoms and not self.capabilities.negation:
            return False
        if query.inequalities and not self.capabilities.inequalities:
            return False
        return True

    # ------------------------------------------------------------------
    # the primitive
    # ------------------------------------------------------------------
    def assignments(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Iterator[Assignment]:
        """All valid (total) assignments extending *partial*."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # derived notions (override for vectorized paths)
    # ------------------------------------------------------------------
    def evaluate(self, query: Query, database: Database) -> set[Answer]:
        """``Q(D)`` — the answer set alone (the cleaning loop's hot read)."""
        with _TELEMETRY.span("backend.evaluate", backend=self.name, query=query.name):
            return {
                instantiate_head(query, a) for a in self.assignments(query, database)
            }

    def run(self, query: Query, database: Database) -> EvalResult:
        """Answers, support and witness multisets in one pass."""
        with _TELEMETRY.span("backend.run", backend=self.name, query=query.name):
            return EvalResult.from_assignments(query, self.assignments(query, database))

    def is_satisfiable(
        self, query: Query, database: Database, partial: Mapping[Var, Constant]
    ) -> bool:
        """Whether *partial* extends to a valid assignment."""
        return next(self.assignments(query, database, partial), None) is not None


class NaiveBackend(EvalBackend):
    """The reference substrate: the backtracking :class:`Evaluator`.

    Semantics by definition — every other backend is conformance-checked
    against this one.
    """

    name = "naive"
    capabilities = Capabilities(negation=True, inequalities=True)

    def assignments(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Iterator[Assignment]:
        return Evaluator(query, database).assignments(partial)

    def evaluate(self, query: Query, database: Database) -> set[Answer]:
        with _TELEMETRY.span("backend.evaluate", backend=self.name, query=query.name):
            return Evaluator(query, database).answers()


class FallbackBackend(EvalBackend):
    """Route unsupported query shapes to the reference backend.

    Wraps a *preferred* backend; every entry point first consults
    ``preferred.supports(query)`` and silently degrades to ``naive`` on
    a miss, counting ``backend.fallback`` (and a per-backend
    ``backend.<name>.fallback``) so operators can see how much of a
    workload actually runs on the fast substrate.
    """

    def __init__(
        self, preferred: EvalBackend, reference: Optional[EvalBackend] = None
    ) -> None:
        self.preferred = preferred
        self.reference = reference if reference is not None else NaiveBackend()
        self.name = preferred.name
        self.capabilities = self.reference.capabilities

    def supports(self, query: object) -> bool:
        return self.preferred.supports(query) or self.reference.supports(query)

    def _route(self, query: object) -> EvalBackend:
        if self.preferred.supports(query):
            return self.preferred
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("backend.fallback")
            tel.count(f"backend.{self.preferred.name}.fallback")
        return self.reference

    def assignments(
        self,
        query: Query,
        database: Database,
        partial: Optional[Mapping[Var, Constant]] = None,
    ) -> Iterator[Assignment]:
        return self._route(query).assignments(query, database, partial)

    def evaluate(self, query: Query, database: Database) -> set[Answer]:
        return self._route(query).evaluate(query, database)

    def run(self, query: Query, database: Database) -> EvalResult:
        return self._route(query).run(query, database)

    def is_satisfiable(
        self, query: Query, database: Database, partial: Mapping[Var, Constant]
    ) -> bool:
        return self._route(query).is_satisfiable(query, database, partial)


class BackendEvaluator:
    """An :class:`Evaluator`-shaped adapter over a backend.

    Exposes the evaluator surface (``assignments`` / ``answers`` /
    ``witnesses`` / ``is_satisfiable``) for one ``(query, database)``
    pair, so a backend plugs into every seam built for the reference
    engine — most importantly the incremental engine's
    ``evaluator_factory``, whose delta rules enumerate assignments
    extending partial bindings.
    """

    def __init__(
        self, query: Query, database: Database, backend: EvalBackend
    ) -> None:
        query.validate(database.schema)
        self.query = query
        self.database = database
        self.backend = backend

    def assignments(
        self, partial: Optional[Mapping[Var, Constant]] = None
    ) -> Iterator[Assignment]:
        return self.backend.assignments(self.query, self.database, partial)

    def answers(self) -> set[Answer]:
        return self.backend.evaluate(self.query, self.database)

    def is_satisfiable(self, partial: Mapping[Var, Constant]) -> bool:
        return self.backend.is_satisfiable(self.query, self.database, partial)

    def witnesses(self, answer: Answer) -> list[Witness]:
        """Distinct witnesses for *answer*, first-seen order (the
        reference :meth:`Evaluator.witnesses` contract)."""
        partial = answer_to_partial(self.query, answer)
        if partial is None:
            return []
        seen: set[Witness] = set()
        ordered: list[Witness] = []
        for assignment in self.assignments(partial):
            witness = witness_of(self.query, assignment)
            if witness not in seen:
                seen.add(witness)
                ordered.append(witness)
        return ordered


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
BackendFactory = Callable[[], EvalBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory under *name* (later wins, so tests can
    shadow a builtin with an instrumented double)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str) -> EvalBackend:
    """Instantiate the backend registered under *name* (no fallback)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown evaluation backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory()


def resolve_backend(
    spec: Union[str, EvalBackend, None], fallback: bool = True
) -> EvalBackend:
    """A ready-to-use backend from a name, instance, or ``None``.

    ``None`` and ``"naive"`` yield the reference backend as-is; any
    other backend is wrapped in a :class:`FallbackBackend` (unless
    *fallback* is off) so unsupported query shapes degrade to the
    reference engine instead of failing.
    """
    if spec is None:
        return NaiveBackend()
    backend = create_backend(spec) if isinstance(spec, str) else spec
    if isinstance(backend, (NaiveBackend, FallbackBackend)) or not fallback:
        return backend
    return FallbackBackend(backend)


def backend_evaluate(
    query: Query, database: Database, backend: Union[str, EvalBackend, None] = None
) -> set[Answer]:
    """``Q(D)`` on a chosen substrate (auto-fallback on unsupported shapes)."""
    return resolve_backend(backend).evaluate(query, database)


def _columnar_factory() -> EvalBackend:
    from .columnar import ColumnarBackend

    return ColumnarBackend()


def _sql_factory() -> EvalBackend:
    from .sqlbackend import SQLBackend

    return SQLBackend()


register_backend("naive", NaiveBackend)
register_backend("columnar", _columnar_factory)
register_backend("sql", _sql_factory)
