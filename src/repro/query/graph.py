"""The weighted query graph used by the Min-Cut split (Section 5.2).

Vertices are the body atoms of the query.  An edge connects two atoms
that share a variable or whose variables share an inequality; its weight
is the number of shared variables plus the number of inequalities
relevant to the variables of the two atoms — exactly the construction
illustrated in the paper's Figure 2 (left).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from .ast import Query


@dataclass
class QueryGraph:
    """Undirected weighted graph over atom indices ``0..n-1``."""

    n: int
    weights: dict[tuple[int, int], int] = field(default_factory=dict)

    def weight(self, u: int, v: int) -> int:
        if u > v:
            u, v = v, u
        return self.weights.get((u, v), 0)

    def add_weight(self, u: int, v: int, delta: int) -> None:
        if u == v or delta == 0:
            return
        if u > v:
            u, v = v, u
        self.weights[(u, v)] = self.weights.get((u, v), 0) + delta

    def neighbors(self, u: int) -> list[int]:
        result = []
        for (a, b), w in self.weights.items():
            if w <= 0:
                continue
            if a == u:
                result.append(b)
            elif b == u:
                result.append(a)
        return sorted(result)

    def edges(self) -> list[tuple[int, int, int]]:
        return [(u, v, w) for (u, v), w in sorted(self.weights.items()) if w > 0]

    def is_connected(self) -> bool:
        if self.n <= 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.n


def build_query_graph(query: Query) -> QueryGraph:
    """Construct the weighted atom graph of *query*.

    Weight between atoms *i* and *j* =
    ``|vars(i) ∩ vars(j)|`` + number of inequalities with one variable in
    atom *i* and the other in atom *j* (or touching variables of both).
    """
    graph = QueryGraph(len(query.atoms))
    atom_vars = [a.variables() for a in query.atoms]
    for i, j in combinations(range(len(query.atoms)), 2):
        shared = len(atom_vars[i] & atom_vars[j])
        relevant = 0
        for inequality in query.inequalities:
            ineq_vars = inequality.variables()
            if not ineq_vars:
                continue
            touches_i = bool(ineq_vars & atom_vars[i])
            touches_j = bool(ineq_vars & atom_vars[j])
            if touches_i and touches_j:
                relevant += 1
        graph.add_weight(i, j, shared + relevant)
    return graph
