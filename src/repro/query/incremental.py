"""Delta-driven maintenance of ``Q(D)`` answers and witnesses.

QOCO's main loop (Algorithms 1-3) interleaves single-fact edits with
repeated evaluations of ``Q(D)``; re-running the evaluator from scratch
per check makes cleaning cost quadratic-plus in ``|Q(D)|``.  This module
maintains the *multiset of valid assignments* — and hence the answer set
and every answer's witness multiset — under single-fact edits, using
counting-based incremental view maintenance:

* **positive delta** — a fact ``f`` touching a body relation gains (on
  insert) or loses (on delete) exactly the valid assignments whose
  witness uses ``f``.  These are enumerated by binding ``f`` to each
  occurrence of its relation in the body and running the index-backed
  evaluator on the residual join, deduplicating across occurrences.
  Insert deltas are enumerated *after* the fact lands, delete deltas
  *before* it leaves (the lost assignments must still be enumerable).

* **negation delta** — a fact ``f`` touching a negated atom's relation
  can *revoke* answers (inserting ``f`` makes ``not R(ū)`` fail for
  assignments under which ``f`` matches) or *restore* them (deleting the
  only blocking fact).  Both directions bind the negated atom's shared
  variables to ``f`` and enumerate valid assignments extending that
  partial — in the pre-state for revocations (those assignments are
  valid now and die with the insert) and in the post-state for
  restorations (valid now, and provably blocked by ``f`` before).

* **inequalities** need no special rule: every delta enumeration runs
  through the full evaluator, which enforces them.

The deltas are *exact* (see ``docs/incremental.md`` for the argument),
so ``IncrementalAnswers`` is bit-identical to a from-scratch
:class:`~repro.query.evaluator.Evaluator` — property-tested over random
instances, queries, and edit sequences.  Query shapes the delta rules do
not cover (unions, anything that is not a plain :class:`Query`) fall
back to full recomputation on a version-stamp mismatch, with the same
read API and semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional

from ..db.database import Database, DatabaseListener
from ..db.edits import Edit, EditKind
from ..db.tuples import Constant, Fact
from ..telemetry import TELEMETRY as _TELEMETRY
from .ast import Atom, Query, Var
from .evaluator import (
    Answer,
    Assignment,
    Evaluator,
    Witness,
    _bind_atom,
    instantiate_head,
    witness_of,
)

#: Builds the evaluator backing delta enumeration and full recomputes.
EvaluatorFactory = Callable[[Query, Database], Evaluator]


def supports_incremental(query: object) -> bool:
    """Whether the delta rules cover *query*'s shape.

    Plain conjunctive queries — including inequalities and safely
    negated atoms — are supported; unions, aggregates, or any other
    query-like object fall back to full recomputation.
    """
    return type(query) is Query


def assignments_using_fact(evaluator: Evaluator, fact: Fact) -> list[Assignment]:
    """Distinct valid assignments whose witness includes *fact*.

    For each body atom over the fact's relation, bind the atom to the
    fact and enumerate the residual join; an assignment reachable
    through several atom occurrences is reported once.
    """
    query = evaluator.query
    seen: set[frozenset] = set()
    result: list[Assignment] = []
    for atom in query.atoms:
        if atom.relation != fact.relation or atom.arity != fact.arity:
            continue
        partial: Assignment = {}
        if _bind_atom(atom, fact, partial) is None:
            continue
        for assignment in evaluator.assignments(partial):
            key = frozenset(assignment.items())
            if key in seen:
                continue
            seen.add(key)
            result.append(assignment)
    return result


def negation_binding(
    atom: Atom, fact: Fact, body_vars: set[Var]
) -> Optional[Assignment]:
    """The partial assignment (over shared variables) under which *fact*
    matches the negated *atom* — or ``None`` if no assignment can.

    Shared variables (those bound by the positive body) take the fact's
    values; variables local to the negated atom are existential
    wildcards, but a repeated local variable must see one consistent
    value in the fact; constants must match outright.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    shared: Assignment = {}
    local: dict[Var, Constant] = {}
    for term, value in zip(atom.terms, fact.values):
        if isinstance(term, Var):
            store = shared if term in body_vars else local
            bound = store.get(term)
            if bound is None:
                store[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return shared


class IncrementalAnswers(DatabaseListener):
    """``Q(D)`` and its witness multiset, maintained under edits.

    By default the instance subscribes to the database's edit hook, so
    *every* mutation path (``Database.insert`` / ``delete`` / ``apply``,
    ``Edit.apply``, code deep inside the cleaning algorithms) keeps it
    exact without the mutator knowing it exists.  Reads are O(1) plus
    the output size.

    When constructed with ``subscribe=False`` the instance degrades to a
    cached snapshot that fully recomputes when the database
    :attr:`~Database.version` moves, counting
    ``incremental.full_recompute``.  Either way the observable answers
    and witnesses are bit-identical to a fresh :class:`Evaluator`.

    Query shapes outside :func:`supports_incremental` (unions,
    aggregates, ...) are rejected with :class:`TypeError`; callers gate
    on :func:`supports_incremental` and keep full evaluation for those.
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        subscribe: bool = True,
        evaluator_factory: EvaluatorFactory = Evaluator,
    ) -> None:
        if not supports_incremental(query):
            raise TypeError(
                f"incremental maintenance does not cover {type(query).__name__}; "
                "gate on supports_incremental() and fall back to full evaluation"
            )
        query.validate(database.schema)
        self.query = query
        self.database = database
        self._evaluator = evaluator_factory(query, database)
        self._body_vars = query.body_variables()
        self._relevant = {a.relation for a in query.atoms} | {
            a.relation for a in query.negated_atoms
        }
        #: answer -> number of valid assignments producing it
        self._support: Counter = Counter()
        #: answer -> witness -> number of assignments grounding to it
        self._witness_support: dict[Answer, Counter] = {}
        self._version = -1
        self._pending: list[Assignment] = []
        self._subscribed = False
        if subscribe:
            database.subscribe(self)
            self._subscribed = True
        self.refresh()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def answers(self) -> set[Answer]:
        """``Q(D)`` as a fresh set (safe to retain and mutate)."""
        self._ensure_current()
        return set(self._support)

    def __contains__(self, answer: object) -> bool:
        self._ensure_current()
        return answer in self._support

    def __len__(self) -> int:
        self._ensure_current()
        return len(self._support)

    def support(self, answer: Answer) -> int:
        """Number of valid assignments currently producing *answer*."""
        self._ensure_current()
        return self._support.get(answer, 0)

    def witness_count(self, answer: Answer) -> int:
        """Number of *distinct* witnesses of *answer*."""
        self._ensure_current()
        return len(self._witness_support.get(answer, ()))

    def witnesses(self, answer: Answer) -> list[Witness]:
        """All distinct witnesses of *answer*, canonically ordered.

        Set-equal to ``Evaluator(query, database).witnesses(answer)``;
        the order is a deterministic function of the witnesses alone
        (not of edit history), so downstream consumers behave
        identically however the state was reached.
        """
        self._ensure_current()
        counter = self._witness_support.get(answer)
        if not counter:
            return []
        return sorted(counter, key=lambda w: sorted(map(repr, w)))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Full recomputation (construction, fallback, manual resync)."""
        _TELEMETRY.count("incremental.full_recompute")
        self._support = Counter()
        self._witness_support = {}
        for assignment in self._evaluator.assignments():
            self._admit(assignment)
        self._version = self.database.version
        self._pending = []

    def close(self) -> None:
        """Detach from the database's edit hook (idempotent)."""
        if self._subscribed:
            self.database.unsubscribe(self)
            self._subscribed = False

    def __enter__(self) -> "IncrementalAnswers":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- DatabaseListener ----------------------------------------------
    def before_change(self, database: Database, edit: Edit) -> None:
        if (
            self._version != database.version
            or edit.fact.relation not in self._relevant
        ):
            self._pending = []
            return
        if edit.kind is EditKind.INSERT:
            # Assignments valid now that the new fact will revoke by
            # matching a negated atom.
            self._pending = self._negation_affected(edit.fact)
        else:
            # Assignments whose witness uses the doomed fact — they must
            # be enumerated while the fact is still present.
            self._pending = assignments_using_fact(self._evaluator, edit.fact)

    def after_change(self, database: Database, edit: Edit) -> None:
        if self._version != database.version - 1:
            return  # out of sync; the next read fully recomputes
        self._version = database.version
        if edit.fact.relation not in self._relevant:
            return
        lost, self._pending = self._pending, []
        if edit.kind is EditKind.INSERT:
            gained = assignments_using_fact(self._evaluator, edit.fact)
        else:
            # Assignments valid now that only the deleted fact blocked.
            gained = self._negation_affected(edit.fact)
        touched: set[Answer] = set()
        for assignment in lost:
            self._retract(assignment, touched)
        for assignment in gained:
            self._admit(assignment, touched)
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("incremental.delta_applied")
            tel.count("incremental.answers_touched", len(touched))
            tel.observe("incremental.delta_assignments", len(lost) + len(gained))

    # -- internals ------------------------------------------------------
    def _ensure_current(self) -> None:
        if self._version != self.database.version:
            self.refresh()

    def _negation_affected(self, fact: Fact) -> list[Assignment]:
        """Valid assignments (of the *current* state) under which *fact*
        matches some negated atom, deduplicated across atoms."""
        negated = self.query.negated_atoms
        if not negated:
            return []
        seen: set[frozenset] = set()
        result: list[Assignment] = []
        for atom in negated:
            partial = negation_binding(atom, fact, self._body_vars)
            if partial is None:
                continue
            for assignment in self._evaluator.assignments(partial):
                key = frozenset(assignment.items())
                if key in seen:
                    continue
                seen.add(key)
                result.append(assignment)
        return result

    def _admit(self, assignment: Assignment, touched: Optional[set] = None) -> None:
        answer = instantiate_head(self.query, assignment)
        witness = witness_of(self.query, assignment)
        self._support[answer] += 1
        self._witness_support.setdefault(answer, Counter())[witness] += 1
        if touched is not None:
            touched.add(answer)

    def _retract(self, assignment: Assignment, touched: set) -> None:
        answer = instantiate_head(self.query, assignment)
        witness = witness_of(self.query, assignment)
        if self._support.get(answer, 0) <= 1:
            self._support.pop(answer, None)
        else:
            self._support[answer] -= 1
        counter = self._witness_support.get(answer)
        if counter is not None:
            if counter.get(witness, 0) <= 1:
                counter.pop(witness, None)
            else:
                counter[witness] -= 1
            if not counter:
                self._witness_support.pop(answer, None)
        touched.add(answer)
