"""``ShardedQOCO``: partition, clean shards in parallel, merge edit logs.

The driver is a thin deterministic harness around unchanged per-shard
QOCO loops:

1. **Partition** the database by the :class:`PartitionSpec`'s blocking
   keys into per-shard payloads (replicated dimension relations go to
   every shard) — plain row lists, no canonical sort, so the serial
   parent fraction stays small.
2. **Clean** every relevant shard with an independent QOCO instance —
   in worker *processes* (``mode="process"``, multiprocessing spawn) or
   sequentially in-process (``mode="inline"``, same codec path, for
   tests and debugging).  All oracle questions are brokered by the
   parent's :class:`~repro.shard.router.QuestionRouter`, so dedup and
   answer-board sharing span shards and completions come from a single
   process.
3. **Merge** the per-shard exported edit logs onto the parent database
   in ascending shard order — deterministic because disjoint shards'
   oracle-derived edits commute (each fact moves monotonically toward
   the ground truth, Proposition 3.3).  ``verify_merge=True`` replays
   the logs in *reverse* shard order onto a pristine copy and asserts
   ``state_digest`` equality.
4. **Close the loop**: a deletion in one shard can make an answer
   globally missing that only another shard can repair.  After each
   round the driver asks one global ``COMPL(Q(merged))`` sweep and
   re-runs the home shards of any stragglers, up to
   ``max_rounds`` rounds.

Only *shardable* queries are accepted — see
:meth:`PartitionSpec.is_shardable` and ``docs/sharding.md``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.qoco import QOCOConfig, resolve_config
from ..db.database import Database
from ..durability import codec
from ..oracle.base import Oracle
from ..oracle.questions import InteractionLog
from ..query.ast import Query
from ..query.backend import resolve_backend
from ..telemetry import TELEMETRY as _TELEMETRY
from . import wire
from .partition import PartitionSpec, ShardingError, payload_to_database
from .router import QuestionRouter
from .worker import run_shard, shard_worker_main


def _check_spawn_safe_main() -> None:
    """Refuse process mode when spawn cannot re-import ``__main__``.

    The ``spawn`` start method re-runs the parent's ``__main__`` in every
    worker (mirroring :func:`multiprocessing.spawn.get_preparation_data`:
    by module name when ``__spec__`` is set, else by ``__file__`` path).
    A path that does not exist on disk — a heredoc / ``python -`` stdin
    script leaves ``__file__ == '<stdin>'`` — makes every worker crash
    *before* it reads its payload, and with payloads larger than the pipe
    buffer the parent then deadlocks inside ``Process.start()`` (it still
    holds the pipe's read end while writing, so the write never fails).
    Failing up front turns that silent hang into an actionable error.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(getattr(main, "__spec__", None), "name", None):
        return  # re-imported by module name (python -m ...): always safe
    path = getattr(main, "__file__", None)
    if path is None:
        return  # interactive session: spawn skips the main re-import
    if not os.path.exists(path):
        raise ShardingError(
            f"process mode needs a re-importable __main__ module, but "
            f"__main__.__file__ == {path!r} does not exist (stdin/heredoc "
            f"scripts cannot host spawn parents); run from a real file or "
            f"module, or use mode='inline'"
        )


@dataclass
class ShardOutcome:
    """One shard's slice of one round."""

    shard: int
    round: int
    iterations: int
    converged: bool
    edits: int
    wrong_answers_removed: int
    missing_answers_added: int
    #: the shard-local accounting (includes questions the parent answered
    #: free from its cross-shard cache; the authoritative crowd cost is
    #: the parent log on :class:`ShardReport`)
    question_count: int
    total_cost: int
    #: the worker's own wall-clock for this round (rebuild + clean);
    #: ``sum`` vs ``max`` over a round is the parallel fraction
    seconds: float = 0.0


@dataclass
class ShardReport:
    """The outcome of one sharded cleaning run."""

    query_name: str
    shards: int
    mode: str
    rounds: int = 0
    converged: bool = True
    outcomes: list[ShardOutcome] = field(default_factory=list)
    #: per-shard exported edit logs (wire objects, rounds concatenated) —
    #: replayable via :meth:`Database.apply_exported` in any shard order
    edit_logs: dict[int, list[dict]] = field(default_factory=dict)
    #: effective edits the merge applied to the parent database
    edits_applied: int = 0
    #: the parent-side interaction log: the real crowd cost of the run
    log: InteractionLog = field(default_factory=InteractionLog)
    wall_clock: float = 0.0
    iterations: int = 0

    @property
    def total_cost(self) -> int:
        return self.log.total_cost

    def summary(self) -> str:
        wrong = sum(o.wrong_answers_removed for o in self.outcomes)
        missing = sum(o.missing_answers_added for o in self.outcomes)
        text = (
            f"{self.query_name}: {self.shards} shard(s) [{self.mode}], "
            f"{wrong} wrong removed, {missing} missing added, "
            f"{self.edits_applied} merged edit(s), "
            f"{self.log.total_cost} question units in {self.rounds} round(s), "
            f"{self.wall_clock:.1f}s wall-clock"
        )
        if not self.converged:
            text += " [did not converge]"
        return text


class ShardedQOCO:
    """Partitioned, multi-process QOCO over one database and one oracle.

    ``database`` is the merge target: after :meth:`clean` it holds the
    union of every shard's repairs, exactly as if the per-shard edit
    logs had been replayed onto it (they were).  ``oracle`` is consulted
    only in the parent process.
    """

    def __init__(
        self,
        database: Database,
        oracle: Oracle,
        config: Optional[QOCOConfig] = None,
        *,
        spec: PartitionSpec,
        shards: int = 2,
        mode: str = "process",
        board=None,
        max_rounds: int = 3,
        verify_merge: bool = False,
        oracle_latency: float = 0.0,
        **overrides,
    ) -> None:
        if shards < 1:
            raise ShardingError(f"need at least one shard, got {shards}")
        if mode not in ("process", "inline"):
            raise ShardingError(f"mode must be 'process' or 'inline', got {mode!r}")
        if oracle_latency < 0:
            raise ShardingError(
                f"oracle_latency must be >= 0 seconds, got {oracle_latency}"
            )
        self.database = database
        self.spec = spec
        self.shards = shards
        self.mode = mode
        self.max_rounds = max_rounds
        self.verify_merge = verify_merge
        #: simulated crowd response time per charged question, paid
        #: worker-side (shards wait concurrently); 0 = answer instantly
        self.oracle_latency = oracle_latency
        self.config = resolve_config(config, **overrides)
        self.router = QuestionRouter(oracle, spec, shards, board=board)

    # ------------------------------------------------------------------
    # the sharded Algorithm 3
    # ------------------------------------------------------------------
    def clean(self, query: Query) -> ShardReport:
        self.spec.require_shardable(query)
        query = self.router.intern_query(query)
        self.router.session_query = query
        config_obj = wire.config_to_obj(self.config)  # validates spawn-safety
        query_obj = codec.query_to_obj(query)
        report = ShardReport(
            query_name=query.name,
            shards=self.shards,
            mode=self.mode,
            log=self.router.oracle.log,
        )
        # a query touching no partitioned relation sees identical data in
        # every shard (replicas only): clean it once, on shard 0
        if self.spec.partitioned_atoms(query):
            relevant = set(range(self.shards))
        else:
            relevant = {0}
        pristine = self.database.copy() if self.verify_merge else None
        start = time.perf_counter()
        with _TELEMETRY.span("shard.clean", query=query.name, shards=self.shards):
            targets = set(relevant)
            while targets:
                if report.rounds >= self.max_rounds:
                    report.converged = False
                    break
                report.rounds += 1
                with _TELEMETRY.span("shard.partition"):
                    payloads = self.spec.partition_payloads(
                        self.database, self.shards
                    )
                if self.mode == "process":
                    results = self._run_round_process(
                        payloads, query_obj, config_obj, sorted(targets)
                    )
                else:
                    results = self._run_round_inline(
                        payloads, query_obj, config_obj, sorted(targets)
                    )
                round_converged = self._merge_round(report, results)
                targets = self._unfinished_shards(query, relevant)
                if targets and not round_converged:
                    # re-running a shard that already hit its iteration
                    # bound cannot make progress
                    report.converged = False
                    break
        report.iterations = max(
            (o.iterations for o in report.outcomes), default=0
        )
        report.wall_clock = time.perf_counter() - start
        if pristine is not None:
            self._verify_merge(report, pristine)
        return report

    # ------------------------------------------------------------------
    # round execution
    # ------------------------------------------------------------------
    def _run_round_inline(
        self, payloads: list[dict], query_obj: dict, config_obj: dict, targets: list[int]
    ) -> dict[int, dict]:
        """Sequential in-process execution through the same codec path.

        Shards run one after another, so the registration barrier is
        honored by pre-registering every target's initial answers before
        the first worker starts.
        """
        query = codec.query_from_obj(query_obj)
        backend = resolve_backend(self.config.backend)
        databases = {
            shard: payload_to_database(payloads[shard]) for shard in targets
        }
        for shard, database in databases.items():
            self.router.register(shard, backend.evaluate(query, database))
        results: dict[int, dict] = {}
        for shard in targets:
            ask = lambda obj, shard=shard: self.router.answer(shard, obj)  # noqa: E731
            results[shard] = run_shard(
                self._payload_for(payloads[shard], query_obj, config_obj),
                ask,
                database=databases[shard],
            )
        return results

    def _run_round_process(
        self, payloads: list[dict], query_obj: dict, config_obj: dict, targets: list[int]
    ) -> dict[int, dict]:
        """Spawn one worker process per target shard and broker questions.

        ``complete_result`` questions are deferred until every worker has
        registered its initial answer set — the scoping in
        :class:`QuestionRouter` needs the full union of ``Q(D_shard)``.
        """
        _check_spawn_safe_main()
        context = mp.get_context("spawn")
        connections: dict[int, object] = {}
        processes: dict[int, object] = {}
        expected = set(targets)
        registered: set[int] = set()
        deferred: list[tuple[int, dict]] = []
        results: dict[int, dict] = {}
        try:
            for shard in targets:
                parent_conn, child_conn = context.Pipe()
                payload = self._payload_for(
                    payloads[shard], query_obj, config_obj, telemetry=True
                )
                process = context.Process(
                    target=shard_worker_main,
                    args=(child_conn, shard, payload),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                connections[shard] = parent_conn
                processes[shard] = process
            live = dict(connections)
            by_conn = {conn: shard for shard, conn in connections.items()}
            while live:
                for conn in mp.connection.wait(list(live.values())):
                    shard = by_conn[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        raise ShardingError(
                            f"shard {shard} worker exited without a result"
                        )
                    tag = message[0]
                    if tag == "register":
                        self.router.register(
                            shard, wire.answers_from_obj(message[2])
                        )
                        registered.add(shard)
                        if registered >= expected:
                            for asking_shard, question in deferred:
                                connections[asking_shard].send(
                                    ("reply", self.router.answer(asking_shard, question))
                                )
                            deferred = []
                    elif tag == "ask":
                        question = message[2]
                        if (
                            question.get("kind") == "complete_result"
                            and registered < expected
                        ):
                            deferred.append((shard, question))
                        else:
                            conn.send(("reply", self.router.answer(shard, question)))
                    elif tag == "done":
                        results[shard] = message[2]
                        del live[shard]
                    elif tag == "error":
                        raise ShardingError(
                            f"shard {shard} worker failed:\n{message[2]}"
                        )
                    else:
                        raise ShardingError(
                            f"shard {shard}: unknown message {tag!r}"
                        )
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=10)
        return results

    def _payload_for(
        self, database_obj: dict, query_obj: dict, config_obj: dict, telemetry: bool = False
    ) -> dict:
        return {
            "database": database_obj,
            "query": query_obj,
            "config": config_obj,
            "oracle_latency": self.oracle_latency,
            "telemetry": telemetry and _TELEMETRY.enabled,
        }

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _merge_round(self, report: ShardReport, results: dict[int, dict]) -> bool:
        """Apply every shard's edit log in ascending shard order."""
        round_converged = True
        with _TELEMETRY.span("shard.merge"):
            for shard in sorted(results):
                result = results[shard]
                edits = result["edits"]
                report.edit_logs.setdefault(shard, []).extend(edits)
                applied = self.database.apply_exported(edits)
                report.edits_applied += applied
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("shard.edits_merged", applied)
                shard_report = result["report"]
                report.outcomes.append(
                    ShardOutcome(
                        shard=shard,
                        round=report.rounds,
                        iterations=shard_report["iterations"],
                        converged=shard_report["converged"],
                        edits=len(edits),
                        wrong_answers_removed=len(
                            shard_report["wrong_answers_removed"]
                        ),
                        missing_answers_added=len(
                            shard_report["missing_answers_added"]
                        ),
                        question_count=shard_report["question_count"],
                        total_cost=shard_report["total_cost"],
                        seconds=result.get("seconds", 0.0),
                    )
                )
                round_converged = round_converged and shard_report["converged"]
                # the shard's post-clean answers keep the router's global
                # Q(D) view current for later rounds
                self.router.register(shard, wire.answers_from_obj(result["answers"]))
                snapshot = result.get("telemetry")
                if snapshot:
                    _TELEMETRY.merge(snapshot)
        return round_converged

    def _unfinished_shards(self, query: Query, relevant: set[int]) -> set[int]:
        """Home shards of answers still missing from the merged result.

        One global ``COMPL(Q(D))`` sweep — the convergence check
        Algorithm 3 runs per loop, lifted to the driver.  The merged
        ``Q(D)`` is the union of the shards' final registered answer
        sets (shardability confines every witness to one shard), so the
        sweep costs no ``O(|D|)`` re-evaluation.  Normally returns empty
        after round 1; non-empty means a deletion in one shard uncovered
        missingness only another shard can repair, so that shard runs
        again.
        """
        known = self.router.global_answers()
        rerun: set[int] = set()
        while True:
            missing = self.router.oracle.complete_result(query, known)
            if missing is None:
                return rerun
            home = self.router.home_shard(query, missing)
            rerun.add(home if home is not None else min(relevant))
            known.add(missing)

    def _verify_merge(self, report: ShardReport, pristine: Database) -> None:
        """Replay the shard logs in reverse order; digests must agree."""
        for shard in sorted(report.edit_logs, reverse=True):
            pristine.apply_exported(report.edit_logs[shard])
        merged_digest = self.database.state_digest()
        if pristine.state_digest() != merged_digest:
            raise ShardingError(
                "merge verification failed: replaying shard edit logs in "
                "reverse shard order produced a different state_digest — "
                "shard edits were not disjoint"
            )
