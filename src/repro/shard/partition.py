"""Blocking-key partitioning of a :class:`~repro.db.database.Database`.

A :class:`PartitionSpec` names, per relation, the column whose value is
the *blocking key* (optionally through a named extractor, e.g. the year
of a ``DD.MM.YYYY`` date).  Relations without a key spec are treated as
dimension tables and **replicated** into every shard, so shard-local
query evaluation sees the same joins the global evaluation would.

Shard assignment is ``crc32(canonical_json(key)) % shards`` — a stable,
process-independent hash (Python's builtin ``hash`` is salted per
process, which would scatter the same fact to different shards across
runs and break the deterministic merge).

A conjunctive query is *shardable* under a spec when every witness of
every answer is guaranteed to live inside a single shard:

* no partitioned relation appears in the body — trivially shardable
  (the driver runs such queries on one shard, where the replicated
  relations are complete); or
* every partitioned atom (positive *and* negated) carries the **same
  term** in its relation's key position — all facts of one witness then
  share one key value, hence one shard.  A single positive partitioned
  atom is the common special case.

Negated partitioned atoms whose key term differs (or is a local
wildcard) are not shardable: ``NOT EXISTS`` would be checked against a
fraction of the relation.  See ``docs/sharding.md`` for the full model.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from ..db.database import Database
from ..db.io import _schema_from_dict, _schema_to_dict
from ..db.tuples import Constant, Fact
from ..durability.codec import CodecError, canonical_json
from ..query.ast import Atom, Query


class ShardingError(ValueError):
    """A query/spec combination the sharded driver cannot honor."""


# ---------------------------------------------------------------------------
# key extractors — named, so specs serialize and cross process boundaries
# ---------------------------------------------------------------------------
def _identity(value: Constant) -> Constant:
    return value


def _year(value: Constant) -> Constant:
    """The year of a ``DD.MM.YYYY`` date string (ints pass through)."""
    if isinstance(value, str):
        return int(value.rsplit(".", 1)[-1])
    return int(value)


KEY_EXTRACTORS: dict[str, Callable[[Constant], Constant]] = {
    "identity": _identity,
    "year": _year,
}


def register_key_extractor(name: str, fn: Callable[[Constant], Constant]) -> None:
    """Register a named key extractor (names are the serialized form)."""
    KEY_EXTRACTORS[name] = fn


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KeySpec:
    """The blocking-key column of one partitioned relation."""

    relation: str
    position: int
    extractor: str = "identity"

    def __post_init__(self) -> None:
        if self.extractor not in KEY_EXTRACTORS:
            raise ShardingError(
                f"unknown key extractor {self.extractor!r} "
                f"(registered: {sorted(KEY_EXTRACTORS)})"
            )

    def key_of(self, f: Fact) -> Constant:
        return KEY_EXTRACTORS[self.extractor](f.values[self.position])


@dataclass(frozen=True)
class PartitionSpec:
    """Per-relation blocking keys; unlisted relations are replicated."""

    keys: tuple[KeySpec, ...]
    _by_relation: Mapping[str, KeySpec] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not isinstance(self.keys, tuple):
            object.__setattr__(self, "keys", tuple(self.keys))
        by_relation = {}
        for spec in self.keys:
            if spec.relation in by_relation:
                raise ShardingError(f"duplicate key spec for {spec.relation!r}")
            by_relation[spec.relation] = spec
        object.__setattr__(self, "_by_relation", by_relation)

    # -- structure -------------------------------------------------------
    @property
    def partitioned_relations(self) -> frozenset[str]:
        return frozenset(self._by_relation)

    def key_spec(self, relation: str) -> Optional[KeySpec]:
        return self._by_relation.get(relation)

    def key_of(self, f: Fact) -> Optional[Constant]:
        """The blocking key of *f*, or ``None`` for replicated relations."""
        spec = self._by_relation.get(f.relation)
        return None if spec is None else spec.key_of(f)

    def shard_of(self, f: Fact, shards: int) -> Optional[int]:
        """The shard index of *f* (``None`` = replicated everywhere)."""
        key = self.key_of(f)
        if key is None:
            return None
        return shard_of_key(key, shards)

    # -- shardability ----------------------------------------------------
    def partitioned_atoms(self, query: Query) -> list[Atom]:
        return [a for a in query.atoms if a.relation in self._by_relation]

    def is_shardable(self, query: Query) -> bool:
        """Whether every witness of *query* is confined to one shard."""
        positive = self.partitioned_atoms(query)
        negated = [
            a for a in query.negated_atoms if a.relation in self._by_relation
        ]
        if not positive and not negated:
            return True
        if not positive:
            return False  # negation against a fraction of the relation
        key_terms = {
            atom.terms[self._by_relation[atom.relation].position]
            for atom in positive + negated
        }
        return len(key_terms) == 1

    def require_shardable(self, query: Query) -> None:
        if not self.is_shardable(query):
            raise ShardingError(
                f"query {query.name!r} is not shardable under this partition "
                "spec: its partitioned atoms do not share one blocking-key "
                "term, so a witness could span shards (see docs/sharding.md)"
            )

    # -- partitioning ----------------------------------------------------
    def partition_payloads(self, database: Database, shards: int) -> list[dict]:
        """Split *database* into *shards* JSON-serializable payloads.

        Each payload is the ``canonical=False`` database form: schema +
        ``{relation: [row, ...]}``.  Partitioned relations are split by
        blocking key; replicated relations share one row list across all
        payloads (serialization copies them per worker).  Deliberately
        no :class:`Database` construction and no canonical sort — this
        runs in the parent and is the serial fraction of a sharded
        clean.
        """
        if shards < 1:
            raise ShardingError(f"need at least one shard, got {shards}")
        schema_obj = _schema_to_dict(database.schema)
        buckets: dict[str, list[list[list[Constant]]]] = {}
        shared: dict[str, list[list[Constant]]] = {}
        # distinct blocking keys are few (e.g. tournament years) while
        # facts are many: memoize key -> shard so the per-fact cost is a
        # dict hit, not a crc32 over canonical JSON
        shard_by_key: dict[Constant, int] = {}
        for rel in database.schema:
            spec = self._by_relation.get(rel.name)
            if spec is None:
                shared[rel.name] = [list(f.values) for f in database.facts(rel.name)]
                continue
            per_shard: list[list[list[Constant]]] = [[] for _ in range(shards)]
            extract = KEY_EXTRACTORS[spec.extractor]
            position = spec.position
            for f in database.facts(rel.name):
                key = extract(f.values[position])
                index = shard_by_key.get(key)
                if index is None:
                    index = shard_by_key[key] = shard_of_key(key, shards)
                per_shard[index].append(list(f.values))
            buckets[rel.name] = per_shard
        payloads = []
        for index in range(shards):
            facts: dict[str, list[list[Constant]]] = dict(shared)
            for relation, per_shard in buckets.items():
                facts[relation] = per_shard[index]
            payloads.append({"schema": schema_obj, "facts": facts})
        return payloads

    def partition_database(
        self, database: Database, shards: int
    ) -> list[Database]:
        """Split *database* into shard :class:`Database` instances.

        The convenience form for in-process use and tests; the driver
        itself ships :meth:`partition_payloads` to workers instead.
        """
        return [
            payload_to_database(payload)
            for payload in self.partition_payloads(database, shards)
        ]

    # -- serialization ---------------------------------------------------
    def to_obj(self) -> list[dict]:
        return [
            {"relation": k.relation, "position": k.position, "extractor": k.extractor}
            for k in self.keys
        ]

    @classmethod
    def from_obj(cls, obj: Iterable[dict]) -> "PartitionSpec":
        try:
            return cls(
                tuple(
                    KeySpec(o["relation"], o["position"], o.get("extractor", "identity"))
                    for o in obj
                )
            )
        except (KeyError, TypeError) as error:
            raise CodecError(f"malformed partition spec {obj!r}") from error


def shard_of_key(key: Constant, shards: int) -> int:
    """Stable shard index of a blocking-key value (crc32, not ``hash``)."""
    return zlib.crc32(canonical_json(key).encode("utf-8")) % shards


def payload_to_database(payload: dict) -> Database:
    """Rebuild a shard payload (see :meth:`PartitionSpec.partition_payloads`)."""
    try:
        schema = _schema_from_dict(payload["schema"])
        database = Database(schema)
        for relation, rows in payload["facts"].items():
            database.bulk_load(relation, rows)
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed shard payload: {error}") from error
    return database
