"""The parent-side oracle router for sharded cleaning.

Worker processes never talk to the crowd directly: every question they
would ask travels to the parent as a wire object, is answered here
against **one** oracle, and the reply travels back.  That buys three
things at once:

* **Cross-shard dedup.**  The router's oracle is an
  :class:`~repro.oracle.base.AccountingOracle` (or a board-backed
  :class:`~repro.server.sharing.SharedOracle`), so a fact or answer any
  shard already paid for is answered free for every other shard — the
  same "questions are never repeated" guarantee the paper gives one
  session, extended across the worker fleet.
* **One deterministic answer source.**  Open questions
  (``COMPL(α, Q)``) enumerate ground-truth assignments whose order
  depends on the process's hash seed; answering them all in the parent
  makes completions identical whether the clean ran with 1 shard or 8.
* **Scoped completeness.**  ``COMPL(Q(D))`` is a *global* question —
  "name an answer missing from Q(D)" — but each worker only holds its
  shard of ``D``.  The router unions every shard's reported answer set
  into the global ``Q(D)``, and routes each genuinely missing answer to
  its *home shard* (the shard holding the blocking key of its
  ground-truth witness); other shards are told the result is complete.

Workers therefore **register** their initial answer sets before any
``complete_result`` is answered (the driver enforces the barrier), and
each ``complete_result`` call refreshes the asking shard's set.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..db.tuples import Fact
from ..oracle.base import AccountingOracle, Oracle
from ..query.ast import Query, Var
from ..query.evaluator import Answer, answer_to_partial
from ..telemetry import TELEMETRY as _TELEMETRY
from . import wire
from .partition import PartitionSpec
from ..durability.codec import CodecError


class QuestionRouter:
    """Answer shard workers' questions from one parent-side oracle."""

    def __init__(
        self,
        oracle: Oracle,
        spec: PartitionSpec,
        shards: int,
        *,
        board=None,
    ) -> None:
        self.spec = spec
        self.shards = shards
        if board is not None:
            from ..server.sharing import SharedOracle

            backend = (
                oracle.backend if isinstance(oracle, AccountingOracle) else oracle
            )
            log = oracle.log if isinstance(oracle, AccountingOracle) else None
            self.oracle = SharedOracle(backend, board, log=log)
        elif isinstance(oracle, AccountingOracle):
            self.oracle = oracle
        else:
            self.oracle = AccountingOracle(oracle)
        #: each shard's latest reported answer set (registration + every
        #: complete_result refresh); the union is the global ``Q(D)``
        self._reported: dict[int, set[Answer]] = {}
        #: per shard: missing answers routed to a different home shard
        self._skip: dict[int, set[Answer]] = {}
        self._home_cache: dict[tuple[Query, Answer], Optional[int]] = {}
        #: wire decoding builds a fresh ``Query`` per question; intern
        #: them so per-query-object oracle memoization (e.g.
        #: ``PerfectOracle``'s ground-truth answer cache) still hits
        self._query_intern: dict[Query, Query] = {}
        #: resolves the :data:`~repro.shard.wire.SESSION_QUERY` marker
        #: workers send in place of the query they are cleaning
        self.session_query: Optional[Query] = None

    def intern_query(self, query: Query) -> Query:
        """The canonical instance of *query* for oracle calls."""
        return self._query_intern.setdefault(query, query)

    def global_answers(self) -> set[Answer]:
        """The union of every shard's latest reported ``Q(D_shard)``.

        For a shardable query this *is* the merged ``Q(D)`` — every
        witness lives inside one shard — so the driver's convergence
        sweep never has to re-evaluate the merged database.
        """
        out: set[Answer] = set()
        for reported in self._reported.values():
            out |= reported
        return out

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, shard: int, answers: Iterable[Answer]) -> None:
        """Record *shard*'s current ``Q(D_shard)`` for global scoping."""
        self._reported[shard] = set(answers)

    # ------------------------------------------------------------------
    # question dispatch
    # ------------------------------------------------------------------
    def answer(self, shard: int, question_obj: dict) -> dict:
        """Answer one wire-encoded question from *shard*."""
        question = wire.question_from_obj(
            question_obj, session_query=self.session_query
        )
        kind = question["kind"]
        if "query" in question:
            question["query"] = self.intern_query(question["query"])
        if _TELEMETRY.enabled:
            _TELEMETRY.count("shard.questions_routed")
        if kind == "verify_fact":
            value = self.oracle.verify_fact(question["fact"])
        elif kind == "verify_facts":
            value = self.oracle.verify_facts(question["facts"])
        elif kind == "verify_answer":
            value = self.oracle.verify_answer(question["query"], question["answer"])
        elif kind == "verify_candidate":
            value = self.oracle.verify_candidate(
                question["query"], question["partial"]
            )
        elif kind == "complete_assignment":
            value = self.oracle.complete_assignment(
                question["query"], question["partial"]
            )
        elif kind == "complete_result":
            value = self._scoped_complete_result(
                shard, question["query"], question["known"]
            )
        else:
            raise CodecError(f"unknown question kind {kind!r}")
        return wire.reply_to_obj(kind, value)

    # ------------------------------------------------------------------
    # COMPL(Q(D)) scoping
    # ------------------------------------------------------------------
    def _scoped_complete_result(
        self, shard: int, query: Query, known: Iterable[Answer]
    ) -> Optional[Answer]:
        self._reported[shard] = set(known)
        skip = self._skip.setdefault(shard, set())
        while True:
            global_known = set(skip)
            for reported in self._reported.values():
                global_known |= reported
            missing = self.oracle.complete_result(query, global_known)
            if missing is None:
                return None
            home = self.home_shard(query, missing)
            if home is None or home == shard:
                # the asking shard will repair it; count it as reported so
                # a sibling asking before the repair lands does not race
                # to re-discover it
                self._reported[shard].add(missing)
                return missing
            if _TELEMETRY.enabled:
                _TELEMETRY.count("shard.completions_rerouted")
            skip.add(missing)

    def home_shard(self, query: Query, answer: Answer) -> Optional[int]:
        """The shard holding *answer*'s ground-truth witness.

        Completes the answer's embedded partial assignment against the
        oracle (charged once per distinct answer — the completion is
        exactly the witness an insertion repair needs anyway) and maps
        the first partitioned witness fact's blocking key to its shard.
        ``None`` means the witness touches no partitioned relation, so
        any shard can repair it identically.
        """
        key = (query, answer)
        if key in self._home_cache:
            return self._home_cache[key]
        home: Optional[int] = None
        partial = answer_to_partial(query, answer)
        if partial is not None:
            assignment = self.oracle.complete_assignment(query, partial)
            if assignment is not None:
                for atom in query.atoms:
                    fact = Fact(
                        atom.relation,
                        tuple(
                            assignment.get(t, t) if isinstance(t, Var) else t
                            for t in atom.terms
                        ),
                    )
                    shard = self.spec.shard_of(fact, self.shards)
                    if shard is not None:
                        home = shard
                        break
        self._home_cache[key] = home
        return home
