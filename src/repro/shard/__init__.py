"""Sharded multiprocess cleaning: partition by blocking key, clean
shards in parallel worker processes, merge edit logs deterministically.

See ``docs/sharding.md`` for the partitioning model, question-routing
protocol, and the conditions under which a sharded clean is
bit-identical (``state_digest``) to a single-process one.
"""

from .driver import ShardedQOCO, ShardOutcome, ShardReport
from .partition import (
    KeySpec,
    PartitionSpec,
    ShardingError,
    payload_to_database,
    register_key_extractor,
    shard_of_key,
)
from .router import QuestionRouter
from .worker import LatencyOracle, ProxyOracle, run_shard, shard_worker_main

__all__ = [
    "KeySpec",
    "LatencyOracle",
    "PartitionSpec",
    "ProxyOracle",
    "QuestionRouter",
    "ShardOutcome",
    "ShardReport",
    "ShardedQOCO",
    "ShardingError",
    "payload_to_database",
    "register_key_extractor",
    "run_shard",
    "shard_of_key",
    "shard_worker_main",
]
