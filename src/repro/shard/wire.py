"""Wire format for everything that crosses the shard process boundary.

Workers and the parent exchange plain JSON-style objects built from the
:mod:`repro.durability.codec` primitives, so the protocol inherits the
codec's lossless round-trip guarantees (negated atoms, inequalities,
float/negative constants) and stays pickle- and spawn-safe by
construction — no live strategy objects, backends, or oracles ever
travel.

* :func:`config_to_obj` / :func:`config_from_obj` map a
  :class:`~repro.core.qoco.QOCOConfig` onto registry *names*
  (``DELETION_STRATEGIES`` / ``SPLIT_STRATEGIES`` / the estimator
  registry / backend names); configs carrying live objects that have no
  registered name are rejected up front rather than mis-pickled.
* :func:`question_to_obj` / :func:`question_from_obj` and
  :func:`reply_to_obj` / :func:`reply_from_obj` encode the five oracle
  question kinds and their answers for the parent-side router.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.deletion import DELETION_STRATEGIES
from ..core.insertion import InsertionConfig
from ..core.qoco import QOCOConfig
from ..core.registry import REGISTRY, RegistryError
from ..core.split import SPLIT_STRATEGIES
from ..durability import codec
from ..durability.codec import CodecError
from ..oracle.enumeration import Chao92Estimator, CompletionEstimator, ExactCompletion
from .partition import ShardingError

#: Estimator factories by wire name (the analogue of the strategy
#: registries for the enumeration black-box).
ESTIMATOR_FACTORIES: dict[str, Callable[[], CompletionEstimator]] = {
    "Exact": ExactCompletion,
    "Chao92": Chao92Estimator,
}


def _registry_name(registry: Mapping[str, type], value: Any, what: str) -> str:
    for name, cls in registry.items():
        if type(value) is cls:
            return name
    raise ShardingError(
        f"{what} {value!r} has no registered wire name; sharded cleaning "
        f"needs one of {sorted(registry)}"
    )


def _strategy_name(kind: str, registry: Mapping[str, type], spec: Any, what: str) -> str:
    """The wire name of a strategy field: strings validate against the
    unified registry, instances reverse-map through the legacy table."""
    if isinstance(spec, str):
        try:
            REGISTRY.resolve(kind, spec)
        except RegistryError as error:
            raise ShardingError(str(error)) from error
        return spec
    return _registry_name(registry, spec, what)


def _planner_name(spec: Any) -> Any:
    """Planner wire form: ``None`` or a registry name — live planner
    instances hold locks, RNGs, and shared cost models; they do not
    cross the process boundary."""
    if spec is None:
        return None
    if isinstance(spec, str):
        try:
            REGISTRY.resolve("planner", spec)
        except RegistryError as error:
            raise ShardingError(str(error)) from error
        return spec
    raise ShardingError(
        f"planner {spec!r} cannot cross the process boundary; pass a "
        f"registry name (one of {REGISTRY.names('planner')})"
    )


def config_to_obj(config: QOCOConfig) -> dict:
    """Encode a :class:`QOCOConfig` for a worker process."""
    if config.scheduler_factory is not None:
        raise ShardingError(
            "scheduler_factory cannot cross the process boundary; shard "
            "workers run the synchronous loop (dispatch engines live in "
            "the parent)"
        )
    if not isinstance(config.backend, str):
        raise ShardingError(
            f"backend must be a registered name to cross the process "
            f"boundary, got instance {config.backend!r}"
        )
    estimator_name = None
    for name, factory in ESTIMATOR_FACTORIES.items():
        if config.estimator_factory is factory:
            estimator_name = name
            break
    if estimator_name is None:
        raise ShardingError(
            f"estimator_factory {config.estimator_factory!r} has no "
            f"registered wire name; use one of {sorted(ESTIMATOR_FACTORIES)}"
        )
    return {
        "deletion_strategy": _strategy_name(
            "deletion", DELETION_STRATEGIES, config.deletion, "deletion strategy"
        ),
        "split_strategy": _strategy_name(
            "split", SPLIT_STRATEGIES, config.split, "split strategy"
        ),
        "planner": _planner_name(config.planner),
        "estimator": estimator_name,
        "insertion": {
            "max_candidates_per_subquery": config.insertion.max_candidates_per_subquery,
            "max_subqueries": config.insertion.max_subqueries,
        },
        "max_iterations": config.max_iterations,
        "max_completions_per_phase": config.max_completions_per_phase,
        "minimize_query": config.minimize_query,
        "use_incremental": config.use_incremental,
        "backend": config.backend,
        "seed": config.seed,
        "completion_width": config.completion_width,
    }


def config_from_obj(obj: dict) -> QOCOConfig:
    try:
        return QOCOConfig(
            deletion=REGISTRY.resolve("deletion", obj["deletion_strategy"]),
            split=REGISTRY.resolve("split", obj["split_strategy"]),
            planner=obj.get("planner"),
            estimator_factory=ESTIMATOR_FACTORIES[obj["estimator"]],
            insertion=InsertionConfig(
                max_candidates_per_subquery=obj["insertion"][
                    "max_candidates_per_subquery"
                ],
                max_subqueries=obj["insertion"]["max_subqueries"],
            ),
            max_iterations=obj["max_iterations"],
            max_completions_per_phase=obj["max_completions_per_phase"],
            minimize_query=obj["minimize_query"],
            use_incremental=obj["use_incremental"],
            backend=obj["backend"],
            seed=obj["seed"],
            completion_width=obj["completion_width"],
        )
    except (KeyError, TypeError, RegistryError) as error:
        raise CodecError(f"malformed config object {obj!r}") from error


# ---------------------------------------------------------------------------
# oracle questions and replies
# ---------------------------------------------------------------------------
#: The wire stand-in for "the query this shard session is cleaning".
#: Most questions carry the session query verbatim; eliding it saves an
#: encode + parse per question — the parent router's dominant per-question
#: cost — and the router substitutes its (interned) session query back.
SESSION_QUERY = "@session"


def question_to_obj(kind: str, *, session_query: Any = None, **parts: Any) -> dict:
    """Encode one oracle question for the router.

    ``kind`` is the :class:`~repro.oracle.questions.QuestionKind` value;
    *parts* are the raw domain objects (``fact=``, ``facts=``,
    ``query=``, ``answer=``, ``partial=``, ``known=``).  A query that
    *is* the declared *session_query* wires as the :data:`SESSION_QUERY`
    marker instead of a full encoding (split subqueries still travel
    whole).
    """
    obj: dict[str, Any] = {"kind": kind}
    if "fact" in parts:
        obj["fact"] = codec.fact_to_obj(parts["fact"])
    if "facts" in parts:
        obj["facts"] = [codec.fact_to_obj(f) for f in parts["facts"]]
    if "query" in parts:
        if session_query is not None and parts["query"] is session_query:
            obj["query"] = SESSION_QUERY
        else:
            obj["query"] = codec.query_to_obj(parts["query"])
    if "answer" in parts:
        obj["answer"] = codec.answer_to_obj(parts["answer"])
    if "partial" in parts:
        obj["partial"] = codec.assignment_to_obj(parts["partial"])
    if "known" in parts:
        obj["known"] = sorted(
            (codec.answer_to_obj(a) for a in parts["known"]),
            key=codec.canonical_json,
        )
    return obj


def question_from_obj(obj: dict, *, session_query: Any = None) -> dict:
    """Decode a question back into domain objects (keyed like the input).

    *session_query* resolves the :data:`SESSION_QUERY` marker; a marker
    with no session query declared is a protocol error.
    """
    try:
        decoded: dict[str, Any] = {"kind": obj["kind"]}
        if "fact" in obj:
            decoded["fact"] = codec.fact_from_obj(obj["fact"])
        if "facts" in obj:
            decoded["facts"] = [codec.fact_from_obj(o) for o in obj["facts"]]
        if "query" in obj:
            if obj["query"] == SESSION_QUERY:
                if session_query is None:
                    raise CodecError(
                        "question references the session query but none "
                        "was declared to the router"
                    )
                decoded["query"] = session_query
            else:
                decoded["query"] = codec.query_from_obj(obj["query"])
        if "answer" in obj:
            decoded["answer"] = codec.answer_from_obj(obj["answer"])
        if "partial" in obj:
            decoded["partial"] = codec.assignment_from_obj(obj["partial"])
        if "known" in obj:
            decoded["known"] = [codec.answer_from_obj(o) for o in obj["known"]]
        return decoded
    except (KeyError, TypeError) as error:
        raise CodecError(f"malformed question object {obj!r}") from error


def reply_to_obj(kind: str, value: Any) -> dict:
    """Encode an oracle reply (shape depends on the question kind)."""
    if value is None or isinstance(value, bool):
        return {"value": value}
    if kind == "verify_facts":
        return {
            "value": [[codec.fact_to_obj(f), verdict] for f, verdict in value.items()]
        }
    if kind == "complete_assignment":
        return {"value": codec.assignment_to_obj(value)}
    if kind == "complete_result":
        return {"value": codec.answer_to_obj(value)}
    raise CodecError(f"unsupported reply {value!r} for question kind {kind!r}")


def reply_from_obj(kind: str, obj: dict) -> Any:
    value = obj["value"]
    if value is None or isinstance(value, bool):
        return value
    if kind == "verify_facts":
        return {codec.fact_from_obj(o): verdict for o, verdict in value}
    if kind == "complete_assignment":
        return codec.assignment_from_obj(value)
    if kind == "complete_result":
        return codec.answer_from_obj(value)
    raise CodecError(f"unsupported reply object {obj!r} for kind {kind!r}")


def answers_to_obj(answers: Sequence) -> list[list]:
    """A deterministic (sorted) encoding of an answer set."""
    return sorted(
        (codec.answer_to_obj(a) for a in answers), key=codec.canonical_json
    )


def answers_from_obj(objs: Sequence) -> list[tuple]:
    return [codec.answer_from_obj(o) for o in objs]


def report_to_obj(report) -> dict:
    """The per-shard slice of a cleaning report a worker sends home."""
    return {
        "query_name": report.query_name,
        "iterations": report.iterations,
        "converged": report.converged,
        "edits": codec.edits_to_obj(report.edits),
        "wrong_answers_removed": [
            codec.answer_to_obj(a) for a in report.wrong_answers_removed
        ],
        "missing_answers_added": [
            codec.answer_to_obj(a) for a in report.missing_answers_added
        ],
        "question_count": report.log.question_count,
        "total_cost": report.log.total_cost,
    }
