"""The shard worker: one QOCO loop over one shard, questions proxied home.

:func:`run_shard` is the mode-independent core — decode the payload,
fork the shard database, run an unchanged :class:`~repro.core.qoco.QOCO`
loop against a :class:`ProxyOracle`, and return the fork's exported edit
log plus the per-shard report slice.  :func:`shard_worker_main` is the
``multiprocessing`` (spawn) entry point that wires the core to a duplex
pipe: it registers the shard's initial answer set, relays questions, and
ships the result (plus a telemetry snapshot for
:meth:`~repro.telemetry.core.Telemetry.merge`) back to the parent.

Everything crossing the boundary is a wire object (see
:mod:`repro.shard.wire`); the worker never pickles strategies, oracles,
or databases.
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Iterable, Mapping, Optional

from ..core.qoco import QOCO
from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..durability import codec
from ..oracle.base import AccountingOracle, Oracle
from ..query.ast import Query, Var
from ..query.backend import resolve_backend
from ..query.evaluator import Answer, Assignment
from . import wire
from .partition import payload_to_database


class ProxyOracle(Oracle):
    """An oracle whose every question is answered by a callable.

    ``ask`` takes a wire-encoded question object and returns the
    wire-encoded reply — a pipe round-trip in process mode, a direct
    :meth:`~repro.shard.router.QuestionRouter.answer` call inline.
    *session_query* (the query this shard is cleaning) wires as a marker
    instead of a full per-question encoding; see
    :data:`~repro.shard.wire.SESSION_QUERY`.
    """

    def __init__(
        self, ask: Callable[[dict], dict], session_query: Optional[Query] = None
    ) -> None:
        self._ask = ask
        self._session_query = session_query

    def _round_trip(self, kind: str, **parts):
        reply = self._ask(
            wire.question_to_obj(kind, session_query=self._session_query, **parts)
        )
        return wire.reply_from_obj(kind, reply)

    def verify_fact(self, fact: Fact) -> bool:
        return self._round_trip("verify_fact", fact=fact)

    def verify_facts(self, facts) -> dict[Fact, bool]:
        return self._round_trip("verify_facts", facts=facts)

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        return self._round_trip("verify_answer", query=query, answer=answer)

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        return self._round_trip("verify_candidate", query=query, partial=partial)

    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        return self._round_trip("complete_assignment", query=query, partial=partial)

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        return self._round_trip("complete_result", query=query, known=known_answers)


class LatencyOracle(Oracle):
    """Adds a fixed wall-clock delay to every question it delegates.

    Models the crowd's response time — the dominant cost of a live
    deployment (§6.2/§7.2), here thousands of times faster than a human.
    Placed *under* the worker's :class:`AccountingOracle`, so only
    questions that actually reach the crowd pay latency (repeats are
    answered free from the cache, as the paper guarantees).  Shards wait
    on their oracles concurrently, which is exactly the parallelism
    Appendix B monetizes; ``benchmarks/bench_shard.py`` turns this on
    via the driver's ``oracle_latency`` knob (default off).
    """

    def __init__(self, backend: Oracle, seconds: float) -> None:
        self.backend = backend
        self.seconds = seconds

    def _wait(self) -> None:
        time.sleep(self.seconds)

    def verify_fact(self, fact: Fact) -> bool:
        self._wait()
        return self.backend.verify_fact(fact)

    def verify_facts(self, facts) -> dict[Fact, bool]:
        self._wait()
        return self.backend.verify_facts(facts)

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        self._wait()
        return self.backend.verify_answer(query, answer)

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        self._wait()
        return self.backend.verify_candidate(query, partial)

    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        self._wait()
        return self.backend.complete_assignment(query, partial)

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        self._wait()
        return self.backend.complete_result(query, known_answers)


def run_shard(
    payload: dict,
    ask: Callable[[dict], dict],
    on_ready: Optional[Callable[[list], None]] = None,
    database: Optional[Database] = None,
) -> dict:
    """Clean one shard payload; return the wire-encoded result.

    *on_ready* (if given) receives the shard's initial answer set —
    wire-encoded, sorted — before any cleaning question is asked, so
    the router can scope ``COMPL(Q(D))`` across all shards.
    """
    start = time.perf_counter()
    if database is None:
        database = payload_to_database(payload["database"])
    query = codec.query_from_obj(payload["query"])
    config = wire.config_from_obj(payload["config"])
    backend = resolve_backend(config.backend)
    if on_ready is not None:
        on_ready(wire.answers_to_obj(backend.evaluate(query, database)))
    fork = database.fork()
    proxy: Oracle = ProxyOracle(ask, session_query=query)
    latency = payload.get("oracle_latency") or 0.0
    if latency > 0.0:
        proxy = LatencyOracle(proxy, latency)
    oracle = AccountingOracle(proxy)
    report = QOCO(fork, oracle, config).clean(query)
    return {
        "report": wire.report_to_obj(report),
        "edits": fork.export_edit_log(),
        "answers": wire.answers_to_obj(backend.evaluate(query, fork)),
        "seconds": time.perf_counter() - start,
    }


def shard_worker_main(conn, shard: int, payload: dict) -> None:
    """``multiprocessing`` entry point (spawn-safe: module-level, plain
    picklable arguments)."""
    from ..telemetry import TELEMETRY

    if payload.get("telemetry"):
        TELEMETRY.enable()

    def ask(question_obj: dict) -> dict:
        conn.send(("ask", shard, question_obj))
        tag, reply = conn.recv()
        if tag != "reply":
            raise RuntimeError(f"shard {shard}: unexpected message {tag!r}")
        return reply

    def on_ready(answers_obj: list) -> None:
        conn.send(("register", shard, answers_obj))

    try:
        result = run_shard(payload, ask, on_ready)
        if payload.get("telemetry"):
            result["telemetry"] = TELEMETRY.snapshot()
        conn.send(("done", shard, result))
    except BaseException:
        try:
            conn.send(("error", shard, traceback.format_exc()))
        except OSError:  # parent already gone; nothing left to report to
            pass
    finally:
        conn.close()


def _echo_main(conn) -> None:
    """Spawn-safety test helper: echo every received object back until
    the ``"stop"`` sentinel arrives."""
    try:
        while True:
            obj = conn.recv()
            if obj == "stop":
                break
            conn.send(obj)
    finally:
        conn.close()
