"""QOCO — query-oriented data cleaning with oracles.

A full reproduction of Bergman, Milo, Novgorodov and Tan,
"Query-Oriented Data Cleaning with Oracles", SIGMOD 2015.

Quickstart::

    from repro import (
        Database, PerfectOracle, AccountingOracle, QOCO, QOCOConfig,
        parse_query, worldcup_database,
    )

    ground_truth = worldcup_database()
    dirty = ...                       # your scraped/dirty instance
    oracle = AccountingOracle(PerfectOracle(ground_truth))
    query = parse_query('q(x) :- games(d, x, y, "Final", u), teams(x, "EU").')
    report = QOCO(dirty, oracle).clean(query)
    print(report.summary())
"""

from .core import (
    QOCO,
    CleaningReport,
    DeletionError,
    InsertionError,
    MinCutSplit,
    NaiveSplit,
    ProvenanceSplit,
    QOCOConfig,
    QOCODeletion,
    QOCOMinusDeletion,
    RandomDeletion,
    RandomSplit,
    crowd_add_missing_answer,
    crowd_remove_wrong_answer,
)
from .db import Database, Edit, Fact, RelationSchema, Schema, delete, fact, insert
from .oracle import (
    AccountingOracle,
    Chao92Estimator,
    Crowd,
    ExactCompletion,
    ImperfectOracle,
    InteractionLog,
    MajorityVote,
    Oracle,
    PerfectOracle,
    QuestionKind,
)
from .query import Atom, Inequality, Query, Var, evaluate, parse_query, witnesses_for
from .telemetry import TELEMETRY, InMemorySink, JSONLSink, Telemetry, telemetry_session
from .datasets import (
    NoiseSpec,
    dbgroup_database,
    inject_result_errors,
    make_dirty,
    worldcup_database,
)

__version__ = "1.0.0"

__all__ = [
    "TELEMETRY",
    "AccountingOracle",
    "Atom",
    "InMemorySink",
    "JSONLSink",
    "Telemetry",
    "telemetry_session",
    "Chao92Estimator",
    "CleaningReport",
    "Crowd",
    "Database",
    "DeletionError",
    "Edit",
    "ExactCompletion",
    "Fact",
    "ImperfectOracle",
    "Inequality",
    "InsertionError",
    "InteractionLog",
    "MajorityVote",
    "MinCutSplit",
    "NaiveSplit",
    "NoiseSpec",
    "Oracle",
    "PerfectOracle",
    "ProvenanceSplit",
    "QOCO",
    "QOCOConfig",
    "QOCODeletion",
    "QOCOMinusDeletion",
    "Query",
    "QuestionKind",
    "RandomDeletion",
    "RandomSplit",
    "RelationSchema",
    "Schema",
    "Var",
    "crowd_add_missing_answer",
    "crowd_remove_wrong_answer",
    "dbgroup_database",
    "delete",
    "evaluate",
    "fact",
    "inject_result_errors",
    "insert",
    "make_dirty",
    "parse_query",
    "witnesses_for",
    "worldcup_database",
]
