"""QOCO — query-oriented data cleaning with oracles.

A full reproduction of Bergman, Milo, Novgorodov and Tan,
"Query-Oriented Data Cleaning with Oracles", SIGMOD 2015.

Quickstart — the stable facade is :mod:`repro.api`::

    import repro.api as qoco
    from repro import Database, PerfectOracle, worldcup_database

    ground_truth = worldcup_database()
    dirty = ...                       # your scraped/dirty instance
    report = qoco.clean(
        dirty,
        'q(x) :- games(d, x, y, "Final", u), teams(x, "EU").',
        PerfectOracle(ground_truth),
    )
    print(report.summary())
"""

import warnings as _warnings

from . import api
from .core import (
    QOCO,
    REGISTRY,
    CleaningReport,
    DeletionError,
    InsertionError,
    MinCutSplit,
    NaiveSplit,
    ParallelQOCO,
    ProvenanceSplit,
    QOCOConfig,
    QOCODeletion,
    QOCOMinusDeletion,
    RandomDeletion,
    RandomSplit,
    RegistryError,
    Report,
    ReportLike,
    StrategyRegistry,
    UCQCleaner,
    crowd_add_missing_answer,
    crowd_remove_wrong_answer,
    resolve_strategy,
)
from .plan import (
    BanditPlanner,
    CapacityScheduler,
    CostModel,
    QuestionPlanner,
    query_signature,
)
from .db import (
    Database,
    DatabaseFork,
    Edit,
    Fact,
    ForkError,
    RelationSchema,
    Schema,
    delete,
    fact,
    insert,
)
from .constraints import (
    FD,
    DenialConstraint,
    OracleRepairer,
    RepairBudget,
    RepairReport,
    Violation,
    find_violations,
    parse_fd,
)
from .ingest import (
    DuplicateRows,
    MixedFormats,
    NoisePipeline,
    Outliers,
    TypePollution,
    standard_noise,
)
from .server import (
    AnswerBoard,
    CleaningSession,
    RepairSession,
    ServerReport,
    SessionManager,
    SessionState,
    TenantPolicy,
)
from .oracle import (
    AccountingOracle,
    Chao92Estimator,
    Crowd,
    ExactCompletion,
    ImperfectOracle,
    InteractionLog,
    MajorityVote,
    Oracle,
    PerfectOracle,
    QuestionKind,
)
from .query import Atom, Inequality, Query, Var, evaluate, parse_query, witnesses_for
from .shard import KeySpec, PartitionSpec, ShardedQOCO
from .telemetry import TELEMETRY, InMemorySink, JSONLSink, Telemetry, telemetry_session
from .datasets import (
    NoiseSpec,
    dbgroup_database,
    inject_result_errors,
    make_dirty,
    worldcup_database,
)

__version__ = "1.1.0"

__all__ = [
    "REGISTRY",
    "TELEMETRY",
    "AccountingOracle",
    "AnswerBoard",
    "Atom",
    "BanditPlanner",
    "CapacityScheduler",
    "Chao92Estimator",
    "CostModel",
    "CleaningReport",
    "CleaningSession",
    "Crowd",
    "Database",
    "DatabaseFork",
    "DeletionError",
    "DenialConstraint",
    "DuplicateRows",
    "Edit",
    "ExactCompletion",
    "FD",
    "Fact",
    "ForkError",
    "ImperfectOracle",
    "InMemorySink",
    "Inequality",
    "InsertionError",
    "InteractionLog",
    "JSONLSink",
    "KeySpec",
    "MajorityVote",
    "MinCutSplit",
    "MixedFormats",
    "NaiveSplit",
    "NoisePipeline",
    "NoiseSpec",
    "Oracle",
    "OracleRepairer",
    "Outliers",
    "ParallelQOCO",
    "PartitionSpec",
    "PerfectOracle",
    "ProvenanceSplit",
    "QOCO",
    "QOCOConfig",
    "QOCODeletion",
    "QOCOMinusDeletion",
    "Query",
    "QuestionKind",
    "QuestionPlanner",
    "RandomDeletion",
    "RandomSplit",
    "RegistryError",
    "RelationSchema",
    "RepairBudget",
    "RepairReport",
    "RepairSession",
    "Report",
    "ReportLike",
    "Schema",
    "ServerReport",
    "SessionManager",
    "SessionState",
    "ShardedQOCO",
    "StrategyRegistry",
    "Telemetry",
    "TenantPolicy",
    "TypePollution",
    "UCQCleaner",
    "Var",
    "Violation",
    "api",
    "crowd_add_missing_answer",
    "crowd_remove_wrong_answer",
    "dbgroup_database",
    "delete",
    "evaluate",
    "fact",
    "find_violations",
    "inject_result_errors",
    "insert",
    "make_dirty",
    "parse_fd",
    "parse_query",
    "query_signature",
    "resolve_strategy",
    "standard_noise",
    "telemetry_session",
    "witnesses_for",
    "worldcup_database",
]

#: renamed/moved names served with a DeprecationWarning instead of breaking
_DEPRECATED = {
    "UnionQOCO": ("UCQCleaner", lambda: __import__(
        "repro.core.ucq", fromlist=["UnionQOCO"]).UnionQOCO),
    "ParallelReport": ("Report", lambda: Report),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        replacement, resolve = _DEPRECATED[name]
        _warnings.warn(
            f"repro.{name} is deprecated; use repro.{replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return resolve()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
