"""Per-tenant admission policies for the multi-tenant cleaning service.

A tenant is whoever owns a cleaning session — the §7 experiments map one
tenant per workload.  The manager admits sessions through a priority
queue and holds each tenant to a :class:`TenantPolicy`:

* ``cost_budget`` — cumulative §7 question units the tenant may spend
  across all of its sessions.  A session whose tenant is already over
  budget is *denied* at admission (it never forks, never asks); a
  session admitted under budget runs to completion — budgets bound
  admission, they never truncate a run half-way (dispatch-mode sessions
  additionally degrade gracefully via :class:`repro.dispatch.Budget`).
* ``deadline`` — simulated wall-clock bound handed to dispatch-mode
  sessions as their engine :class:`~repro.dispatch.policy.Budget`;
  synchronous sessions have no clock and ignore it.
* ``priority`` — admission order among queued sessions (higher first;
  ties run in submission order, so a run is reproducible).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantPolicy:
    """Budget and scheduling knobs for one tenant's sessions."""

    #: cumulative question-unit allowance across the tenant's sessions
    #: (``None`` = unmetered)
    cost_budget: Optional[int] = None
    #: simulated-seconds deadline per dispatched session (``None`` = none)
    deadline: Optional[float] = None
    #: admission priority (higher admits first)
    priority: int = 0


class TenantLedger:
    """Thread-safe per-tenant spend tracking for admission decisions."""

    def __init__(self) -> None:
        self._spent: dict[str, int] = {}
        self._lock = threading.Lock()

    def spent(self, tenant: str) -> int:
        with self._lock:
            return self._spent.get(tenant, 0)

    def snapshot(self) -> dict[str, int]:
        """A copy of every tenant's cumulative spend (for checkpoints)."""
        with self._lock:
            return dict(self._spent)

    def charge(self, tenant: str, cost: int) -> None:
        with self._lock:
            self._spent[tenant] = self._spent.get(tenant, 0) + cost

    def over_budget(self, tenant: str, policy: TenantPolicy) -> bool:
        if policy.cost_budget is None:
            return False
        return self.spent(tenant) >= policy.cost_budget


__all__ = ["TenantLedger", "TenantPolicy"]
