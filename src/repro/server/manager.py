"""The session manager: N concurrent cleaning sessions, one database.

The multi-tenant service the §7 deployment implies: tenants submit
cleaning requests against one shared database; each admitted session
runs an unmodified cleaning loop on a private copy-on-write fork
(:meth:`repro.db.Database.fork`) and commits its edit log back through
an optimistic first-committer-wins protocol:

1. **fork** — taken under the commit lock, O(pending edits);
2. **run** — entirely lock-free: the fork's snapshot is immune to
   concurrent commits (the base copies a shared relation before its
   own first write to it);
3. **commit** — under the lock, the session's touched-fact set is
   intersected with every commit that landed after its fork point.
   Disjoint → the edit log is applied and the commit is recorded.
   Overlapping → the session lost the race: it *replays* on a fresh
   fork of the advanced base (bounded by ``max_replays``).  With a
   reliable oracle replay converges — the ground truth did not move,
   so the replayed session re-derives a compatible edit log (mostly
   from cache and the cross-session answer board, i.e. cheaply).

Cross-session question sharing is on by default: every session answers
closed questions from one :class:`~repro.dispatch.dedup.AnswerBoard`
before paying its oracle, so tenants with overlapping views share the
crowd's work (``server.shared_hits``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..core.qoco import QOCOConfig, resolve_planner
from ..db.database import Database
from ..db.edits import EditKind
from ..db.fork import DatabaseFork
from ..db.tuples import Fact
from ..oracle.base import Oracle
from ..query.ast import Query
from ..telemetry import TELEMETRY as _TELEMETRY
from .policy import TenantLedger, TenantPolicy
from .session import CleaningSession, SessionState
from .sharing import AnswerBoard


@dataclass(frozen=True)
class _CommitRecord:
    """One landed commit: who touched what, at which base version."""

    version: int            # base version after the edit log applied
    touched: frozenset      # facts the committed session inserted/deleted
    session_id: int
    tenant: str


@dataclass
class ServerReport:
    """The outcome of one :meth:`SessionManager.run_all` drain."""

    sessions: list = field(default_factory=list)

    def _count(self, state: SessionState) -> int:
        return sum(1 for s in self.sessions if s.state is state)

    @property
    def committed(self) -> int:
        return self._count(SessionState.COMMITTED)

    @property
    def denied(self) -> int:
        return self._count(SessionState.DENIED)

    @property
    def failed(self) -> int:
        return self._count(SessionState.FAILED)

    @property
    def replays(self) -> int:
        return sum(s.replays for s in self.sessions)

    @property
    def shared_hits(self) -> int:
        return sum(s.shared_hits for s in self.sessions)

    @property
    def total_cost(self) -> int:
        return sum(s.total_cost for s in self.sessions)

    def summary(self) -> str:
        return (
            f"{len(self.sessions)} session(s): {self.committed} committed, "
            f"{self.denied} denied, {self.failed} failed; "
            f"{self.replays} replay(s), {self.shared_hits} shared hit(s), "
            f"{self.total_cost} question units"
        )


class SessionManager:
    """Admits, schedules, and commits concurrent cleaning sessions.

    Parameters
    ----------
    database:
        The shared base.  Must not itself be a fork.
    mode:
        Default execution mode for sessions — ``"sync"`` (direct oracle
        calls) or ``"dispatch"`` (live engine over a worker pool).
    config:
        Default :class:`~repro.core.qoco.QOCOConfig` for sessions that
        do not bring their own.
    share_answers:
        Give every session one cross-session
        :class:`~repro.dispatch.dedup.AnswerBoard` (pass an existing
        board to share beyond this manager, ``False`` to isolate).
    pool:
        Shared :class:`~repro.dispatch.WorkerPool` for dispatch-mode
        sessions (each may also bring its own via ``open_session``).
    max_concurrent:
        Run-slot cap; ``None`` runs every admitted session at once.
    max_replays:
        Conflict replays per session before it is marked ``FAILED``.
    durable_path:
        Directory for the write-ahead log + checkpoints
        (:mod:`repro.durability`).  When set, every commit is appended
        to the WAL — and fsynced, per *sync* — **before** the commit is
        acknowledged, and an initial checkpoint of the base database is
        written at attach time.  ``None`` (default) keeps the server
        purely in-memory.  A directory that already holds durable state
        is refused — resume it with
        :func:`repro.durability.recover_manager` instead.
    sync:
        Fsync policy for the WAL: ``"always"`` (fsync per commit ack,
        default), ``"batch"`` (flush per commit, fsync on checkpoint /
        close), or ``"never"`` (leave it to the OS).
    checkpoint_every:
        Take a synchronous checkpoint after this many WAL records
        (``None`` = only explicit/interval checkpoints).
    checkpoint_interval:
        Run a background :class:`~repro.durability.Checkpointer` thread
        snapshotting every this-many seconds when the log grew.
    """

    def __init__(
        self,
        database: Database,
        *,
        mode: str = "sync",
        config: Optional[QOCOConfig] = None,
        share_answers: Union[bool, AnswerBoard] = True,
        pool=None,
        max_concurrent: Optional[int] = None,
        max_replays: int = 3,
        durable_path: Optional[Union[str, Path]] = None,
        sync: str = "always",
        checkpoint_every: Optional[int] = None,
        checkpoint_interval: Optional[float] = None,
        planner=None,
    ) -> None:
        if isinstance(database, DatabaseFork):
            raise ValueError("the shared base must not itself be a fork")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 (or None)")
        if max_replays < 0:
            raise ValueError("max_replays must be >= 0")
        self.database = database
        self.mode = mode
        self.config = config
        if isinstance(share_answers, AnswerBoard):
            self.board: Optional[AnswerBoard] = share_answers
        else:
            self.board = AnswerBoard() if share_answers else None
        self.pool = pool
        self.max_concurrent = max_concurrent
        self.max_replays = max_replays
        #: Optional cost-aware admission: a planner (name or instance;
        #: see ``QOCOConfig.planner``) whose ``estimate(query)`` orders
        #: equal-priority sessions cheapest-expected-first in
        #: :meth:`run_all`.  ``None`` keeps pure submission order.
        self.planner = resolve_planner(planner)
        self.ledger = TenantLedger()
        self.commit_log: list[_CommitRecord] = []
        self._sessions: list[CleaningSession] = []
        self._queue: list[CleaningSession] = []
        self._commit_lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._next_id = 0
        self._store = None
        self._checkpointer = None
        self._checkpoint_every: Optional[int] = None
        self._board_cursor = 0
        if durable_path is not None:
            from ..durability.store import DurabilityStore

            store = DurabilityStore(durable_path, sync=sync)
            self._attach_durability(
                store,
                checkpoint_every=checkpoint_every,
                checkpoint_interval=checkpoint_interval,
                initial_checkpoint=True,
            )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @property
    def durable(self) -> bool:
        """Is a write-ahead log attached to this manager?"""
        return self._store is not None

    def _attach_durability(
        self,
        store,
        *,
        checkpoint_every: Optional[int] = None,
        checkpoint_interval: Optional[float] = None,
        initial_checkpoint: bool = False,
    ) -> None:
        """Wire a :class:`~repro.durability.DurabilityStore` to commits.

        Called by ``__init__`` (fresh directory, with an initial
        checkpoint so recovery always has a base snapshot) and by
        :func:`repro.durability.recover_manager` (resume: the recovered
        board/ledger are already loaded, the WAL keeps growing).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 (or None)")
        self._store = store
        self._checkpoint_every = checkpoint_every
        self._board_cursor = len(self.board.entries()) if self.board else 0
        if initial_checkpoint:
            with self._commit_lock:
                self._checkpoint_locked()
        if checkpoint_interval is not None:
            from ..durability.checkpoint import Checkpointer

            self._checkpointer = Checkpointer(self, interval=checkpoint_interval)
            self._checkpointer.start()

    def _serialize_state(self) -> dict[str, Any]:
        """The full checkpoint payload (call under the commit lock)."""
        from ..durability import codec

        entries = self.board.entries() if self.board is not None else []
        self._board_cursor = len(entries)
        return {
            "database": codec.database_to_obj(self.database),
            "digest": codec.database_digest(self.database),
            "ledger": self.ledger.snapshot(),
            "board": codec.board_entries_to_obj(entries),
        }

    def _board_delta(self) -> list[list]:
        """Board verdicts published since the last WAL record/checkpoint."""
        from ..durability import codec

        if self.board is None:
            return []
        entries = self.board.entries(self._board_cursor)
        self._board_cursor += len(entries)
        return codec.board_entries_to_obj(entries)

    def _log_commit(self, session: CleaningSession, fork: DatabaseFork) -> None:
        """Append the commit record and make it durable (under the lock).

        This runs *before* the edits touch the base and before the
        caller acknowledges the commit: once :meth:`DurabilityStore.append`
        returns under ``sync="always"``, the session's paid answers and
        certified edits survive any crash.
        """
        start = time.perf_counter()
        self._store.append(
            {
                "type": "commit",
                "session": session.session_id,
                "tenant": session.tenant,
                "cost": session.total_cost,
                "edits": fork.export_edit_log(),
                "board": self._board_delta(),
            }
        )
        if _TELEMETRY.enabled:
            _TELEMETRY.observe(
                "durability.commit_ack_s", time.perf_counter() - start
            )

    def _log_charge(self, session: CleaningSession, spent: int) -> None:
        """Persist a non-committed session's ledger delta + board finds."""
        with self._commit_lock:
            if self._store is None:  # closed between the caller's check and here
                return
            self._store.append(
                {
                    "type": "charge",
                    "session": session.session_id,
                    "tenant": session.tenant,
                    "cost": spent,
                    "board": self._board_delta(),
                }
            )
            self._maybe_checkpoint_locked()

    def checkpoint(self) -> int:
        """Snapshot the full server state and truncate the WAL.

        Returns the checkpoint size in bytes.  Requires a durable
        manager (``durable_path=`` / recovery attach).
        """
        if self._store is None:
            from ..durability.store import DurabilityError

            raise DurabilityError("this manager has no durability store attached")
        with self._commit_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> int:
        return self._store.write_checkpoint(self._serialize_state())

    def _maybe_checkpoint_locked(self) -> None:
        if (
            self._checkpoint_every is not None
            and self._store.records_since_checkpoint >= self._checkpoint_every
        ):
            self._checkpoint_locked()

    def close(self, *, checkpoint: bool = False) -> None:
        """Stop the checkpointer and release the WAL (idempotent).

        With ``checkpoint=True`` a final snapshot is taken first, so
        the next :func:`repro.durability.recover` replays nothing.

        Safe to call concurrently — with other ``close()`` calls (the
        close lock serializes them; later calls are no-ops) and with
        in-flight commits: the store is detached under the commit lock,
        so a commit that already entered :meth:`_try_commit` finishes
        its WAL append + fsync before the log is released, and one that
        arrives after sees ``_store is None`` and commits in-memory
        only.  Previously a close racing a commit could fsync-and-close
        the log file out from under the commit's append.
        """
        with self._close_lock:
            # stop the background thread outside the commit lock — its
            # checkpoint path takes that lock, so joining under it would
            # deadlock
            if self._checkpointer is not None:
                self._checkpointer.stop()
                self._checkpointer = None
            with self._commit_lock:
                if self._store is None:
                    return
                if checkpoint and self._store.records_since_checkpoint:
                    self._checkpoint_locked()
                self._store.sync()
                self._store.close()
                self._store = None

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def open_session(
        self,
        query: Query,
        oracle: Oracle,
        *,
        tenant: str = "default",
        policy: Optional[TenantPolicy] = None,
        config: Optional[QOCOConfig] = None,
        mode: Optional[str] = None,
        pool=None,
        votes_per_closed: int = 1,
    ) -> CleaningSession:
        """Queue one cleaning request; returns the (not yet run) session.

        *oracle* is the tenant's crowd backend — a raw
        :class:`~repro.oracle.base.Oracle`; the manager wraps it with
        accounting (and the shared board) per run attempt.
        """
        session = CleaningSession(
            self._next_id,
            query,
            oracle,
            tenant=tenant,
            policy=policy,
            config=config if config is not None else self.config,
            mode=mode if mode is not None else self.mode,
            board=self.board,
            pool=pool if pool is not None else self.pool,
            votes_per_closed=votes_per_closed,
            submitted_at=self._next_id,
        )
        self._next_id += 1
        self._sessions.append(session)
        self._queue.append(session)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.sessions_opened")
        return session

    def open_repair_session(
        self,
        constraints,
        oracle: Oracle,
        *,
        tenant: str = "default",
        policy: Optional[TenantPolicy] = None,
        strategy: str = "oracle",
        **repair_options,
    ) -> "RepairSession":
        """Queue one constraint-repair request; returns the session.

        *constraints* is anything
        :func:`repro.constraints.ast.as_constraints` accepts (FD
        strings, :class:`~repro.constraints.ast.FD` /
        ``DenialConstraint`` objects, or an iterable).  The session goes
        through the same admission, fork/commit, WAL, and ledger paths
        as a cleaning session — a committed repair is durable and
        crash-recoverable exactly like a committed cleaning run.
        Remaining keyword arguments (``budget=``, ``updates=``,
        ``backend=``, ...) reach the repair strategy.
        """
        from .session import RepairSession

        session = RepairSession(
            self._next_id,
            constraints,
            oracle,
            schema=self.database.schema,
            strategy=strategy,
            repair_options=repair_options,
            tenant=tenant,
            policy=policy,
            config=self.config,
            board=self.board,
            submitted_at=self._next_id,
        )
        self._next_id += 1
        self._sessions.append(session)
        self._queue.append(session)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.repair_sessions_opened")
        return session

    def _admission_cost(self, query: Query) -> float:
        """The planner's expected episode cost for *query* (0.0 without
        a planner or on any estimation failure — never blocks admission)."""
        if self.planner is None:
            return 0.0
        try:
            return float(self.planner.estimate(query))
        except Exception:
            return 0.0

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def run_all(self) -> ServerReport:
        """Run every queued session to a terminal state; returns a report.

        Admission order is (priority desc, expected cost asc when a
        planner is attached, submission order); the actual interleaving
        under ``max_concurrent > 1`` is up to the scheduler, which is
        exactly what the commit protocol makes safe.  Cheapest-first
        among equal priorities minimises mean session wait for the
        shared crowd (shortest-expected-job-first), and falls back to
        0.0 — pure FIFO — for shapes the planner has no data on.
        """
        queued = sorted(
            self._queue,
            key=lambda s: (
                -s.policy.priority,
                self._admission_cost(s.query),
                s.submitted_at,
            ),
        )
        self._queue = []
        if not queued:
            return ServerReport(sessions=list(self._sessions))
        workers = (
            self.max_concurrent
            if self.max_concurrent is not None
            else len(queued)
        )
        with _TELEMETRY.span("server.run_all", sessions=len(queued)):
            if workers == 1:
                for session in queued:
                    self._drive(session)
            else:
                with ThreadPoolExecutor(max_workers=workers) as executor:
                    list(executor.map(self._drive, queued))
        return ServerReport(sessions=list(self._sessions))

    # ------------------------------------------------------------------
    # one session, fork → run → commit (→ replay)
    # ------------------------------------------------------------------
    def drive(self, session: CleaningSession) -> CleaningSession:
        """Run one admitted *session* to a terminal state and return it.

        Unlike :meth:`run_all` this drives a single session without
        draining the queue — the network service admits sessions one
        request at a time and drives each on its own executor thread.
        Thread-safe: forking and committing serialize on the commit
        lock, exactly as under :meth:`run_all`'s thread pool.
        """
        if session in self._queue:
            self._queue.remove(session)
        self._drive(session)
        return session

    def _drive(self, session: CleaningSession) -> None:
        if self.ledger.over_budget(session.tenant, session.policy):
            session.state = SessionState.DENIED
            if _TELEMETRY.enabled:
                _TELEMETRY.count("server.sessions_denied")
            return
        try:
            while True:
                with self._commit_lock:
                    fork = self.database.fork()
                session.run(fork)
                if self._try_commit(session, fork):
                    session.state = SessionState.COMMITTED
                    break
                session.replays += 1
                if _TELEMETRY.enabled:
                    _TELEMETRY.count("server.conflicts")
                    _TELEMETRY.count("server.replays")
                if session.replays > self.max_replays:
                    session.state = SessionState.FAILED
                    break
        except Exception as error:  # the run itself blew up
            session.error = error
            session.state = SessionState.FAILED
            if _TELEMETRY.enabled:
                _TELEMETRY.count("server.session_errors")
        finally:
            spent = session.total_cost
            if spent:
                self.ledger.charge(session.tenant, spent)
                if _TELEMETRY.enabled:
                    _TELEMETRY.observe("server.session_cost", spent)
            if (
                spent
                and self._store is not None
                and session.state is not SessionState.COMMITTED
            ):
                # paid crowd answers outlive a failed commit: persist the
                # tenant's ledger delta and any board verdicts it bought
                self._log_charge(session, spent)

    def _try_commit(self, session: CleaningSession, fork: DatabaseFork) -> bool:
        """First-committer-wins: apply the fork's edit log or report a
        conflict (True = committed)."""
        touched = fork.touched_facts()
        with self._commit_lock:
            if self._conflicts(fork.forked_at_version, touched):
                return False
            if self._store is not None:
                # WAL first: the record is durable (ack-after-fsync under
                # sync="always") before the edits become visible
                self._log_commit(session, fork)
            applied = 0
            for edit in fork.pending_edits:
                if edit.kind is EditKind.INSERT:
                    applied += self.database.insert(edit.fact)
                else:
                    applied += self.database.delete(edit.fact)
            self.commit_log.append(
                _CommitRecord(
                    version=self.database.version,
                    touched=touched,
                    session_id=session.session_id,
                    tenant=session.tenant,
                )
            )
            if self._store is not None:
                self._maybe_checkpoint_locked()
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.commits")
            _TELEMETRY.observe("server.commit_edits", applied)
        return True

    def _conflicts(self, forked_at: int, touched: frozenset[Fact]) -> bool:
        """Did any commit after *forked_at* touch a fact we touched?

        An empty edit log never conflicts (a read-only session commits
        trivially), and commits at or before the fork point are already
        part of the fork's snapshot.
        """
        if not touched:
            return False
        for record in self.commit_log:
            if record.version > forked_at and record.touched & touched:
                return True
        return False


__all__ = ["ServerReport", "SessionManager", "TenantPolicy"]
