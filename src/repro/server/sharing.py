"""Cross-session answer sharing for synchronous sessions.

The dispatch engine consults the :class:`~repro.dispatch.dedup.AnswerBoard`
between its cache probe and the worker pool; synchronous sessions (plain
:class:`~repro.core.qoco.QOCO` driving an oracle directly) get the same
benefit through :class:`SharedOracle` — an accounting oracle that checks
the board before paying the backend for a closed question, and publishes
every verdict it does pay for.

Board keys are the same structural identities
:func:`~repro.dispatch.dedup.question_key` produces for dispatched
requests, so synchronous and dispatched sessions sharing one board
coalesce with each other, not just among themselves.

Open questions (``COMPL``) never touch the board — their answers depend
on run-local context (the known-answer set, the assignment's history).
The board holds *final* verdicts; it is intended for reliable oracles
(the paper's simulated-expert setting).  ``forget()`` clears only the
session-local caches — one tenant's iterative re-poll must not destroy
every other tenant's sharing.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..db.tuples import Constant, Fact
from ..dispatch.dedup import AnswerBoard
from ..oracle.base import AccountingOracle, Oracle
from ..oracle.questions import InteractionLog
from ..query.ast import Query, Var
from ..query.evaluator import Answer
from ..telemetry import TELEMETRY as _TELEMETRY


class SharedOracle(AccountingOracle):
    """An accounting oracle backed by a cross-session answer board.

    Lookup order for a closed question: session-local cache (free),
    then the shared board (free, counted as ``server.shared_hits``),
    then the backend (logged and charged as usual, verdict published).
    """

    def __init__(
        self,
        backend: Oracle,
        board: AnswerBoard,
        log: Optional[InteractionLog] = None,
    ) -> None:
        super().__init__(backend, log)
        self.board = board
        #: closed questions answered free from the board by this session
        self.shared_hits = 0

    def _board_hit(self) -> None:
        self.shared_hits += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.shared_hits")

    def _similar(self, key: tuple) -> Optional[bool]:
        """A renamed twin's published verdict (similarity-enabled boards
        only); republished under the exact key on a hit."""
        probe = getattr(self.board, "get_similar", None)
        value = probe(key) if probe is not None else None
        if value is not None:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("server.similarity_hits")
            self.board.put(key, value)
        return value

    # -- closed questions, board-aware ----------------------------------
    def verify_fact(self, fact: Fact) -> bool:
        cached = self._fact_cache.get(fact)
        if cached is not None:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("oracle.cache_hits")
            return cached
        published = self.board.get(("verify_fact", fact))
        if published is not None:
            self._board_hit()
            self._fact_cache[fact] = published
            return published
        value = super().verify_fact(fact)
        self.board.put(("verify_fact", fact), value)
        return value

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        cached = self._answer_cache.get((query, answer))
        if cached is not None:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("oracle.cache_hits")
            return cached
        key = ("verify_answer", query, answer)
        published = self.board.get(key)
        if published is None:
            published = self._similar(key)
        if published is not None:
            self._board_hit()
            self._answer_cache[(query, answer)] = published
            return published
        value = super().verify_answer(query, answer)
        self.board.put(("verify_answer", query, answer), value)
        return value

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        key = ("verify_candidate", query, frozenset(partial.items()))
        published = self.board.get(key)
        if published is None:
            published = self._similar(key)
        if published is not None:
            self._board_hit()
            return published
        value = super().verify_candidate(query, partial)
        self.board.put(key, value)
        return value


__all__ = ["AnswerBoard", "SharedOracle"]
