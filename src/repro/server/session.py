"""One tenant's cleaning session over a copy-on-write snapshot.

A session is the unit of multi-tenant isolation: it forks the shared
base database (:meth:`repro.db.Database.fork` — O(pending edits), not
O(|D|)), runs an unmodified cleaning loop against the fork, and hands
its edit log back to the :class:`~repro.server.manager.SessionManager`
for the commit protocol.  The loops themselves never learn they are
running on a fork — :class:`~repro.db.DatabaseFork` is a ``Database``.

Two execution modes share the session surface:

* ``"sync"`` — :class:`~repro.core.qoco.QOCO` against the tenant's
  oracle directly (wrapped in a board-aware
  :class:`~repro.server.sharing.SharedOracle` when sharing is on);
* ``"dispatch"`` — :class:`~repro.core.parallel.ParallelQOCO` driven by
  a :class:`~repro.dispatch.engine.DispatchEngine` over a (possibly
  shared) worker pool, with the cross-session
  :class:`~repro.dispatch.dedup.AnswerBoard` plugged into the engine.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.qoco import QOCO, QOCOConfig
from ..core.report import Report
from ..db.fork import DatabaseFork
from ..oracle.base import AccountingOracle, Oracle
from ..query.ast import Query
from ..telemetry import TELEMETRY as _TELEMETRY
from .policy import TenantPolicy
from .sharing import AnswerBoard, SharedOracle


class SessionState(enum.Enum):
    """Lifecycle of a session inside the manager."""

    QUEUED = "queued"        # admitted, waiting for a run slot
    DENIED = "denied"        # tenant over budget: never forked, never asked
    RUNNING = "running"      # cleaning its fork
    COMMITTED = "committed"  # edit log merged into the base database
    FAILED = "failed"        # replay limit hit, or the run itself raised


class CleaningSession:
    """One cleaning request: a query, a tenant, and a private fork.

    Sessions are created by
    :meth:`~repro.server.manager.SessionManager.open_session`; the
    manager owns forking, scheduling, and the commit protocol.  The
    session owns running the cleaning loop on whatever fork it is
    handed — :meth:`run` may be called more than once (conflict replay
    re-runs the session on a fresh fork of the newly-advanced base).
    """

    def __init__(
        self,
        session_id: int,
        query: Query,
        backend: Oracle,
        *,
        tenant: str = "default",
        policy: Optional[TenantPolicy] = None,
        config: Optional[QOCOConfig] = None,
        mode: str = "sync",
        board: Optional[AnswerBoard] = None,
        pool=None,
        votes_per_closed: int = 1,
        submitted_at: int = 0,
    ) -> None:
        if mode not in ("sync", "dispatch"):
            raise ValueError(f"unknown session mode {mode!r}")
        if mode == "dispatch" and pool is None:
            raise ValueError("dispatch-mode sessions need a worker pool")
        self.session_id = session_id
        self.query = query
        self.backend = backend
        self.tenant = tenant
        self.policy = policy if policy is not None else TenantPolicy()
        self.config = config
        self.mode = mode
        self.board = board
        self.pool = pool
        self.votes_per_closed = votes_per_closed
        self.submitted_at = submitted_at
        self.state = SessionState.QUEUED
        self.fork: Optional[DatabaseFork] = None
        self.report: Optional[Report] = None
        self.oracle: Optional[AccountingOracle] = None
        self.replays = 0
        self.error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CleaningSession(#{self.session_id} tenant={self.tenant!r} "
            f"query={self.query.name!r} {self.state.value})"
        )

    @property
    def total_cost(self) -> int:
        """Question units this session has spent (0 before any run)."""
        return self.oracle.log.total_cost if self.oracle is not None else 0

    @property
    def shared_hits(self) -> int:
        """Closed questions this session answered free from the board."""
        if isinstance(self.oracle, SharedOracle):
            return self.oracle.shared_hits
        if self._engine is not None:
            return self._engine.stats.shared_hits
        return 0

    _engine = None  # dispatch engine of the latest run, if any

    # ------------------------------------------------------------------
    def run(self, fork: DatabaseFork) -> Report:
        """Clean the session's query on *fork*; returns the report.

        A fresh oracle wrapper (and, in dispatch mode, a fresh engine)
        is built per run so a conflict replay re-polls nothing stale —
        only the cross-session board survives between attempts.
        """
        self.fork = fork
        self.state = SessionState.RUNNING
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.session_runs")
        if self.mode == "sync":
            report = self._run_sync(fork)
        else:
            report = self._run_dispatch(fork)
        self.report = report
        return report

    def _run_sync(self, fork: DatabaseFork) -> Report:
        if self.board is not None:
            self.oracle = SharedOracle(self.backend, self.board)
        else:
            self.oracle = AccountingOracle(self.backend)
        cleaner = QOCO(fork, self.oracle, self.config)
        return cleaner.clean(self.query)

    def _run_dispatch(self, fork: DatabaseFork) -> Report:
        import random

        from ..core.parallel import ParallelQOCO
        from ..dispatch.engine import DispatchEngine
        from ..dispatch.policy import Budget

        budget = None
        if self.policy.deadline is not None or self.policy.cost_budget is not None:
            budget = Budget(
                max_cost=self.policy.cost_budget,
                deadline=self.policy.deadline,
            )
        seed = self.config.seed if self.config is not None else None
        engine = DispatchEngine(
            self.pool,
            budget=budget,
            votes_per_closed=self.votes_per_closed,
            rng=random.Random(seed),
            shared=self.board,
        )
        self._engine = engine
        self.oracle = AccountingOracle(self.backend)
        cleaner = ParallelQOCO(
            fork,
            self.oracle,
            self.config,
            scheduler_factory=engine.scheduler_factory,
        )
        # the dispatch scheduler already stamps wall_clock and flags a
        # degraded run as converged=False on the report
        return cleaner.clean(self.query)


class RepairSession(CleaningSession):
    """A constraint-repair request riding the session machinery.

    Same lifecycle as a query-cleaning session — fork, run, optimistic
    commit, WAL, tenant ledger — but the work inside :meth:`run` is
    :class:`~repro.constraints.repairer.OracleRepairer` (or another
    registered repair strategy) instead of QOCO.  ``query`` holds the
    first violation query of the constraint set, purely so planner-based
    admission has a shape to estimate; the oracle questions are
    ``TRUE(R(ā))?`` fact verifications, which the shared
    :class:`AnswerBoard` dedupes across tenants exactly as for cleaning.
    """

    def __init__(
        self,
        session_id: int,
        constraints,
        backend: Oracle,
        *,
        schema,
        strategy: str = "oracle",
        repair_options: Optional[dict] = None,
        **kwargs,
    ) -> None:
        from ..constraints.ast import as_constraints
        from ..constraints.violations import violation_queries

        parsed = as_constraints(constraints)
        if not parsed:
            raise ValueError("a repair session needs at least one constraint")
        representative, _ = violation_queries(parsed[0], schema)[0]
        kwargs.pop("mode", None)  # repair runs are always synchronous
        super().__init__(session_id, representative, backend, **kwargs)
        self.constraints = parsed
        self.strategy = strategy
        self.repair_options = dict(repair_options or {})

    def run(self, fork: DatabaseFork):
        from ..core.registry import REGISTRY

        self.fork = fork
        self.state = SessionState.RUNNING
        if _TELEMETRY.enabled:
            _TELEMETRY.count("server.repair_runs")
        if self.board is not None:
            self.oracle = SharedOracle(self.backend, self.board)
        else:
            self.oracle = AccountingOracle(self.backend)
        runner = REGISTRY.resolve("repair", self.strategy)
        report = runner.repair(
            fork, self.oracle, self.constraints, **self.repair_options
        )
        self.report = report
        return report


__all__ = ["CleaningSession", "RepairSession", "SessionState"]
