"""Multi-tenant cleaning service: concurrent sessions, one database.

The paper cleans one query for one curator; a deployment serves many
tenants against one shared database.  This package runs N concurrent
cleaning sessions, each on a copy-on-write fork of the base
(:meth:`repro.db.Database.fork`), with an optimistic
first-committer-wins commit protocol, conflict replay, per-tenant
cost/deadline budgets, and cross-session sharing of closed crowd
answers.  See ``docs/server.md``.
"""

from .manager import ServerReport, SessionManager
from .policy import TenantLedger, TenantPolicy
from .session import CleaningSession, RepairSession, SessionState
from .sharing import AnswerBoard, SharedOracle

__all__ = [
    "AnswerBoard",
    "CleaningSession",
    "RepairSession",
    "ServerReport",
    "SessionManager",
    "SessionState",
    "SharedOracle",
    "TenantLedger",
    "TenantPolicy",
]
