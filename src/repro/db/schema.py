"""Relational schemas.

The paper (Section 2) assumes a relational schema ``S = {R_1, ..., R_m}``
of relation symbols, each with a fixed arity.  We additionally give every
attribute a name so that datasets and error reports stay readable, and an
optional *domain tag* so that noise injection and the naive enumeration
strategy (Proposition 3.4) can draw replacement values from the right
active domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence


class SchemaError(ValueError):
    """Raised for malformed schemas or facts that do not fit a schema."""


@dataclass(frozen=True)
class RelationSchema:
    """A relation symbol with named attributes.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"games"``.
    attributes:
        Attribute names, e.g. ``("date", "winner", ...)``.  The arity of
        the relation is ``len(attributes)``.
    domains:
        Optional per-attribute domain tags.  Attributes sharing a tag are
        assumed to draw values from the same active domain (used by the
        noise model to fabricate plausible false facts).  Defaults to one
        distinct tag per attribute.
    """

    name: str
    attributes: tuple[str, ...]
    domains: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name!r} has duplicate attribute names")
        if not self.domains:
            object.__setattr__(
                self, "domains", tuple(f"{self.name}.{a}" for a in self.attributes)
            )
        elif len(self.domains) != len(self.attributes):
            raise SchemaError(
                f"relation {self.name!r}: {len(self.domains)} domain tags for "
                f"{len(self.attributes)} attributes"
            )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute_index(self, attribute: str) -> int:
        """Position of *attribute*, raising :class:`SchemaError` if absent."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class Schema:
    """A finite set of relation schemas, addressable by name."""

    def __init__(self, relations: Sequence[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        body = ", ".join(str(r) for r in self)
        return f"Schema({body})"

    @classmethod
    def from_dict(cls, spec: Mapping[str, Sequence[str]]) -> "Schema":
        """Build a schema from ``{relation: [attribute, ...]}``."""
        return cls([RelationSchema(name, tuple(attrs)) for name, attrs in spec.items()])
