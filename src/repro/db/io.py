"""Loading and saving databases (CSV directories and JSON files).

The paper's prototype sat on MySQL; a downstream user of this library
needs a way to bring their own tables.  Two interchangeable formats:

* **CSV directory** — one ``<relation>.csv`` per relation with a header
  row of attribute names, plus ``_schema.json`` describing relations,
  attributes and domain tags;
* **single JSON file** — the same content in one document (handy for
  fixtures and small exports).

Values are stored as strings in CSV; a sidecar type row is avoided by
round-tripping through :func:`coerce_value` (ints and floats are
recognized, everything else stays a string) — matching how the datasets
in this package use constants.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from .database import Database
from .schema import RelationSchema, Schema, SchemaError
from .tuples import Constant, Fact

SCHEMA_FILE = "_schema.json"

PathLike = Union[str, Path]


def coerce_value(text: str) -> Constant:
    """Parse a CSV cell back into int/float/str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _schema_to_dict(schema: Schema) -> dict:
    return {
        "relations": [
            {
                "name": rel.name,
                "attributes": list(rel.attributes),
                "domains": list(rel.domains),
            }
            for rel in schema
        ]
    }


def _schema_from_dict(data: dict) -> Schema:
    relations = []
    for spec in data.get("relations", []):
        relations.append(
            RelationSchema(
                spec["name"],
                tuple(spec["attributes"]),
                tuple(spec.get("domains", ())),
            )
        )
    return Schema(relations)


# ---------------------------------------------------------------------------
# CSV directory format
# ---------------------------------------------------------------------------


def save_csv(database: Database, directory: PathLike) -> None:
    """Write one CSV per relation plus ``_schema.json``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / SCHEMA_FILE, "w", encoding="utf-8") as handle:
        json.dump(_schema_to_dict(database.schema), handle, indent=2)
    for rel in database.schema:
        with open(path / f"{rel.name}.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(rel.attributes)
            for fact in sorted(database.facts(rel.name), key=repr):
                writer.writerow([str(v) for v in fact.values])


def load_csv(directory: PathLike) -> Database:
    """Load a database saved by :func:`save_csv`."""
    path = Path(directory)
    schema_path = path / SCHEMA_FILE
    if not schema_path.exists():
        raise SchemaError(f"no {SCHEMA_FILE} in {path}")
    with open(schema_path, encoding="utf-8") as handle:
        schema = _schema_from_dict(json.load(handle))
    database = Database(schema)
    for rel in schema:
        table = path / f"{rel.name}.csv"
        if not table.exists():
            continue  # empty relation
        with open(table, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is not None and tuple(header) != rel.attributes:
                raise SchemaError(
                    f"{table}: header {header} != schema attributes {rel.attributes}"
                )
            for row in reader:
                if len(row) != rel.arity:
                    raise SchemaError(f"{table}: row {row} has wrong arity")
                database.insert(Fact(rel.name, tuple(coerce_value(v) for v in row)))
    return database


# ---------------------------------------------------------------------------
# single-file JSON format
# ---------------------------------------------------------------------------


def save_json(database: Database, file_path: PathLike) -> None:
    """Write the whole database (schema + facts) to one JSON document."""
    document = _schema_to_dict(database.schema)
    document["facts"] = {
        rel.name: [list(fact.values) for fact in sorted(database.facts(rel.name), key=repr)]
        for rel in database.schema
    }
    with open(file_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)


def load_json(file_path: PathLike) -> Database:
    """Load a database saved by :func:`save_json`."""
    with open(file_path, encoding="utf-8") as handle:
        document = json.load(handle)
    schema = _schema_from_dict(document)
    database = Database(schema)
    for relation, rows in document.get("facts", {}).items():
        for row in rows:
            database.insert(Fact(relation, tuple(row)))
    return database
