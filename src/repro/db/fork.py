"""Copy-on-write database forks.

A :class:`DatabaseFork` is a cheap snapshot of a base :class:`Database`
that can be edited independently — the substrate of concurrent cleaning
sessions (:mod:`repro.server`).  Where :meth:`Database.copy` rebuilds
every fact and index bucket (O(|D|)), a fork stores only *references*
to the base's per-relation fact sets and indexes plus two overlay sets
per relation:

* ``added``   — facts inserted on the fork and absent from the snapshot;
* ``removed`` — snapshot facts deleted on the fork.

Reads combine the snapshot with the overlay (``(base − removed) ∪
added``); writes touch only the overlay, so a fork costs O(#relations)
to create and O(pending edits) to maintain, independent of |D|.

Snapshot stability is the base's job: :meth:`Database.fork` marks every
relation copy-on-write, and the base's next effective edit to a marked
relation *replaces* that relation's set/index with a copy before
mutating (``Database._materialize``).  The structures a fork references
are therefore immutable for the fork's lifetime — commits to the base
by other sessions never leak into a running fork, which is exactly the
snapshot isolation the session manager's first-committer-wins protocol
needs.

Version lineage: a fork's :attr:`~Database.version` continues from the
base's stamp at fork time and bumps per effective fork edit, and the
per-relation stamps are inherited the same way.  Derived state built
*on the fork* — planner :class:`~repro.query.planner.Statistics`, the
incremental engine's maintained answers — works unchanged, staleness
checks included.

Every effective fork edit is appended to :attr:`pending_edits`, the
ordered edit log a session later replays onto the base at commit time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from .database import ANY, Database, Pattern, match_indexed
from .edits import Edit, EditKind
from .schema import SchemaError
from .tuples import Constant, Fact


class ForkError(RuntimeError):
    """An unsupported fork operation (e.g. forking a fork)."""


class DatabaseFork(Database):
    """An editable copy-on-write snapshot of a base :class:`Database`.

    Create one with :meth:`Database.fork`.  The fork supports the full
    :class:`Database` read/write interface (matching, domains, listener
    subscriptions, version stamps), plus the fork-specific surface:
    :attr:`base`, :attr:`forked_at_version`, :attr:`pending_edits`,
    :meth:`touched_facts`, and :meth:`delta_size`.
    """

    def __init__(self, base: Database) -> None:
        if isinstance(base, DatabaseFork):
            raise ForkError(
                "forking a fork is not supported: commit it back to its "
                "base (repro.server) or materialize it with .copy() first"
            )
        self.schema = base.schema
        self.base = base
        self.forked_at_version = base.version
        relations, index = base._snapshot_structures()
        self._base_relations = relations
        self._base_index = index
        self._added: dict[str, set[Fact]] = {name: set() for name in relations}
        self._removed: dict[str, set[Fact]] = {name: set() for name in relations}
        self._added_index: dict[str, list[dict[Constant, set[Fact]]]] = {
            name: [defaultdict(set) for _ in range(self.schema.arity(name))]
            for name in relations
        }
        self._version = base.version
        self._relation_versions = {
            name: base.relation_version(name) for name in relations
        }
        self._listeners = []
        self._cow = set()
        self._edit_log: list[Edit] = []

    # ------------------------------------------------------------------
    # fork surface
    # ------------------------------------------------------------------
    @property
    def pending_edits(self) -> tuple[Edit, ...]:
        """The effective edits applied to this fork, in order."""
        return tuple(self._edit_log)

    def touched_facts(self) -> frozenset[Fact]:
        """Every fact some pending edit inserts or deletes."""
        return frozenset(edit.fact for edit in self._edit_log)

    def delta_size(self) -> int:
        """Overlay footprint: |added| + |removed| across relations."""
        return sum(len(s) for s in self._added.values()) + sum(
            len(s) for s in self._removed.values()
        )

    def export_edit_log(self) -> list[dict]:
        """The pending edit log as JSON-serializable objects.

        This is the payload a durable server writes into its WAL commit
        record; :meth:`Database.apply_exported` replays it losslessly
        (``tests/test_durability.py`` pins the round-trip, including
        negative and float-valued facts).
        """
        from ..durability import codec

        return codec.edits_to_obj(self._edit_log)

    def fork(self) -> Database:
        raise ForkError(
            "forking a fork is not supported: commit it back to its "
            "base (repro.server) or materialize it with .copy() first"
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        base = self._base_relations.get(f.relation)
        if base is None:
            return False
        if f in self._added[f.relation]:
            return True
        return f in base and f not in self._removed[f.relation]

    def __len__(self) -> int:
        return sum(self.size(name) for name in self._base_relations)

    def __iter__(self) -> Iterator[Fact]:
        for name in self._base_relations:
            yield from self._iter_relation(name)

    def _iter_relation(self, relation: str) -> Iterator[Fact]:
        removed = self._removed[relation]
        if removed:
            for f in self._base_relations[relation]:
                if f not in removed:
                    yield f
        else:
            yield from self._base_relations[relation]
        yield from self._added[relation]

    def facts(self, relation: str) -> frozenset[Fact]:
        """All facts of *relation* (a snapshot; safe to iterate and mutate)."""
        self._check_relation(relation)
        base = self._base_relations[relation]
        removed = self._removed[relation]
        added = self._added[relation]
        if not removed and not added:
            return frozenset(base)
        return frozenset((base - removed) | added)

    def size(self, relation: str) -> int:
        self._check_relation(relation)
        return (
            len(self._base_relations[relation])
            - len(self._removed[relation])
            + len(self._added[relation])
        )

    def match(self, relation: str, pattern: Pattern) -> Iterator[Fact]:
        """Facts of *relation* matching *pattern* (``None`` = wildcard).

        Matches the base snapshot through its index (filtering the
        removed overlay) and the added overlay through its own index —
        the same index-backed cost profile as :meth:`Database.match`.
        """
        self._check_relation(relation)
        if len(pattern) != self.schema.arity(relation):
            raise SchemaError(
                f"pattern arity {len(pattern)} != arity of {relation!r}"
            )
        bound = [(i, v) for i, v in enumerate(pattern) if v is not ANY]
        removed = self._removed[relation]
        base_matches = match_indexed(
            self._base_relations[relation], self._base_index[relation], bound
        )
        if removed:
            for f in base_matches:
                if f not in removed:
                    yield f
        else:
            yield from base_matches
        yield from match_indexed(
            self._added[relation], self._added_index[relation], bound
        )

    def active_domain(
        self, relation: str | None = None, position: int | None = None
    ) -> set[Constant]:
        """Constants appearing in the fork's effective instance."""
        if relation is None:
            return {value for f in self for value in f.values}
        self._check_relation(relation)
        if position is None:
            return {
                value for f in self._iter_relation(relation) for value in f.values
            }
        domain = set(self._added_index[relation][position])
        base_index = self._base_index[relation][position]
        removed = self._removed[relation]
        if not removed:
            domain.update(base_index)
            return domain
        for value, bucket in base_index.items():
            if value in domain:
                continue
            # the value survives if any base fact carrying it does
            if len(bucket) > len(removed) or any(f not in removed for f in bucket):
                domain.add(value)
        return domain

    def distinct_count(self, relation: str, position: int) -> int:
        """``|active_domain(relation, position)|`` over the overlay view."""
        return len(self.active_domain(relation, position))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if isinstance(other, DatabaseFork):
            return self._effective_relations() == other._effective_relations()
        return self._effective_relations() == other._relations

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{self.size(name)}" for name in self._base_relations
        )
        return (
            f"DatabaseFork({sizes}; +{sum(len(s) for s in self._added.values())}"
            f"/-{sum(len(s) for s in self._removed.values())}"
            f" @v{self.forked_at_version})"
        )

    def _effective_relations(self) -> dict[str, set[Fact]]:
        return {
            name: (self._base_relations[name] - self._removed[name])
            | self._added[name]
            for name in self._base_relations
        }

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, f: Fact) -> bool:
        """Insert a fact into the overlay; return ``True`` if effective."""
        self._validate(f)
        if f in self:
            return False
        edit = Edit(EditKind.INSERT, f)
        for listener in tuple(self._listeners):
            listener.before_change(self, edit)
        relation = f.relation
        if f in self._removed[relation]:
            self._removed[relation].discard(f)
        else:
            self._added[relation].add(f)
            index = self._added_index[relation]
            for position, value in enumerate(f.values):
                index[position][value].add(f)
        self._edit_log.append(edit)
        self._bump(relation)
        for listener in tuple(self._listeners):
            listener.after_change(self, edit)
        return True

    def delete(self, f: Fact) -> bool:
        """Delete a fact from the overlay view; return ``True`` if effective."""
        self._validate(f)
        if f not in self:
            return False
        edit = Edit(EditKind.DELETE, f)
        for listener in tuple(self._listeners):
            listener.before_change(self, edit)
        relation = f.relation
        if f in self._added[relation]:
            self._added[relation].discard(f)
            index = self._added_index[relation]
            for position, value in enumerate(f.values):
                bucket = index[position][value]
                bucket.discard(f)
                if not bucket:
                    del index[position][value]
        else:
            self._removed[relation].add(f)
        self._edit_log.append(edit)
        self._bump(relation)
        for listener in tuple(self._listeners):
            listener.after_change(self, edit)
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_relation(self, relation: str) -> None:
        if relation not in self._base_relations:
            raise SchemaError(f"unknown relation {relation!r}")
