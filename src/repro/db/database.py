"""In-memory database instances.

A :class:`Database` is a set of facts over a :class:`~repro.db.schema.Schema`
with per-position hash indexes so the query evaluator can bind atoms without
scanning whole relations.  It also implements the paper's notion of distance
between instances (size of the symmetric difference, Section 3.2) which
underpins Proposition 3.3 ("every oracle-derived edit moves D closer to
D_G").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional, Sequence

from .edits import Edit, EditKind
from .schema import Schema, SchemaError
from .tuples import Constant, Fact

#: Wildcard marker in match patterns.
ANY = None

Pattern = Sequence[Optional[Constant]]


def match_indexed(
    facts: Iterable[Fact],
    index: Sequence[dict[Constant, set[Fact]]],
    bound: Sequence[tuple[int, Constant]],
) -> Iterator[Fact]:
    """Facts matching the bound positions, via the per-position index.

    The shared core of :meth:`Database.match` and the overlay matching of
    :class:`~repro.db.fork.DatabaseFork`: pick the smallest candidate
    bucket among the bound positions and verify the rest.
    """
    if not bound:
        yield from facts
        return
    buckets = []
    for position, value in bound:
        bucket = index[position].get(value)
        if bucket is None:
            return
        buckets.append(bucket)
    smallest = min(buckets, key=len)
    for f in smallest:
        if all(f.values[i] == v for i, v in bound):
            yield f


class DatabaseListener:
    """Protocol for observers of a :class:`Database`'s edits.

    Listeners are notified only for *effective* edits (ones that change
    ``D``): :meth:`before_change` fires while the database still shows
    the pre-edit state, :meth:`after_change` once the edit (and the
    version bump) has landed.  Both defaults are no-ops so subclasses
    override only the side they need.
    """

    def before_change(self, database: "Database", edit: Edit) -> None:
        """Called before an effective edit mutates the database."""

    def after_change(self, database: "Database", edit: Edit) -> None:
        """Called after an effective edit mutated the database."""


class Database:
    """A mutable set of facts with secondary indexes.

    Facts are validated against the schema on insertion (relation must
    exist, arity must match).  All mutation goes through :meth:`insert` /
    :meth:`delete` (or :class:`~repro.db.edits.Edit`), keeping the indexes
    consistent.

    Every effective mutation bumps a monotone :attr:`version` stamp (plus
    a per-relation stamp), which lets derived state — materialized
    answers, planner statistics — detect staleness in O(1).  Observers
    needing the edits themselves subscribe a :class:`DatabaseListener`;
    incremental view maintenance hangs off this hook.
    """

    def __init__(self, schema: Schema, facts: Iterable[Fact] = ()) -> None:
        self.schema = schema
        self._relations: dict[str, set[Fact]] = {name: set() for name in schema.names}
        # _index[relation][position][value] -> set of facts
        self._index: dict[str, list[dict[Constant, set[Fact]]]] = {
            name: [defaultdict(set) for _ in range(schema.arity(name))]
            for name in schema.names
        }
        self._version = 0
        self._relation_versions: dict[str, int] = {name: 0 for name in schema.names}
        self._listeners: list[DatabaseListener] = []
        # Relations whose fact set / index objects are referenced by a
        # live fork snapshot: they must be replaced (copy-on-write), not
        # mutated in place, before the next effective edit.
        self._cow: set[str] = set()
        for f in facts:
            self.insert(f)

    # ------------------------------------------------------------------
    # change tracking
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone stamp, bumped by every effective insert/delete."""
        return self._version

    def relation_version(self, relation: str) -> int:
        """The version stamp of *relation* alone (for targeted refresh)."""
        self._check_relation(relation)
        return self._relation_versions[relation]

    def subscribe(self, listener: DatabaseListener) -> None:
        """Register *listener* for before/after edit notifications."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: DatabaseListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # basic set interface
    # ------------------------------------------------------------------
    def __contains__(self, f: object) -> bool:
        if not isinstance(f, Fact):
            return False
        relation = self._relations.get(f.relation)
        return relation is not None and f in relation

    def __len__(self) -> int:
        return sum(len(r) for r in self._relations.values())

    def __iter__(self) -> Iterator[Fact]:
        for relation in self._relations.values():
            yield from relation

    def facts(self, relation: str) -> frozenset[Fact]:
        """All facts of *relation* (a snapshot; safe to iterate and mutate)."""
        self._check_relation(relation)
        return frozenset(self._relations[relation])

    def size(self, relation: str) -> int:
        self._check_relation(relation)
        return len(self._relations[relation])

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, f: Fact) -> bool:
        """Insert a fact; return ``True`` if the database changed."""
        self._validate(f)
        if f in self._relations[f.relation]:
            return False
        self._materialize(f.relation)
        edit = self._notify_before(EditKind.INSERT, f)
        self._relations[f.relation].add(f)
        for position, value in enumerate(f.values):
            self._index[f.relation][position][value].add(f)
        self._bump(f.relation)
        self._notify_after(edit)
        return True

    def delete(self, f: Fact) -> bool:
        """Delete a fact; return ``True`` if the database changed."""
        self._validate(f)
        if f not in self._relations[f.relation]:
            return False
        self._materialize(f.relation)
        edit = self._notify_before(EditKind.DELETE, f)
        self._relations[f.relation].discard(f)
        for position, value in enumerate(f.values):
            bucket = self._index[f.relation][position][value]
            bucket.discard(f)
            if not bucket:
                del self._index[f.relation][position][value]
        self._bump(f.relation)
        self._notify_after(edit)
        return True

    def apply(self, edits: Iterable[Edit]) -> int:
        """Apply a sequence of edits; return the number that changed D."""
        changed = 0
        for edit in edits:
            if edit.kind is EditKind.INSERT:
                changed += self.insert(edit.fact)
            else:
                changed += self.delete(edit.fact)
        return changed

    def bulk_load(self, relation: str, rows: Iterable[Sequence[Constant]]) -> int:
        """Insert many *relation* rows at once; return how many changed D.

        Semantically an :meth:`insert` loop (arity-checked, duplicates
        skipped) with the per-fact overhead amortized: copy-on-write
        materialization and version bumps are paid once per batch, and
        listener dispatch is skipped entirely — so with listeners
        subscribed this falls back to the loop, keeping maintained views
        exact.  The fast path for rebuilding shard databases in worker
        processes.
        """
        self._check_relation(relation)
        if self._listeners:
            changed = 0
            for row in rows:
                changed += self.insert(Fact(relation, tuple(row)))
            return changed
        arity = self.schema.arity(relation)
        self._materialize(relation)
        live = self._relations[relation]
        index = self._index[relation]
        before = len(live)
        for row in rows:
            f = Fact(relation, tuple(row))
            if f.arity != arity:
                raise SchemaError(
                    f"fact {f} has arity {f.arity}, relation {relation!r} "
                    f"expects {arity}"
                )
            if f in live:
                continue
            live.add(f)
            for position, value in enumerate(f.values):
                index[position][value].add(f)
        changed = len(live) - before
        if changed:
            self._bump(relation)
        return changed

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def match(self, relation: str, pattern: Pattern) -> Iterator[Fact]:
        """Facts of *relation* matching *pattern* (``None`` = wildcard).

        Uses the position index on the most selective bound position and
        verifies the remaining positions, so fully unbound patterns cost a
        scan and bound ones a hash lookup.
        """
        self._check_relation(relation)
        if len(pattern) != self.schema.arity(relation):
            raise SchemaError(
                f"pattern arity {len(pattern)} != arity of {relation!r}"
            )
        bound = [(i, v) for i, v in enumerate(pattern) if v is not ANY]
        yield from match_indexed(
            self._relations[relation], self._index[relation], bound
        )

    def count_matches(self, relation: str, pattern: Pattern) -> int:
        return sum(1 for _ in self.match(relation, pattern))

    # ------------------------------------------------------------------
    # domains and comparison
    # ------------------------------------------------------------------
    def active_domain(self, relation: str | None = None, position: int | None = None) -> set[Constant]:
        """Constants appearing in the database.

        With *relation* and *position* the domain is restricted to that
        column; with only *relation* to that relation; with neither, the
        whole instance.
        """
        if relation is None:
            return {value for f in self for value in f.values}
        self._check_relation(relation)
        if position is None:
            return {value for f in self._relations[relation] for value in f.values}
        return set(self._index[relation][position])

    def distinct_count(self, relation: str, position: int) -> int:
        """``|active_domain(relation, position)|`` without building the set.

        The per-position index keeps one bucket per live value, so this
        is a single ``len`` — cheap enough to recompute statistics after
        every edit.
        """
        self._check_relation(relation)
        return len(self._index[relation][position])

    def domain_values(self, domain_tag: str) -> set[Constant]:
        """Constants from every column whose schema domain tag matches."""
        values: set[Constant] = set()
        for rel_schema in self.schema:
            for position, tag in enumerate(rel_schema.domains):
                if tag == domain_tag:
                    values |= self.active_domain(rel_schema.name, position)
        return values

    def difference(self, other: "Database") -> set[Fact]:
        """Facts in ``self`` but not in *other*."""
        return {f for f in self if f not in other}

    def symmetric_difference(self, other: "Database") -> set[Fact]:
        return self.difference(other) | other.difference(self)

    def distance(self, other: "Database") -> int:
        """``|D − D'|``: size of the symmetric difference (Section 3.2)."""
        return len(self.symmetric_difference(other))

    def copy(self) -> "Database":
        """A fully independent deep copy — O(|D|) facts and index work.

        For a cheap snapshot that shares structure with this instance,
        see :meth:`fork`.
        """
        return Database(self.schema, self)

    def state_digest(self) -> str:
        """A stable content hash of this instance (schema + facts).

        Two databases holding the same facts digest identically,
        whatever their edit history — the equality the durability
        layer's crash-recovery matrix and the benchmark baselines
        compare on.
        """
        from ..durability import codec

        return codec.database_digest(self)

    def apply_exported(self, edit_objs: Iterable[dict]) -> int:
        """Apply an edit log exported by :meth:`DatabaseFork.export_edit_log`.

        Returns the number of edits that changed ``D`` (idempotent
        edits replay safely).
        """
        from ..durability import codec

        return self.apply(codec.edits_from_obj(edit_objs))

    def fork(self) -> "Database":
        """A copy-on-write snapshot of this instance.

        The returned :class:`~repro.db.fork.DatabaseFork` sees exactly
        the facts of ``self`` at fork time and takes edits of its own
        without touching the base: fork creation is O(#relations), fork
        edits land in O(pending edits) overlay structures, and an edit
        to the *base* copies only the touched relation's set/index first
        (so every live fork keeps its snapshot).  Forks record their
        effective edits in an edit log for later commit/merge — the
        substrate of :mod:`repro.server`'s concurrent sessions.
        """
        from .fork import DatabaseFork

        return DatabaseFork(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}:{len(r)}" for name, r in self._relations.items())
        return f"Database({sizes})"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _bump(self, relation: str) -> None:
        self._version += 1
        self._relation_versions[relation] += 1

    def _snapshot_structures(
        self,
    ) -> tuple[dict[str, set[Fact]], dict[str, list[dict[Constant, set[Fact]]]]]:
        """Hand the current fact sets and indexes to a new fork.

        Marks every relation copy-on-write, so the next base edit to a
        relation replaces (rather than mutates) the structures the fork
        now references.
        """
        self._cow.update(self._relations)
        return dict(self._relations), dict(self._index)

    def _materialize(self, relation: str) -> None:
        """Un-share *relation*'s structures before an in-place mutation."""
        if relation not in self._cow:
            return
        self._cow.discard(relation)
        self._relations[relation] = set(self._relations[relation])
        fresh: list[dict[Constant, set[Fact]]] = []
        for position_index in self._index[relation]:
            copied: dict[Constant, set[Fact]] = defaultdict(set)
            for value, bucket in position_index.items():
                copied[value] = set(bucket)
            fresh.append(copied)
        self._index[relation] = fresh

    def _notify_before(self, kind: EditKind, f: Fact) -> Optional[Edit]:
        if not self._listeners:
            return None
        edit = Edit(kind, f)
        for listener in tuple(self._listeners):
            listener.before_change(self, edit)
        return edit

    def _notify_after(self, edit: Optional[Edit]) -> None:
        if edit is None:
            return
        for listener in tuple(self._listeners):
            listener.after_change(self, edit)

    def _check_relation(self, relation: str) -> None:
        if relation not in self._relations:
            raise SchemaError(f"unknown relation {relation!r}")

    def _validate(self, f: Fact) -> None:
        self._check_relation(f.relation)
        expected = self.schema.arity(f.relation)
        if f.arity != expected:
            raise SchemaError(
                f"fact {f} has arity {f.arity}, relation {f.relation!r} expects {expected}"
            )
