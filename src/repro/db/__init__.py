"""Relational substrate: schemas, facts, databases, edits, constraints, IO."""

from .constraints import ConstraintSet, ForeignKey, Key
from .database import ANY, Database
from .edits import Edit, EditKind, apply_edits, delete, insert
from .fork import DatabaseFork, ForkError
from .io import load_csv, load_json, save_csv, save_json
from .schema import RelationSchema, Schema, SchemaError
from .tuples import Constant, Fact, fact, facts

__all__ = [
    "ANY",
    "Constant",
    "ConstraintSet",
    "Database",
    "DatabaseFork",
    "Edit",
    "EditKind",
    "Fact",
    "ForkError",
    "ForeignKey",
    "Key",
    "RelationSchema",
    "Schema",
    "SchemaError",
    "apply_edits",
    "delete",
    "fact",
    "facts",
    "insert",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
]
