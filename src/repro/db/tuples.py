"""Facts (ground tuples).

Following Section 2 of the paper we refer to a tuple ``t`` of a relation
``R`` and the fact ``R(t)`` interchangeably; :class:`Fact` bundles the
relation name with the value vector and is hashable so that databases,
witness sets and hitting sets can all be plain Python sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: The constants we allow inside facts.  Everything is compared by equality,
#: so strings and ints may coexist (dates are ISO strings in our datasets).
Constant = str | int | float

_ARG_SEPARATOR = ", "


@dataclass(frozen=True, order=True)
class Fact:
    """A ground atom ``relation(values...)``."""

    relation: str
    values: tuple[Constant, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        args = _ARG_SEPARATOR.join(str(v) for v in self.values)
        return f"{self.relation}({args})"

    def replace(self, position: int, value: Constant) -> "Fact":
        """A copy of this fact with ``values[position]`` swapped for *value*."""
        if not 0 <= position < len(self.values):
            raise IndexError(f"position {position} out of range for {self}")
        values = list(self.values)
        values[position] = value
        return Fact(self.relation, tuple(values))


def fact(relation: str, *values: Constant) -> Fact:
    """Convenience constructor: ``fact("teams", "GER", "EU")``."""
    return Fact(relation, tuple(values))


def facts(relation: str, rows: Iterable[Iterable[Constant]]) -> list[Fact]:
    """Build one :class:`Fact` per row for a single relation."""
    return [Fact(relation, tuple(row)) for row in rows]
