"""Key and foreign-key constraints (the paper's §9 extension).

"We plan to investigate how constraints such as key and foreign key
constraints can be incorporated into our framework.  The presence of
such constraints will require a more nuanced calculation of the
(potential) interactions with the crowd, that take into account the
dependencies among tuples and possible constraints violation."

This module supplies the machinery: constraint declarations, violation
detection, and the dependency reasoning QOCO needs —

* a **key violation** is a pair of facts agreeing on the key but not
  elsewhere; since ``D_G`` satisfies the constraints, *at least one of
  the two is false* — exactly the shape of a two-element witness, so the
  hitting-set treatment of Section 4 applies;
* a **foreign-key violation** is a child fact with no matching parent;
  either the child is false (delete) or the parent is missing (insert),
  which is a one-question disjunction for the crowd.

:class:`repro.core.constraints.ConstraintCleaner` turns violations into
crowd questions and edits.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional

from .database import Database
from .schema import SchemaError
from .tuples import Constant, Fact


@dataclass(frozen=True)
class Key:
    """``positions`` functionally determine the whole tuple of ``relation``."""

    relation: str
    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise SchemaError("a key needs at least one position")
        if len(set(self.positions)) != len(self.positions):
            raise SchemaError("duplicate key positions")

    def key_of(self, fact: Fact) -> tuple[Constant, ...]:
        return tuple(fact.values[p] for p in self.positions)

    def __str__(self) -> str:
        cols = ",".join(map(str, self.positions))
        return f"key({self.relation}[{cols}])"


@dataclass(frozen=True)
class ForeignKey:
    """``child[child_positions] ⊆ parent[parent_positions]``."""

    child: str
    child_positions: tuple[int, ...]
    parent: str
    parent_positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.child_positions) != len(self.parent_positions):
            raise SchemaError("foreign key position lists differ in length")
        if not self.child_positions:
            raise SchemaError("a foreign key needs at least one position")

    def child_key(self, fact: Fact) -> tuple[Constant, ...]:
        return tuple(fact.values[p] for p in self.child_positions)

    def __str__(self) -> str:
        c = ",".join(map(str, self.child_positions))
        p = ",".join(map(str, self.parent_positions))
        return f"fk({self.child}[{c}] -> {self.parent}[{p}])"


@dataclass(frozen=True)
class KeyViolation:
    """Two facts sharing a key: at least one is false in ``D_G``."""

    key: Key
    facts: frozenset[Fact]

    def __str__(self) -> str:
        a, b = sorted(self.facts, key=repr)
        return f"{self.key}: {a} vs {b}"


@dataclass(frozen=True)
class ForeignKeyViolation:
    """A child fact with no matching parent in the database."""

    foreign_key: ForeignKey
    child_fact: Fact

    def parent_pattern(self, database: Database) -> list[Optional[Constant]]:
        arity = database.schema.arity(self.foreign_key.parent)
        pattern: list[Optional[Constant]] = [None] * arity
        for child_pos, parent_pos in zip(
            self.foreign_key.child_positions, self.foreign_key.parent_positions
        ):
            pattern[parent_pos] = self.child_fact.values[child_pos]
        return pattern

    def __str__(self) -> str:
        return f"{self.foreign_key}: dangling {self.child_fact}"


class ConstraintSet:
    """A collection of keys and foreign keys with violation detection."""

    def __init__(
        self,
        keys: Iterable[Key] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self.keys = tuple(keys)
        self.foreign_keys = tuple(foreign_keys)

    def validate_against(self, database: Database) -> None:
        """Check the declarations fit the schema (positions in range)."""
        for key in self.keys:
            arity = database.schema.arity(key.relation)
            if any(not 0 <= p < arity for p in key.positions):
                raise SchemaError(f"{key} positions out of range")
        for fk in self.foreign_keys:
            child_arity = database.schema.arity(fk.child)
            parent_arity = database.schema.arity(fk.parent)
            if any(not 0 <= p < child_arity for p in fk.child_positions):
                raise SchemaError(f"{fk} child positions out of range")
            if any(not 0 <= p < parent_arity for p in fk.parent_positions):
                raise SchemaError(f"{fk} parent positions out of range")

    # -- violations -------------------------------------------------------
    def key_violations(self, database: Database) -> list[KeyViolation]:
        """All conflicting fact pairs, one violation per pair."""
        violations: list[KeyViolation] = []
        for key in self.keys:
            groups: dict[tuple, list[Fact]] = defaultdict(list)
            for fact in database.facts(key.relation):
                groups[key.key_of(fact)].append(fact)
            for facts in groups.values():
                if len(facts) < 2:
                    continue
                ordered = sorted(facts, key=repr)
                for i in range(len(ordered)):
                    for j in range(i + 1, len(ordered)):
                        violations.append(
                            KeyViolation(key, frozenset({ordered[i], ordered[j]}))
                        )
        return violations

    def foreign_key_violations(self, database: Database) -> list[ForeignKeyViolation]:
        """All dangling child facts."""
        violations: list[ForeignKeyViolation] = []
        for fk in self.foreign_keys:
            parent_index: set[tuple] = {
                tuple(f.values[p] for p in fk.parent_positions)
                for f in database.facts(fk.parent)
            }
            for child_fact in sorted(database.facts(fk.child), key=repr):
                if fk.child_key(child_fact) not in parent_index:
                    violations.append(ForeignKeyViolation(fk, child_fact))
        return violations

    def violations(self, database: Database):
        return self.key_violations(database) + self.foreign_key_violations(database)

    def is_satisfied(self, database: Database) -> bool:
        return not self.key_violations(database) and not self.foreign_key_violations(
            database
        )
