"""Database edits.

Section 3.1: an *insertion edit* ``R(t)+`` inserts tuple ``t`` into relation
``R``; a *deletion edit* ``R(t)-`` removes it.  Edits are idempotent —
inserting a present fact or deleting an absent one leaves the database
unchanged (``D ⊕ e = D``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable

from .tuples import Fact

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .database import Database


class EditKind(Enum):
    INSERT = "+"
    DELETE = "-"


@dataclass(frozen=True)
class Edit:
    """A single idempotent edit ``R(t)+`` or ``R(t)-``."""

    kind: EditKind
    fact: Fact

    def apply(self, database: "Database") -> bool:
        """Apply in place; return ``True`` if the database changed."""
        if self.kind is EditKind.INSERT:
            return database.insert(self.fact)
        return database.delete(self.fact)

    def inverted(self) -> "Edit":
        """The edit that undoes this one (on a database it changed)."""
        kind = EditKind.DELETE if self.kind is EditKind.INSERT else EditKind.INSERT
        return Edit(kind, self.fact)

    def __str__(self) -> str:
        return f"{self.fact}{self.kind.value}"


def insert(fact: Fact) -> Edit:
    """The insertion edit ``fact+``."""
    return Edit(EditKind.INSERT, fact)


def delete(fact: Fact) -> Edit:
    """The deletion edit ``fact-``."""
    return Edit(EditKind.DELETE, fact)


def apply_edits(database: "Database", edits: Iterable[Edit]) -> int:
    """Apply *edits* in sequence (``D ⊕ e1 ⊕ ... ⊕ ek``); count changes."""
    changed = 0
    for edit in edits:
        if edit.apply(database):
            changed += 1
    return changed
