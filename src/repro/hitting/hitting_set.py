"""Hitting sets (Definition 4.3, Theorem 4.5).

The deletion algorithm views the witnesses of a wrong answer as a set
system; the false tuples it must find form a hitting set of that system.
This module provides:

* :func:`unique_minimal_hitting_set` — the Theorem 4.5 test: a unique
  minimal hitting set exists iff the elements of the singleton sets
  already hit every set; when it does, no crowd questions are needed.
* :func:`greedy_hitting_set` — the classic most-frequent-element greedy
  (ln n approximation), used by baselines and tests.
* :func:`exact_minimum_hitting_set` — branch-and-bound exact solver used
  as a test oracle and to validate the NP-hardness reduction.
* :func:`all_minimal_hitting_sets` — exhaustive enumeration on small
  instances (test oracle for the uniqueness condition).
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Hashable, Iterable, Optional, Sequence, TypeVar

Element = TypeVar("Element", bound=Hashable)
SetSystem = Sequence[frozenset]


def normalize(sets: Iterable[Iterable[Element]]) -> list[frozenset]:
    """Freeze and deduplicate a set system, dropping nothing else.

    An empty member set is kept: it makes the system unhittable and every
    consumer must see that.
    """
    seen: set[frozenset] = set()
    result: list[frozenset] = []
    for s in sets:
        frozen = frozenset(s)
        if frozen not in seen:
            seen.add(frozen)
            result.append(frozen)
    return result


def is_hitting_set(candidate: Iterable[Element], sets: Iterable[Iterable[Element]]) -> bool:
    """Whether *candidate* intersects every member of *sets*."""
    chosen = set(candidate)
    return all(chosen & set(s) for s in sets)


def is_minimal_hitting_set(
    candidate: Iterable[Element], sets: Iterable[Iterable[Element]]
) -> bool:
    """Hitting set from which no element can be dropped (Definition 4.3)."""
    chosen = set(candidate)
    frozen_sets = normalize(sets)
    if not is_hitting_set(chosen, frozen_sets):
        return False
    return all(not is_hitting_set(chosen - {e}, frozen_sets) for e in chosen)


def singleton_elements(sets: Iterable[Iterable[Element]]) -> set:
    """Elements of the singleton sets of the system."""
    singles: set = set()
    for s in sets:
        frozen = frozenset(s)
        if len(frozen) == 1:
            singles |= frozen
    return singles


def unique_minimal_hitting_set(sets: Iterable[Iterable[Element]]) -> Optional[set]:
    """The unique minimal hitting set, or ``None`` if not unique.

    Theorem 4.5: a unique minimal hitting set exists iff the elements of
    the singleton sets form a hitting set — in which case they *are* it.
    An empty system has the (unique) empty hitting set.
    """
    frozen_sets = normalize(sets)
    if not frozen_sets:
        return set()
    if any(not s for s in frozen_sets):
        return None  # an empty set can never be hit
    singles = singleton_elements(frozen_sets)
    if is_hitting_set(singles, frozen_sets):
        return singles
    return None


def most_frequent_element(sets: Iterable[Iterable[Element]]) -> Optional[Element]:
    """The element occurring in the largest number of sets.

    Ties break deterministically by (count, repr) so experiments are
    reproducible.  Returns ``None`` for an empty system.
    """
    counts: Counter = Counter()
    for s in sets:
        counts.update(set(s))
    if not counts:
        return None
    return max(counts, key=lambda e: (counts[e], repr(e)))


def greedy_hitting_set(sets: Iterable[Iterable[Element]]) -> set:
    """Greedy cover: repeatedly take the most frequent element.

    Raises :class:`ValueError` if the system contains an empty set.
    """
    remaining = normalize(sets)
    if any(not s for s in remaining):
        raise ValueError("system with an empty set has no hitting set")
    chosen: set = set()
    while remaining:
        element = most_frequent_element(remaining)
        chosen.add(element)
        remaining = [s for s in remaining if element not in s]
    return chosen


def exact_minimum_hitting_set(sets: Iterable[Iterable[Element]]) -> set:
    """A minimum-cardinality hitting set by branch and bound.

    Exponential in the worst case — a test oracle, not a production path.
    Raises :class:`ValueError` on unhittable systems.
    """
    frozen_sets = normalize(sets)
    if any(not s for s in frozen_sets):
        raise ValueError("system with an empty set has no hitting set")
    if not frozen_sets:
        return set()
    best: set = greedy_hitting_set(frozen_sets)

    def branch(remaining: list[frozenset], chosen: set) -> None:
        nonlocal best
        if len(chosen) >= len(best):
            return
        if not remaining:
            best = set(chosen)
            return
        # Branch on the smallest uncovered set: one child per element.
        target = min(remaining, key=len)
        for element in sorted(target, key=repr):
            rest = [s for s in remaining if element not in s]
            chosen.add(element)
            branch(rest, chosen)
            chosen.discard(element)

    branch(frozen_sets, set())
    return best


def all_minimal_hitting_sets(sets: Iterable[Iterable[Element]]) -> list[set]:
    """Every minimal hitting set (exhaustive; small instances only)."""
    frozen_sets = normalize(sets)
    if not frozen_sets:
        return [set()]
    if any(not s for s in frozen_sets):
        return []
    universe = sorted(set().union(*frozen_sets), key=repr)
    minimal: list[set] = []
    for size in range(1, len(universe) + 1):
        for combo in combinations(universe, size):
            candidate = set(combo)
            if not is_hitting_set(candidate, frozen_sets):
                continue
            if any(known <= candidate for known in minimal):
                continue
            minimal.append(candidate)
    return minimal
