"""Hitting-set machinery for the deletion algorithm (Section 4)."""

from .hitting_set import (
    all_minimal_hitting_sets,
    exact_minimum_hitting_set,
    greedy_hitting_set,
    is_hitting_set,
    is_minimal_hitting_set,
    most_frequent_element,
    normalize,
    singleton_elements,
    unique_minimal_hitting_set,
)

__all__ = [
    "all_minimal_hitting_sets",
    "exact_minimum_hitting_set",
    "greedy_hitting_set",
    "is_hitting_set",
    "is_minimal_hitting_set",
    "most_frequent_element",
    "normalize",
    "singleton_elements",
    "unique_minimal_hitting_set",
]
