"""COUNT aggregate views (a tractable slice of the §9 future work).

"We plan to extend QOCO by supporting richer view languages, such as
queries with aggregates...  Aggregates introduce significant
complications as there are potentially numerous ways to achieve the
same aggregate (e.g., to SUM to 100)."

COUNT is the aggregate where that obstacle vanishes: a group's count is
wrong exactly when the group has wrong or missing *base answers*, and
each of those is one of the paper's two target actions.  So a COUNT
view cleans by driving Algorithms 1/2 on the base query restricted to
the group — no new question types, no search over ways-to-sum.

SUM/AVG/MIN/MAX remain out of scope here, as in the paper.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Union

from ..core.deletion import DeletionError, DeletionStrategy, QOCODeletion, crowd_remove_wrong_answer
from ..core.insertion import InsertionError, crowd_add_missing_answer
from ..core.session import CleaningReport
from ..core.registry import REGISTRY
from ..core.split import ProvenanceSplit, SplitStrategy
from ..db.database import Database
from ..db.tuples import Constant
from ..oracle.base import AccountingOracle
from ..query.ast import Query, QueryError, Var
from ..query.evaluator import Answer, Evaluator

#: A group key (the values of the group-by columns).
Group = tuple[Constant, ...]


@dataclass(frozen=True)
class CountView:
    """``SELECT g..., COUNT(DISTINCT rest...) FROM base GROUP BY g...``

    The base query's head is split at *group_arity*: the prefix is the
    group key, the suffix the counted tuple.  With ``group_arity == 0``
    the view is a single global count.
    """

    base: Query
    group_arity: int

    def __post_init__(self) -> None:
        if not 0 <= self.group_arity <= len(self.base.head):
            raise QueryError(
                f"group arity {self.group_arity} out of range for head of "
                f"arity {len(self.base.head)}"
            )
        if self.group_arity == len(self.base.head):
            raise QueryError("no counted columns: the view would be the base query")

    @property
    def name(self) -> str:
        return f"count:{self.base.name}"

    def evaluate(self, database: Database) -> dict[Group, int]:
        """Counts of distinct counted-suffixes per group (groups with
        count 0 are absent, matching SQL's GROUP BY)."""
        counts: Counter = Counter()
        seen: set[Answer] = set()
        for answer in Evaluator(self.base, database).answers():
            if answer in seen:
                continue
            seen.add(answer)
            counts[answer[: self.group_arity]] += 1
        return dict(counts)

    def restricted_base(self, group: Group) -> Query:
        """The base query with the group key substituted in.

        Head keeps only the counted columns, so its answers are the
        group's counted tuples.
        """
        if len(group) != self.group_arity:
            raise QueryError(f"group {group!r} has wrong arity")
        binding = {}
        for term, value in zip(self.base.head[: self.group_arity], group):
            if isinstance(term, Var):
                if binding.get(term, value) != value:
                    raise QueryError(f"group {group!r} conflicts on {term}")
                binding[term] = value
            elif term != value:
                raise QueryError(f"group {group!r} conflicts with head constant")
        substituted = self.base.substitute(binding)
        head = substituted.head[self.group_arity :]
        return Query(
            head=head,
            atoms=substituted.atoms,
            inequalities=substituted.inequalities,
            name=f"{self.base.name}|{','.join(map(str, group))}",
        )


class AggregateQOCO:
    """Cleans a COUNT view by cleaning its base answers group by group."""

    def __init__(
        self,
        database: Database,
        oracle: AccountingOracle,
        deletion: Optional[Union[str, DeletionStrategy]] = None,
        split: Optional[Union[str, SplitStrategy]] = None,
        seed: Optional[int] = None,
        max_rounds: int = 10,
        **legacy,
    ) -> None:
        if legacy:
            import warnings

            for name, value in legacy.items():
                if name == "deletion_strategy":
                    deletion = value
                elif name == "split_strategy":
                    split = value
                else:
                    raise TypeError(
                        f"AggregateQOCO() got an unexpected keyword argument {name!r}"
                    )
            warnings.warn(
                "deletion_strategy=/split_strategy= are deprecated on "
                "AggregateQOCO; use deletion=/split= (a registry name or "
                "a strategy instance)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.database = database
        self.oracle = (
            oracle if isinstance(oracle, AccountingOracle) else AccountingOracle(oracle)
        )
        self.deletion_strategy = (
            REGISTRY.resolve("deletion", deletion) if deletion is not None
            else QOCODeletion()
        )
        self.split_strategy = (
            REGISTRY.resolve("split", split) if split is not None
            else ProvenanceSplit()
        )
        self.rng = random.Random(seed)
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def clean_group(self, view: CountView, group: Group) -> CleaningReport:
        """Fix one group's count (the user's target action: "this count
        looks wrong")."""
        restricted = view.restricted_base(group)
        report = CleaningReport(query_name=f"{view.name}{group}", log=self.oracle.log)
        for _ in range(self.max_rounds):
            changed = False
            # wrong counted tuples inflate the count
            for answer in sorted(
                Evaluator(restricted, self.database).answers(), key=repr
            ):
                if self.oracle.verify_answer(restricted, answer):
                    continue
                try:
                    edits = crowd_remove_wrong_answer(
                        restricted, self.database, answer, self.oracle,
                        strategy=self.deletion_strategy, rng=self.rng,
                    )
                except DeletionError:
                    report.converged = False
                    continue
                report.edits += edits
                report.wrong_answers_removed.append(group + answer)
                changed = True
            # missing counted tuples deflate it
            while True:
                current = Evaluator(restricted, self.database).answers()
                missing = self.oracle.complete_result(restricted, current)
                if missing is None:
                    break
                if missing in current:
                    continue
                try:
                    edits = crowd_add_missing_answer(
                        restricted, self.database, missing, self.oracle,
                        split=self.split_strategy, rng=self.rng,
                    )
                except InsertionError:
                    report.converged = False
                    break
                report.edits += edits
                report.missing_answers_added.append(group + missing)
                changed = True
            report.iterations += 1
            if not changed:
                break
        return report

    def clean(self, view: CountView) -> CleaningReport:
        """Fix every group, including groups absent from the dirty view.

        Groups visible in the dirty view are cleaned directly; groups
        that exist only in the ground truth are discovered through
        ``COMPL`` on the base query (a missing group is just a missing
        base answer with a new prefix) until the probe comes back empty.
        """
        total = CleaningReport(query_name=view.name, log=self.oracle.log)

        def merge(report: CleaningReport) -> None:
            total.edits += report.edits
            total.iterations += report.iterations
            total.wrong_answers_removed += report.wrong_answers_removed
            total.missing_answers_added += report.missing_answers_added
            total.converged = total.converged and report.converged

        cleaned: set[Group] = set()
        for group in sorted(view.evaluate(self.database), key=repr):
            merge(self.clean_group(view, group))
            cleaned.add(group)

        probes = 0
        while probes < self.max_rounds * 10:
            current = Evaluator(view.base, self.database).answers()
            missing = self.oracle.complete_result(view.base, current)
            probes += 1
            if missing is None:
                break
            group = missing[: view.group_arity]
            if group in cleaned:
                # the group was cleaned yet an answer is still missing —
                # treat defensively and re-clean once
                cleaned.discard(group)
            merge(self.clean_group(view, group))
            cleaned.add(group)
        return total
