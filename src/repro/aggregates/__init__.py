"""COUNT aggregate views and their cleaning (§9 extension, scoped)."""

from .count import AggregateQOCO, CountView, Group

__all__ = ["AggregateQOCO", "CountView", "Group"]
