"""Experiment workloads: the paper's Soccer and DBGroup queries."""

from .dbgroup_queries import DBGROUP_QUERIES, G1, G2, G3, G4
from .soccer_queries import EX1, EX2, Q1, Q2, Q3, Q4, Q5, SOCCER_QUERIES

__all__ = [
    "DBGROUP_QUERIES",
    "EX1",
    "EX2",
    "G1",
    "G2",
    "G3",
    "G4",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "SOCCER_QUERIES",
]
