"""The DBGroup grant-report queries (Section 7.1).

* G1 — all keynotes and tutorials on topics related to ERC.
* G2 — all current group members financed by ERC.
* G3 — students who attended conferences in the reporting window with
  ERC-sponsored travel.
* G4 — publications on "crowdsourcing" in the reporting window.

The paper's "past 30 months" filters become joins with the
``recent_years`` reference relation, and the keynote/tutorial
disjunction a join with ``event_kinds`` — keeping everything inside
conjunctive queries.
"""

from __future__ import annotations

from ..query.ast import Query
from ..query.parser import parse_query

G1 = parse_query(
    'g1(m, e) :- events(e, k, t, y, m), event_kinds(k, "invited"), '
    'topics(t, "ERC"), recent_years(y).'
)

G2 = parse_query(
    'g2(m) :- members(m, s, "ERC"), statuses(s, "current").'
)

G3 = parse_query(
    'g3(m, c) :- trips(m, c, y, "ERC"), members(m, "student", f), recent_years(y).'
)

G4 = parse_query(
    'g4(p) :- publications(p, ti, y, "crowdsourcing"), recent_years(y).'
)

DBGROUP_QUERIES: dict[str, Query] = {
    "G1": G1,
    "G2": G2,
    "G3": G3,
    "G4": G4,
}
