"""The Soccer experiment queries Q1-Q5 (Section 7.2).

"These queries have varying result sizes, from the smallest to largest":

* Q1 — European teams who lost at least two finals.
* Q2 — teams from the same continent that played at least twice against
  each other.
* Q3 — non-Asian teams that reached the knockout phase and won at least
  once.
* Q4 — teams that lost two games with the same score.
* Q5 — teams that won at least two games, one opponent South American.

Plus the running-example queries of Sections 1-5: EX1 (European teams
who won the World Cup at least twice) and EX2 (European players who
scored in a final).
"""

from __future__ import annotations

from ..query.ast import Query
from ..query.parser import parse_query

Q1 = parse_query(
    'q1(x) :- games(d1, y, x, "Final", u1), games(d2, z, x, "Final", u2), '
    'teams(x, "EU"), d1 != d2.'
)

Q2 = parse_query(
    "q2(x, y) :- games(d1, x, y, s1, u1), games(d2, x, y, s2, u2), "
    "teams(x, c), teams(y, c), d1 != d2, x != y."
)

Q3 = parse_query(
    'q3(x) :- games(d1, x, y, s1, u1), stages(s1, "KO"), teams(x, c), c != "AS".'
)

Q4 = parse_query(
    "q4(x) :- games(d1, y, x, s1, r), games(d2, z, x, s2, r), teams(x, c), d1 != d2."
)

Q5 = parse_query(
    'q5(x) :- games(d1, x, y, s1, u1), games(d2, x, z, s2, u2), '
    'teams(y, "SA"), d1 != d2.'
)

#: The paper's running example (Section 1): European teams that won the
#: World Cup at least twice.
EX1 = parse_query(
    'ex1(x) :- games(d1, x, y, "Final", u1), games(d2, x, z, "Final", u2), '
    'teams(x, "EU"), d1 != d2.'
)

#: The Section 5 example: European players who scored in a final.
EX2 = parse_query(
    'ex2(x) :- players(x, y, z, w), goals(x, d), '
    'games(d, y, v, "Final", u), teams(y, "EU").'
)

#: Additional queries over the relations the paper's five leave untouched
#: (players, goals, clubs) — used by the wider test/benchmark coverage.

#: Q6 — club teammates who scored in the same game.
Q6 = parse_query(
    "q6(p1, p2) :- clubs(p1, c), clubs(p2, c), goals(p1, d), goals(p2, d), "
    "p1 != p2."
)

#: Q7 — players who scored in a knockout game their team won.
Q7 = parse_query(
    'q7(p) :- players(p, t, b, bp), goals(p, d), games(d, t, o, s, r), '
    'stages(s, "KO").'
)

#: Q8 — home-grown champions: players born in the country they won a
#: final for.
Q8 = parse_query(
    'q8(p) :- players(p, t, b, t), goals(p, d), games(d, t, o, "Final", r).'
)

#: Queries keyed as the figures name them.
SOCCER_QUERIES: dict[str, Query] = {
    "Q1": Q1,
    "Q2": Q2,
    "Q3": Q3,
    "Q4": Q4,
    "Q5": Q5,
    "Q6": Q6,
    "Q7": Q7,
    "Q8": Q8,
    "EX1": EX1,
    "EX2": EX2,
}
