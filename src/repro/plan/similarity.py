"""Similarity keys for answer reuse across renamed questions.

Two crowd questions can be *textually* different yet logically the same:
``TRUE(Q, t)?`` and ``TRUE(Q', t)?`` where ``Q'`` is ``Q`` with its
variables renamed or its body atoms reordered, or a candidate
verification whose partial assignment grounds ``Q`` into the same
substituted body.  All of them reduce to the same ground-truth
satisfiability check, so one crowd answer settles them all.

:func:`similarity_key` maps a dispatch/broker ``question_key`` to a
canonical ``("sat", body)`` form that is invariant under variable
renaming and body reordering but **keeps constants** — soundness first:
equal keys imply isomorphic substituted bodies, hence the same answer.
The canonicalisation is deliberately incomplete (isomorphic questions
may still get distinct keys when atom shapes tie); a missed reuse is
just a paid question, never a wrong answer.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..query.ast import Atom, Query, Var
from ..query.subquery import embed_answer

#: Question kinds whose answers are a pure function of the substituted
#: body's ground-truth satisfiability.
_SAT_KINDS = ("verify_answer", "verify_candidate")


def similarity_key(key: tuple) -> Optional[tuple]:
    """The canonical similarity class of a question key, or ``None``.

    Accepts the tuples produced by ``repro.dispatch.dedup.question_key``:
    ``("verify_answer", query, answer)`` and ``("verify_candidate",
    query, partial)`` (partial as a mapping or a frozenset of items).
    Other kinds — fact checks are already canonical, completions are
    open-ended — get no similarity class.
    """
    kind = key[0]
    if kind not in _SAT_KINDS:
        return None
    try:
        if kind == "verify_answer":
            _, query, answer = key
            body = canonical_body(embed_answer(query, answer))
        else:
            _, query, partial = key
            if not isinstance(partial, Mapping):
                partial = dict(partial)
            body = canonical_body(query.substitute(partial))
    except Exception:
        return None  # unembeddable answer / malformed partial: no class
    return ("sat", body)


def canonical_body(query: Query) -> tuple:
    """A renaming- and reordering-invariant form of ``body(Q)``.

    Constants stay verbatim (they are the question's payload); variables
    are numbered by first occurrence over the atoms sorted by their
    variable-blind shape.  The head is irrelevant to satisfiability and
    is dropped.
    """
    body = [(a, False) for a in query.atoms] + [
        (a, True) for a in query.negated_atoms
    ]

    def shape(atom: Atom, negated: bool) -> tuple:
        return (
            negated,
            atom.relation,
            tuple(
                ("v",) if isinstance(t, Var) else ("c", repr(t)) for t in atom.terms
            ),
        )

    body.sort(key=lambda pair: shape(*pair))
    ids: dict[Var, int] = {}

    def term(t: Any) -> tuple:
        if isinstance(t, Var):
            return ("v", ids.setdefault(t, len(ids)))
        # repr keeps mixed-type constants comparable in the sorts below
        # and is faithful for the str/int/float payloads queries carry.
        return ("c", repr(t))

    atoms = tuple(
        (negated, atom.relation, tuple(term(t) for t in atom.terms))
        for atom, negated in body
    )
    inequalities = tuple(
        sorted(
            tuple(sorted((term(ineq.left), term(ineq.right))))
            for ineq in query.inequalities
        )
    )
    return (atoms, inequalities)


__all__ = ["canonical_body", "similarity_key"]
