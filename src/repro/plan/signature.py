"""Structural query-shape signatures.

The planner's cost model keys its statistics by *what a query looks
like*, not what it is named: two queries that differ only in variable
names, constant values, or atom order should share statistics, because
the split strategies' relative performance depends on the join structure
(chain vs star vs clique, arity, inequality count), not on the payload.

:func:`query_signature` produces that key: a hashable nested tuple that
is invariant under variable renaming, constant substitution, and body
reordering, and that distinguishes structurally different joins.
"""

from __future__ import annotations

from typing import Any

from ..query.ast import Atom, Query, Var

#: Placeholder for any constant in the abstracted shape.
_CONST = "c"

Signature = tuple


def query_signature(query: Any) -> Signature:
    """The structural shape of *query* (CQ or union of CQs).

    Unions are detected by duck-typing ``.disjuncts`` and signed as the
    sorted tuple of their disjuncts' signatures.
    """
    disjuncts = getattr(query, "disjuncts", None)
    if disjuncts is not None:
        return ("union",) + tuple(sorted(query_signature(d) for d in disjuncts))
    return _cq_signature(query)


def _atom_shape(atom: Atom, negated: bool) -> tuple:
    """A sort key for *atom* that ignores variable identity."""
    mask = tuple("v" if isinstance(t, Var) else _CONST for t in atom.terms)
    return (negated, atom.relation, mask)


def _cq_signature(query: Query) -> Signature:
    # Order atoms by their variable-blind shape, then number variables by
    # first occurrence in that order — renaming-invariant by construction.
    body = [(a, False) for a in query.atoms] + [
        (a, True) for a in query.negated_atoms
    ]
    body.sort(key=lambda pair: _atom_shape(pair[0], pair[1]))
    ids: dict[Var, int] = {}

    def vid(var: Var) -> int:
        return ids.setdefault(var, len(ids))

    atoms = tuple(
        (
            negated,
            atom.relation,
            tuple(vid(t) if isinstance(t, Var) else _CONST for t in atom.terms),
        )
        for atom, negated in body
    )
    head = tuple(
        ids.get(t, _CONST) if isinstance(t, Var) else _CONST for t in query.head
    )
    # Inequality vars are guaranteed to occur in positive atoms (query
    # safety), so every variable side already has an id.
    inequalities = tuple(
        sorted(
            tuple(
                sorted(
                    (
                        ("v", ids[term]) if isinstance(term, Var) else ("c",)
                        for term in (ineq.left, ineq.right)
                    )
                )
            )
            for ineq in query.inequalities
        )
    )
    return ("cq", head, atoms, inequalities)


__all__ = ["Signature", "query_signature"]
