"""The adaptive question planner (``QOCOConfig(planner="bandit")``).

One :class:`BanditPlanner` drives the insertion phase of any cleaning
loop: per missing-answer episode the loop calls :meth:`choose` (which
runs a per-query-shape UCB1 over the registered split strategies) and,
once the episode finishes, :meth:`observe` with the crowd cost and
question count actually spent.  The statistics live in a shared
:class:`~repro.plan.cost.CostModel`, so a planner instance passed to
several sessions keeps learning across them, and
:meth:`warm_start` folds in a telemetry snapshot from earlier runs.

Correctness anchor: a planner pinned to a single arm
(``BanditPlanner(arms=("mincut",))``) consumes no randomness in
:meth:`choose` and always returns that arm's strategy, so a pinned run
is bit-identical (same edits, same ``state_digest``, same cost) to the
equivalent static-strategy run.
"""

from __future__ import annotations

import threading
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..core.registry import REGISTRY
from ..core.split import SplitStrategy
from ..telemetry import TELEMETRY as _TELEMETRY
from .bandit import UCB1
from .cost import CostModel
from .signature import Signature, query_signature

#: The default arm table: every registered split strategy.
DEFAULT_ARMS = ("naive", "random", "mincut", "provenance")


def derive_seed(seed: Optional[int], label: str) -> int:
    """A deterministic child seed for *label* under the session seed."""
    return zlib.crc32(label.encode("utf-8")) ^ (seed if seed is not None else 0)


@dataclass(frozen=True)
class PlanChoice:
    """One planner decision, handed back to :meth:`observe`."""

    signature: Signature
    arm: str
    strategy: SplitStrategy


class QuestionPlanner(ABC):
    """The planner protocol the cleaning loops drive."""

    @abstractmethod
    def choose(self, query: Any) -> PlanChoice:
        """Pick the split strategy for one insertion episode."""

    @abstractmethod
    def observe(self, choice: PlanChoice, *, cost: float, questions: int) -> None:
        """Report what the episode actually cost."""

    def estimate(self, query: Any) -> float:
        """Expected episode cost for *query* (0.0 with no data)."""
        return 0.0

    def reseed(self, seed: Optional[int]) -> None:
        """Re-derive every internal RNG from *seed*."""


class BanditPlanner(QuestionPlanner):
    """UCB1 over split strategies, one bandit per query shape."""

    name = "bandit"

    def __init__(
        self,
        arms: Sequence[str] = DEFAULT_ARMS,
        *,
        seed: Optional[int] = None,
        exploration: float = 2.0,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if not arms:
            raise ValueError("BanditPlanner needs at least one arm")
        self.arms = tuple(arms)
        # Resolve once: unknown names fail loudly at construction, not
        # mid-clean, and every episode reuses the same instances.
        self._strategies: dict[str, SplitStrategy] = {
            arm: REGISTRY.resolve("split", arm) for arm in self.arms
        }
        self.exploration = exploration
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._seed = seed
        self._bandits: dict[Signature, UCB1] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # QuestionPlanner protocol
    # ------------------------------------------------------------------
    def choose(self, query: Any) -> PlanChoice:
        signature = query_signature(query)
        if len(self.arms) == 1:
            # Pinned planner: skip the bandit machinery entirely (no RNG,
            # no stats read) so the run replays the static strategy.
            arm = self.arms[0]
        else:
            bandit = self._bandit(signature)
            stats = self.cost_model.stats(signature, self.arms)
            with self._lock:
                arm = bandit.select(stats)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("plan.decisions")
        return PlanChoice(signature, arm, self._strategies[arm])

    def observe(self, choice: PlanChoice, *, cost: float, questions: int) -> None:
        self.cost_model.record(choice.signature, choice.arm, cost, questions)
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("plan.episodes")
            tel.count(f"plan.pulls.{choice.arm}")
            tel.count(f"plan.cost.{choice.arm}", cost)
            tel.count(f"plan.questions.{choice.arm}", questions)
            tel.observe("plan.episode_cost", cost)
            tel.observe("plan.episode_questions", questions)

    def estimate(self, query: Any) -> float:
        return self.cost_model.estimate(query_signature(query))

    def reseed(self, seed: Optional[int]) -> None:
        with self._lock:
            self._seed = seed
            for signature, bandit in self._bandits.items():
                bandit.reseed(self._shape_seed(signature))

    def warm_start(self, snapshot: Mapping[str, Any]) -> int:
        """Fold a telemetry/cost-model snapshot into the global priors."""
        return self.cost_model.warm_start(snapshot, self.arms)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shape_seed(self, signature: Signature) -> int:
        return derive_seed(self._seed, repr(signature))

    def _bandit(self, signature: Signature) -> UCB1:
        with self._lock:
            bandit = self._bandits.get(signature)
            if bandit is None:
                bandit = UCB1(
                    self.arms,
                    exploration=self.exploration,
                    seed=self._shape_seed(signature),
                )
                self._bandits[signature] = bandit
            return bandit


REGISTRY.register("planner", "bandit", BanditPlanner, aliases=("Bandit", "ucb1"))

__all__ = [
    "BanditPlanner",
    "DEFAULT_ARMS",
    "PlanChoice",
    "QuestionPlanner",
    "derive_seed",
]
