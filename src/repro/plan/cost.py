"""The planner's cost model.

Accumulates per-(query shape, arm) statistics of what one insertion
episode actually cost — crowd dollars and question count from the
oracle's accounting log — and can warm-start from a telemetry snapshot
(the ``plan.pulls.<arm>`` / ``plan.cost.<arm>`` counters an earlier
session exported), so a fresh session starts from fleet experience
instead of from zero.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from .signature import Signature


@dataclass
class ArmStats:
    """Aggregate outcome of the episodes one arm has run."""

    pulls: int = 0
    cost: float = 0.0
    questions: int = 0

    @property
    def mean_cost(self) -> float:
        return self.cost / self.pulls if self.pulls else 0.0

    def add(self, cost: float, questions: int) -> None:
        self.pulls += 1
        self.cost += cost
        self.questions += questions


class CostModel:
    """Thread-safe per-shape (and global) arm statistics."""

    def __init__(self) -> None:
        self._by_shape: dict[Signature, dict[str, ArmStats]] = {}
        self._global: dict[str, ArmStats] = {}
        self._lock = threading.Lock()

    def record(
        self, signature: Optional[Signature], arm: str, cost: float, questions: int
    ) -> None:
        """Fold one finished episode into the statistics."""
        with self._lock:
            if signature is not None:
                table = self._by_shape.setdefault(signature, {})
                table.setdefault(arm, ArmStats()).add(cost, questions)
            self._global.setdefault(arm, ArmStats()).add(cost, questions)

    def stats(self, signature: Signature, arms: Iterable[str]) -> dict[str, ArmStats]:
        """Per-arm stats for *signature*, falling back to the global
        (cross-shape) aggregate for arms this shape has not tried yet —
        the prior that makes warm starts useful."""
        with self._lock:
            shaped = self._by_shape.get(signature, {})
            out: dict[str, ArmStats] = {}
            for arm in arms:
                local = shaped.get(arm)
                if local is not None and local.pulls:
                    out[arm] = ArmStats(local.pulls, local.cost, local.questions)
                else:
                    prior = self._global.get(arm)
                    out[arm] = (
                        ArmStats(prior.pulls, prior.cost, prior.questions)
                        if prior is not None
                        else ArmStats()
                    )
            return out

    def estimate(self, signature: Signature) -> float:
        """Expected cost of one insertion episode for this shape: the
        best observed per-arm mean (0.0 with no data — cheap until
        proven otherwise, which keeps admission ordering stable)."""
        with self._lock:
            tables = [self._by_shape.get(signature, {}), self._global]
            for table in tables:
                means = [s.mean_cost for s in table.values() if s.pulls]
                if means:
                    return min(means)
            return 0.0

    def snapshot(self) -> dict[str, Any]:
        """Global per-arm aggregates in telemetry-counter form."""
        with self._lock:
            counters: dict[str, float] = {}
            for arm, stats in self._global.items():
                counters[f"plan.pulls.{arm}"] = stats.pulls
                counters[f"plan.cost.{arm}"] = stats.cost
                counters[f"plan.questions.{arm}"] = stats.questions
            return {"counters": counters}

    def warm_start(self, snapshot: Mapping[str, Any], arms: Iterable[str]) -> int:
        """Seed the global priors from a telemetry ``snapshot()`` dict.

        Reads the ``plan.pulls.<arm>`` / ``plan.cost.<arm>`` /
        ``plan.questions.<arm>`` counters this module (and
        :class:`~repro.plan.planner.BanditPlanner`) emits.  Returns the
        number of arms that received data.
        """
        counters = snapshot.get("counters", {}) or {}
        seeded = 0
        with self._lock:
            for arm in arms:
                pulls = int(counters.get(f"plan.pulls.{arm}", 0))
                if pulls <= 0:
                    continue
                stats = self._global.setdefault(arm, ArmStats())
                stats.pulls += pulls
                stats.cost += float(counters.get(f"plan.cost.{arm}", 0.0))
                stats.questions += int(counters.get(f"plan.questions.{arm}", 0))
                seeded += 1
        return seeded


__all__ = ["ArmStats", "CostModel"]
