"""Adaptive question planning (the strategy-policy layer).

The cleaning loops in :mod:`repro.core` take a *static* split strategy;
this package chooses one **per missing-answer episode** instead, from
telemetry-backed cost statistics keyed by the query's structural shape:

* :mod:`repro.plan.signature` — the shape key (variable-renaming- and
  constant-invariant).
* :mod:`repro.plan.cost`      — per-(shape, arm) cost statistics, warm-
  startable from a telemetry snapshot.
* :mod:`repro.plan.bandit`    — a seeded UCB1 selector minimising cost.
* :mod:`repro.plan.planner`   — :class:`BanditPlanner`, the strategy
  registered as ``QOCOConfig(planner="bandit")``.
* :mod:`repro.plan.similarity` — sound canonical keys matching
  variable-renamed questions for answer reuse.
* :mod:`repro.plan.schedule`  — tenant-aware question scoring for the
  service broker's shared crowd capacity.

A planner pinned to a single arm is bit-identical to the corresponding
static strategy (see ``docs/planner.md`` and ``tests/test_plan.py``).
"""

from .bandit import UCB1
from .cost import ArmStats, CostModel
from .planner import (
    DEFAULT_ARMS,
    BanditPlanner,
    PlanChoice,
    QuestionPlanner,
    derive_seed,
)
from .schedule import DEFAULT_KIND_COSTS, CapacityScheduler
from .signature import query_signature
from .similarity import canonical_body, similarity_key

__all__ = [
    "ArmStats",
    "BanditPlanner",
    "CapacityScheduler",
    "CostModel",
    "DEFAULT_ARMS",
    "DEFAULT_KIND_COSTS",
    "PlanChoice",
    "QuestionPlanner",
    "UCB1",
    "canonical_body",
    "derive_seed",
    "query_signature",
    "similarity_key",
]
