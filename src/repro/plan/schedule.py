"""Tenant-aware question scoring for shared crowd capacity.

The service broker leases questions to workers; with several tenants
multiplexed over one worker pool, FIFO order spends capacity on whoever
submitted first, not on whoever it *unblocks* most.
:class:`CapacityScheduler` scores each pending question by

    subscribers x priority / (kind cost x votes still needed)

so a question that several coalesced sessions wait on, from a
high-priority tenant, with a cheap kind and one vote to go, jumps the
queue.  The broker falls back to FIFO age among equal scores, so
single-tenant workloads behave exactly as before.

This module is import-standalone (no dispatch/service imports):
``repro.dispatch.policy`` re-exports it for the dispatch-facing surface.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

#: Relative crowd price per question kind — closed (yes/no) questions
#: are cheap, open (fill-in) questions cost more.  Mirrors the default
#: open/closed cost ratio of the accounting oracle.
DEFAULT_KIND_COSTS: dict[str, float] = {
    "verify_fact": 1.0,
    "verify_answer": 1.0,
    "verify_candidate": 1.0,
    "complete": 2.0,
    "complete_result": 2.0,
}


class CapacityScheduler:
    """Scores broker questions: highest sessions-unblocked per unit cost.

    *cost_model* (optional, duck-typed ``estimate(signature)``) lets the
    planner's learned per-shape costs sharpen the denominator when the
    question payload carries a query.
    """

    def __init__(
        self,
        kind_costs: Optional[Mapping[str, float]] = None,
        cost_model: Any = None,
    ) -> None:
        self.kind_costs = dict(DEFAULT_KIND_COSTS)
        if kind_costs:
            self.kind_costs.update(kind_costs)
        self.cost_model = cost_model

    def score(self, question: Any, now: float) -> float:
        """Bigger = lease sooner.  Reads broker ``_Question`` attributes
        defensively so any queue item with ``kind`` works."""
        subscribers = max(1, int(getattr(question, "subscribers", 1)))
        priority = float(getattr(question, "priority", 1.0))
        kind_cost = self.kind_costs.get(getattr(question, "kind", ""), 1.0)
        if self.cost_model is not None:
            kind_cost += self._episode_cost(question)
        votes_needed = int(getattr(question, "votes_needed", 1))
        votes_have = len(getattr(question, "votes", ()) or ())
        remaining = max(1, votes_needed - votes_have)
        return (subscribers * priority) / (kind_cost * remaining)

    def _episode_cost(self, question: Any) -> float:
        payload = getattr(question, "payload", None)
        query = payload[0] if isinstance(payload, tuple) and payload else None
        if query is None:
            return 0.0
        try:
            from .signature import query_signature

            return float(self.cost_model.estimate(query_signature(query)))
        except Exception:
            return 0.0


__all__ = ["CapacityScheduler", "DEFAULT_KIND_COSTS"]
