"""A seeded UCB1 selector, flipped to *minimise* cost.

Standard UCB1 maximises reward; question planning minimises crowd cost,
so the index is ``mean_cost - exploration * sqrt(ln(total) / pulls)``
and the arm with the **lowest** index is pulled.  Unplayed arms go
first, in registration order; exact index ties break through the
instance's own seeded RNG so two same-seed runs replay identically.
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Optional, Sequence

from .cost import ArmStats


class UCB1:
    """One bandit instance (the planner keeps one per query shape)."""

    def __init__(
        self,
        arms: Sequence[str],
        *,
        exploration: float = 2.0,
        seed: Optional[int] = None,
    ) -> None:
        if not arms:
            raise ValueError("a bandit needs at least one arm")
        self.arms = tuple(arms)
        self.exploration = exploration
        self._rng = random.Random(seed)

    def reseed(self, seed: Optional[int]) -> None:
        self._rng = random.Random(seed)

    def select(self, stats: Mapping[str, ArmStats]) -> str:
        """The arm to pull next given per-arm statistics."""
        if len(self.arms) == 1:
            # Pinned bandit: no exploration, no RNG consumption — the
            # bit-identical-to-static guarantee depends on this.
            return self.arms[0]
        for arm in self.arms:
            if stats.get(arm, _EMPTY).pulls == 0:
                return arm
        total = sum(stats[arm].pulls for arm in self.arms)
        log_total = math.log(max(total, 2))

        def index(arm: str) -> float:
            s = stats[arm]
            return s.mean_cost - self.exploration * math.sqrt(log_total / s.pulls)

        best = min(index(arm) for arm in self.arms)
        tied = sorted(arm for arm in self.arms if index(arm) == best)
        if len(tied) == 1:
            return tied[0]
        return tied[self._rng.randrange(len(tied))]


_EMPTY = ArmStats()

__all__ = ["UCB1"]
