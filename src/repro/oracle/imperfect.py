"""Imperfect experts (Section 6.2).

Real crowd members "even if experts, are imperfect and may make
mistakes".  :class:`ImperfectOracle` wraps the ground truth with an error
rate *p*:

* each **closed** answer is flipped with probability *p*;
* each **open** completion is, with probability *p*, either withheld
  (a spurious "not satisfiable") or corrupted by rebinding one variable
  to a different value from the same column's active domain;
* each **open** result enumeration is, with probability *p*, either a
  spurious "complete" or a fabricated near-miss answer.

The corruptions produce exactly the failure modes the paper's
verification layer (majority vote + follow-up closed questions) must
catch.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Optional

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Assignment
from .base import Oracle
from .perfect import PerfectOracle


class ImperfectOracle(Oracle):
    """A ground-truth expert who errs with probability *error_rate*."""

    def __init__(
        self,
        ground_truth: Database,
        error_rate: float,
        rng: Optional[random.Random] = None,
        name: str = "expert",
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate {error_rate} outside [0, 1]")
        self.ground_truth = ground_truth
        self.error_rate = error_rate
        self.rng = rng if rng is not None else random.Random()
        self.name = name
        self._truth = PerfectOracle(ground_truth)

    def _errs(self) -> bool:
        return self.rng.random() < self.error_rate

    # -- closed questions --------------------------------------------------
    def verify_fact(self, fact: Fact) -> bool:
        value = self._truth.verify_fact(fact)
        return (not value) if self._errs() else value

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        value = self._truth.verify_answer(query, answer)
        return (not value) if self._errs() else value

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        value = self._truth.verify_candidate(query, partial)
        return (not value) if self._errs() else value

    # -- open questions ------------------------------------------------------
    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        truth = self._truth.complete_assignment(query, partial)
        if not self._errs():
            return truth
        if truth is None:
            return None  # claiming satisfiability needs a witness; stay silent
        if self.rng.random() < 0.5:
            return None  # spurious "not satisfiable"
        return self._corrupt_assignment(query, dict(truth), set(partial))

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        truth = self._truth.complete_result(query, known_answers)
        if not self._errs():
            return truth
        if truth is None or self.rng.random() < 0.5:
            if truth is None:
                return self._fabricate_answer(query, known_answers)
            return None  # spurious "nothing is missing"
        return self._perturb_answer(truth)

    # -- corruption helpers ----------------------------------------------
    def _corrupt_assignment(
        self, query: Query, assignment: Assignment, given: set[Var]
    ) -> Assignment:
        candidates = [v for v in assignment if v not in given]
        if not candidates:
            return assignment
        victim = self.rng.choice(sorted(candidates, key=lambda v: v.name))
        replacement = self._other_value(query, victim, assignment[victim])
        if replacement is not None:
            assignment[victim] = replacement
        return assignment

    def _other_value(
        self, query: Query, variable: Var, current: Constant
    ) -> Optional[Constant]:
        """A different plausible value for *variable* from its column."""
        for atom in query.atoms:
            for position, term in enumerate(atom.terms):
                if term == variable:
                    pool = sorted(
                        v
                        for v in self.ground_truth.active_domain(atom.relation, position)
                        if v != current
                    )
                    if pool:
                        return self.rng.choice(pool)
        return None

    def _perturb_answer(self, answer: Answer) -> Answer:
        values = list(answer)
        index = self.rng.randrange(len(values))
        original = values[index]
        if isinstance(original, str):
            values[index] = original + "?"
        else:
            values[index] = -1
        return tuple(values)

    def _fabricate_answer(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        """Invent a wrong extra answer by perturbing a known one."""
        known = sorted(known_answers, key=repr)
        if not known:
            return None
        return self._perturb_answer(self.rng.choice(known))
