"""The oracle interface and the accounting wrapper.

Every crowd backend (perfect oracle, imperfect expert, aggregated crowd)
implements :class:`Oracle`.  The cleaning algorithms never see the
backend directly: they talk to an :class:`AccountingOracle`, which logs
every interaction with its cost and — because the paper's strategies
never repeat a question — caches closed answers so a repeated question
is answered for free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Optional, Sequence

from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Assignment
from ..telemetry import TELEMETRY as _TELEMETRY
from .questions import InteractionLog, QuestionKind


class Oracle(ABC):
    """A (possibly imperfect, possibly aggregated) domain expert."""

    @abstractmethod
    def verify_fact(self, fact: Fact) -> bool:
        """``TRUE(R(ā))?`` — is the fact in the ground truth?"""

    def verify_facts(self, facts: Sequence[Fact]) -> dict[Fact, bool]:
        """A *composite* question (paper §9): the truth of several facts
        posed in a single interaction.  Backends answer each fact; the
        default implementation just loops :meth:`verify_fact`."""
        return {fact: self.verify_fact(fact) for fact in facts}

    @abstractmethod
    def verify_answer(self, query: Query, answer: Answer) -> bool:
        """``TRUE(Q, t)?`` — is *answer* in ``Q(D_G)``?"""

    @abstractmethod
    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        """``CrowdVerify(α(body(Q)))`` — is α satisfiable w.r.t. ``D_G``?

        For a total assignment this asks whether the induced witness is
        all-true; for a partial one whether some extension is.
        """

    @abstractmethod
    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        """``COMPL(α, Q)`` — extend α to a valid total assignment w.r.t.
        ``D_G``, or ``None`` if α is not satisfiable."""

    @abstractmethod
    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        """``COMPL(Q(D))`` — an answer of ``Q(D_G)`` missing from
        *known_answers*, or ``None`` if there is none."""


def open_question_cost(
    query: Query, partial: Mapping[Var, Constant], result: Optional[Assignment]
) -> int:
    """Cost of a ``COMPL(α, Q)`` reply: unique variables the expert bound."""
    if result is None:
        return 1
    filled = {v for v in query.variables() if v not in partial}
    return max(1, len(filled & set(result)))


def result_question_cost(query: Query, result: Optional[Answer]) -> int:
    """Cost of a ``COMPL(Q(D))`` reply: head variables named (or 1)."""
    if result is None:
        return 1
    return max(1, len(set(query.head_variables())))


class AccountingOracle(Oracle):
    """Delegates to a backend oracle, logging and caching interactions.

    Caching mirrors the paper's "questions are never repeated": a fact or
    answer already verified in this run costs nothing when consulted
    again (the system simply remembers).
    """

    def __init__(self, backend: Oracle, log: Optional[InteractionLog] = None) -> None:
        self.backend = backend
        self.log = log if log is not None else InteractionLog()
        self._fact_cache: dict[Fact, bool] = {}
        # Keyed structurally by (query, answer) — Query is a frozen
        # dataclass, so equal queries share verdicts regardless of
        # object identity, and a recycled id() can never alias two
        # distinct queries to one stale verdict.
        self._answer_cache: dict[tuple[Query, Answer], bool] = {}

    # -- accounting ------------------------------------------------------
    def _record(self, kind: QuestionKind, cost: int, detail: str = "") -> None:
        """One crowd interaction: append to the log and mirror it into the
        telemetry counter stream (``oracle.questions.*`` / ``oracle.cost.*``),
        so §7-style budgets are observable live, not only post-hoc."""
        self.log.record(kind, cost, detail)
        tel = _TELEMETRY
        if tel.enabled:
            tel.count(f"oracle.questions.{kind.value}")
            tel.count(f"oracle.cost.{kind.value}", cost)
            tel.count("oracle.cost.total", cost)

    def record_interaction(self, kind: QuestionKind, cost: int, detail: str = "") -> None:
        """Log an interaction answered outside the backend (e.g. by the
        dispatch engine's worker pool), with the usual telemetry mirror."""
        self._record(kind, cost, detail)

    # -- cache helpers ---------------------------------------------------
    def knows_fact(self, fact: Fact) -> bool:
        return fact in self._fact_cache

    def known_fact_value(self, fact: Fact) -> Optional[bool]:
        return self._fact_cache.get(fact)

    def remember_fact(self, fact: Fact, value: bool) -> None:
        """Record knowledge inferred without asking (e.g. Theorem 4.5)."""
        self._fact_cache[fact] = value

    def cached_answer(self, query: Query, answer: Answer) -> Optional[bool]:
        """The cached ``TRUE(Q, t)?`` verdict, if this run has one."""
        return self._answer_cache.get((query, answer))

    def remember_answer(self, query: Query, answer: Answer, value: bool) -> None:
        """Record a ``TRUE(Q, t)?`` verdict obtained out of band."""
        self._answer_cache[(query, answer)] = value

    def forget(self) -> None:
        """Drop cached answers.

        With an imperfect crowd a wrong majority vote must not poison
        every later iteration; Algorithm 3 clears the cache between
        outer iterations so a retried question gets a fresh vote (the
        paper's "iterative protection", Section 6.2).  Costs already
        logged are kept.
        """
        self._fact_cache.clear()
        self._answer_cache.clear()

    # -- Oracle interface --------------------------------------------------
    def verify_fact(self, fact: Fact) -> bool:
        cached = self._fact_cache.get(fact)
        if cached is not None:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("oracle.cache_hits")
            return cached
        value = self.backend.verify_fact(fact)
        self._fact_cache[fact] = value
        self._record(QuestionKind.VERIFY_FACT, 1, str(fact))
        return value

    def verify_facts(self, facts: Sequence[Fact]) -> dict[Fact, bool]:
        """Composite fact verification: one logged interaction for the
        whole batch (cost 1 — the point of composite questions), cached
        per fact like single questions."""
        results: dict[Fact, bool] = {}
        to_ask: list[Fact] = []
        for fact in facts:
            cached = self._fact_cache.get(fact)
            if cached is not None:
                results[fact] = cached
            elif fact not in to_ask:
                to_ask.append(fact)
        if to_ask:
            answers = self.backend.verify_facts(to_ask)
            for fact in to_ask:
                value = answers[fact]
                self._fact_cache[fact] = value
                results[fact] = value
            self._record(QuestionKind.VERIFY_FACTS, 1, f"{len(to_ask)} facts")
        return results

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        key = (query, answer)
        cached = self._answer_cache.get(key)
        if cached is not None:
            if _TELEMETRY.enabled:
                _TELEMETRY.count("oracle.cache_hits")
            return cached
        value = self.backend.verify_answer(query, answer)
        self._answer_cache[key] = value
        self._record(QuestionKind.VERIFY_ANSWER, 1, f"{query.name}{answer}")
        return value

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        value = self.backend.verify_candidate(query, partial)
        self._record(QuestionKind.VERIFY_CANDIDATE, 1, query.name)
        return value

    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        result = self.backend.complete_assignment(query, partial)
        cost = open_question_cost(query, partial, result)
        self._record(QuestionKind.COMPLETE_ASSIGNMENT, cost, query.name)
        return result

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        result = self.backend.complete_result(query, known_answers)
        cost = result_question_cost(query, result)
        self._record(QuestionKind.COMPLETE_RESULT, cost, query.name)
        return result
