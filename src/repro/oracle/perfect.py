"""The perfect oracle (Section 3.2).

A perfect oracle "always speaks the truth and knows about D_G": we back
it directly by the ground-truth database.  The paper's own simulated
experiments use exactly this construction, and its real perfect experts
matched it answer-for-answer (Section 7.2).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Assignment, Evaluator
from .base import Oracle


class PerfectOracle(Oracle):
    """Answers every question correctly by consulting ``D_G``.

    Query results over the ground truth are memoized per query object, so
    repeated ``TRUE(Q, t)?`` / ``COMPL(Q(D))`` calls don't re-evaluate.
    """

    def __init__(self, ground_truth: Database) -> None:
        self.ground_truth = ground_truth
        self._answers_cache: dict[int, set[Answer]] = {}
        self._query_by_id: dict[int, Query] = {}

    def _true_answers(self, query: Query) -> set[Answer]:
        key = id(query)
        if key not in self._answers_cache:
            self._answers_cache[key] = Evaluator(query, self.ground_truth).answers()
            self._query_by_id[key] = query  # keep the query alive for id() safety
        return self._answers_cache[key]

    # -- Oracle interface --------------------------------------------------
    def verify_fact(self, fact: Fact) -> bool:
        return fact in self.ground_truth

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        return answer in self._true_answers(query)

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        return Evaluator(query, self.ground_truth).is_satisfiable(partial)

    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        evaluator = Evaluator(query, self.ground_truth)
        return next(evaluator.assignments(partial), None)

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        known = set(known_answers)
        missing = sorted(
            (a for a in self._true_answers(query) if a not in known), key=repr
        )
        if missing:
            return missing[0]
        return None
