"""Oracles, crowds, aggregation, and interaction accounting."""

from .aggregator import Aggregator, FirstAnswer, MajorityVote
from .base import AccountingOracle, Oracle, open_question_cost, result_question_cost
from .crowd import Crowd, CrowdStats
from .enumeration import Chao92Estimator, CompletionEstimator, ExactCompletion
from .imperfect import ImperfectOracle
from .interactive import InteractiveOracle
from .perfect import PerfectOracle
from .questions import (
    CATEGORY_FILL_MISSING,
    CATEGORY_VERIFY_ANSWERS,
    CATEGORY_VERIFY_TUPLES,
    CLOSED_KINDS,
    OPEN_KINDS,
    Interaction,
    InteractionLog,
    LogSnapshot,
    QuestionKind,
    category_of,
)

__all__ = [
    "AccountingOracle",
    "Aggregator",
    "CATEGORY_FILL_MISSING",
    "CATEGORY_VERIFY_ANSWERS",
    "CATEGORY_VERIFY_TUPLES",
    "CLOSED_KINDS",
    "Chao92Estimator",
    "CompletionEstimator",
    "Crowd",
    "CrowdStats",
    "ExactCompletion",
    "FirstAnswer",
    "ImperfectOracle",
    "Interaction",
    "InteractionLog",
    "InteractiveOracle",
    "LogSnapshot",
    "MajorityVote",
    "OPEN_KINDS",
    "Oracle",
    "PerfectOracle",
    "QuestionKind",
    "category_of",
    "open_question_cost",
    "result_question_cost",
]
