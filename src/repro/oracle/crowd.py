"""A crowd of (imperfect) experts behind a single Oracle interface.

Section 6.2: closed questions go to a fixed-size sample of members and
are decided by the aggregator black-box; an open question goes to a
single member and the obtained answer is then *verified* with follow-up
closed questions — ``TRUE(Q, t)?`` for a ``COMPL(Q(D))`` reply and
``TRUE(R(ā))?`` for each new tuple of a ``COMPL(α, Q)`` reply.  A reply
that fails verification is discarded (the iterative main loop repairs
any damage a mistaken edit would cause).

:class:`CrowdStats` implements the paper's crowd-answer accounting for
Figure 4: each member's closed answer counts one; an open reply counts
the number of unique variables the member bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Assignment
from .aggregator import Aggregator, MajorityVote
from .base import Oracle
from .questions import (
    CATEGORY_FILL_MISSING,
    CATEGORY_VERIFY_ANSWERS,
    CATEGORY_VERIFY_TUPLES,
)


@dataclass
class CrowdStats:
    """Member answers collected, bucketed as in Figure 4."""

    answers: dict[str, int] = field(
        default_factory=lambda: {
            CATEGORY_VERIFY_ANSWERS: 0,
            CATEGORY_VERIFY_TUPLES: 0,
            CATEGORY_FILL_MISSING: 0,
        }
    )

    def add(self, category: str, count: int) -> None:
        self.answers[category] += count

    @property
    def total(self) -> int:
        return sum(self.answers.values())


class Crowd(Oracle):
    """Multiple experts + aggregation, exposed as one oracle.

    Parameters
    ----------
    members:
        The individual experts (usually :class:`ImperfectOracle`).
    aggregator:
        Black-box deciding closed questions; defaults to 3-member
        majority vote with early stopping.
    verify_open_answers:
        Whether to pose the Section 6.2 follow-up verification questions
        after open replies (on by default; turning it off recovers the
        single-expert workflow for ablations).
    """

    def __init__(
        self,
        members: Sequence[Oracle],
        aggregator: Optional[Aggregator] = None,
        verify_open_answers: bool = True,
    ) -> None:
        if not members:
            raise ValueError("crowd must have at least one member")
        self.members = list(members)
        self.aggregator = aggregator if aggregator is not None else MajorityVote()
        self.verify_open_answers = verify_open_answers
        self.stats = CrowdStats()
        self._rotation = 0

    # -- member selection ----------------------------------------------------
    def _start_offset(self) -> int:
        offset = self._rotation
        self._rotation = (self._rotation + 1) % len(self.members)
        return offset

    def _decide(self, category: str, ask_member) -> bool:
        offset = self._start_offset()

        def ask(i: int) -> bool:
            member = self.members[(offset + i) % len(self.members)]
            return ask_member(member)

        decision, collected = self.aggregator.decide(ask, len(self.members))
        self.stats.add(category, collected)
        return decision

    # -- closed questions --------------------------------------------------
    def verify_fact(self, fact: Fact) -> bool:
        return self._decide(
            CATEGORY_VERIFY_TUPLES, lambda member: member.verify_fact(fact)
        )

    def verify_facts(self, facts) -> dict[Fact, bool]:
        """Composite question: the whole batch goes to each polled member
        in one interaction; each fact is decided by per-fact majority.

        Members are polled until every fact has a strict majority of the
        sample (early stop), so a batch usually costs 2 members x |batch|
        answers instead of |batch| separate votes.
        """
        facts = list(dict.fromkeys(facts))
        if not facts:
            return {}
        sample_size = getattr(self.aggregator, "sample_size", len(self.members))
        needed = sample_size // 2 + 1
        offset = self._start_offset()
        yes_counts = {fact: 0 for fact in facts}
        asked = 0
        while asked < sample_size:
            member = self.members[(offset + asked) % len(self.members)]
            replies = member.verify_facts(facts)
            asked += 1
            self.stats.add(CATEGORY_VERIFY_TUPLES, len(facts))
            for fact in facts:
                if replies[fact]:
                    yes_counts[fact] += 1
            decided = all(
                yes_counts[fact] >= needed or asked - yes_counts[fact] >= needed
                for fact in facts
            )
            if decided:
                break
        return {fact: yes_counts[fact] * 2 > asked for fact in facts}

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        return self._decide(
            CATEGORY_VERIFY_ANSWERS, lambda member: member.verify_answer(query, answer)
        )

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        return self._decide(
            CATEGORY_VERIFY_TUPLES,
            lambda member: member.verify_candidate(query, partial),
        )

    # -- open questions ------------------------------------------------------
    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        member = self.members[self._start_offset()]
        reply = member.complete_assignment(query, partial)
        if reply is None:
            self.stats.add(CATEGORY_FILL_MISSING, 1)
            return None
        filled = [v for v in reply if v not in partial]
        self.stats.add(CATEGORY_FILL_MISSING, max(1, len(filled)))
        if self.verify_open_answers and not self._reply_facts_verified(
            query, partial, reply
        ):
            return None
        return reply

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        member = self.members[self._start_offset()]
        reply = member.complete_result(query, known_answers)
        if reply is None:
            self.stats.add(CATEGORY_FILL_MISSING, 1)
            return None
        self.stats.add(CATEGORY_FILL_MISSING, max(1, len(set(query.head_variables()))))
        if self.verify_open_answers and not self.verify_answer(query, reply):
            return None
        return reply

    # -- verification of open replies ---------------------------------------
    def _reply_facts_verified(
        self, query: Query, partial: Mapping[Var, Constant], reply: Assignment
    ) -> bool:
        """Verify the tuples a completion introduced (Section 6.2)."""
        new_vars = {v for v in reply if v not in partial}
        to_verify: list[Fact] = []
        seen: set[Fact] = set()
        for atom in query.atoms:
            if not (atom.variables() & new_vars):
                continue
            ground = atom.substitute(reply)
            if not ground.is_ground():
                return False  # incomplete reply — malformed, reject
            fact = Fact(ground.relation, tuple(ground.terms))  # type: ignore[arg-type]
            if fact not in seen:
                seen.add(fact)
                to_verify.append(fact)
        return all(self.verify_fact(fact) for fact in to_verify)
