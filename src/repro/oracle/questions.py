"""Crowd question types and interaction accounting.

The paper uses four question types (Sections 3.2, 5, 6.1):

* ``TRUE(R(ā))?``       — is this fact true?                    (closed)
* ``TRUE(Q, t)?``       — is t a true answer of Q?              (closed)
* ``COMPL(α, Q)``       — complete α into a witness of Q        (open)
* ``COMPL(Q(D))``       — name an answer missing from Q(D)      (open)

plus the Algorithm-2 variant of ``CrowdVerify`` on a candidate
assignment ("is α(body(Q|t)) valid/satisfiable w.r.t. D_G?"), which the
paper describes as reducing the open task "to a question whether a given
assignment is valid or satisfiable" — a single closed question.

Accounting follows Section 7: a closed question costs 1; an open
question costs the number of unique variables the expert bound (a "not
satisfiable" reply to an open question costs 1 — the expert still had to
check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class QuestionKind(Enum):
    """What was asked, for per-category reporting (Figures 3f and 4)."""

    VERIFY_FACT = "verify_fact"            # TRUE(R(ā))?
    VERIFY_FACTS = "verify_facts"          # composite TRUE over several facts (§9)
    VERIFY_ANSWER = "verify_answer"        # TRUE(Q, t)?
    VERIFY_CANDIDATE = "verify_candidate"  # CrowdVerify(α(body(Q|t)))
    COMPLETE_ASSIGNMENT = "complete_assignment"  # COMPL(α, Q)
    COMPLETE_RESULT = "complete_result"    # COMPL(Q(D))


#: Kinds that are closed (boolean) questions.
CLOSED_KINDS = frozenset(
    {
        QuestionKind.VERIFY_FACT,
        QuestionKind.VERIFY_FACTS,
        QuestionKind.VERIFY_ANSWER,
        QuestionKind.VERIFY_CANDIDATE,
    }
)

#: Kinds that are open questions (tasks).
OPEN_KINDS = frozenset(
    {QuestionKind.COMPLETE_ASSIGNMENT, QuestionKind.COMPLETE_RESULT}
)

#: Figure 3f / Figure 4 stack categories.
CATEGORY_VERIFY_ANSWERS = "verify_answers"
CATEGORY_VERIFY_TUPLES = "verify_tuples"
CATEGORY_FILL_MISSING = "fill_missing"

_KIND_CATEGORY = {
    QuestionKind.VERIFY_ANSWER: CATEGORY_VERIFY_ANSWERS,
    QuestionKind.VERIFY_FACT: CATEGORY_VERIFY_TUPLES,
    QuestionKind.VERIFY_FACTS: CATEGORY_VERIFY_TUPLES,
    QuestionKind.VERIFY_CANDIDATE: CATEGORY_VERIFY_TUPLES,
    QuestionKind.COMPLETE_ASSIGNMENT: CATEGORY_FILL_MISSING,
    QuestionKind.COMPLETE_RESULT: CATEGORY_FILL_MISSING,
}


def category_of(kind: QuestionKind) -> str:
    """The Figure 3f stack category of a question kind."""
    return _KIND_CATEGORY[kind]


@dataclass(frozen=True)
class Interaction:
    """One question-and-answer with the crowd."""

    kind: QuestionKind
    cost: int
    detail: str = ""


@dataclass
class InteractionLog:
    """Question/cost accounting for one cleaning run.

    Cost model (Section 7 and Figure 3): closed question = 1; open
    question = number of unique variables the expert bound, or 1 for a
    null ("not satisfiable" / "result complete") reply.
    """

    records: list[Interaction] = field(default_factory=list)

    def record(self, kind: QuestionKind, cost: int, detail: str = "") -> None:
        if cost < 0:
            raise ValueError(f"negative interaction cost {cost}")
        self.records.append(Interaction(kind, cost, detail))

    # -- totals ---------------------------------------------------------
    @property
    def question_count(self) -> int:
        return len(self.records)

    @property
    def total_cost(self) -> int:
        return sum(r.cost for r in self.records)

    def cost_of(self, kinds: Iterable[QuestionKind]) -> int:
        wanted = set(kinds)
        return sum(r.cost for r in self.records if r.kind in wanted)

    def count_of(self, kinds: Iterable[QuestionKind]) -> int:
        wanted = set(kinds)
        return sum(1 for r in self.records if r.kind in wanted)

    @property
    def closed_cost(self) -> int:
        return self.cost_of(CLOSED_KINDS)

    @property
    def open_cost(self) -> int:
        return self.cost_of(OPEN_KINDS)

    def category_costs(self) -> dict[str, int]:
        """Costs bucketed into the Figure 3f categories."""
        buckets = {
            CATEGORY_VERIFY_ANSWERS: 0,
            CATEGORY_VERIFY_TUPLES: 0,
            CATEGORY_FILL_MISSING: 0,
        }
        for record in self.records:
            buckets[category_of(record.kind)] += record.cost
        return buckets

    def snapshot(self) -> "LogSnapshot":
        """A marker for measuring a sub-phase (costs since the marker)."""
        return LogSnapshot(self, len(self.records))

    def merge(self, other: "InteractionLog") -> None:
        self.records.extend(other.records)

    # -- audit trail ------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """JSON-serializable form of the full question trail."""
        return [
            {"kind": r.kind.value, "cost": r.cost, "detail": r.detail}
            for r in self.records
        ]

    @classmethod
    def from_dicts(cls, rows: Iterable[dict]) -> "InteractionLog":
        log = cls()
        for row in rows:
            log.record(QuestionKind(row["kind"]), row["cost"], row.get("detail", ""))
        return log

    def save_json(self, file_path) -> None:
        """Persist the audit trail (who was asked what, at what cost)."""
        import json

        with open(file_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dicts(), handle, indent=2)

    @classmethod
    def load_json(cls, file_path) -> "InteractionLog":
        import json

        with open(file_path, encoding="utf-8") as handle:
            return cls.from_dicts(json.load(handle))


@dataclass
class LogSnapshot:
    """Delta view over an :class:`InteractionLog` from a point in time."""

    log: InteractionLog
    start: int

    def _slice(self) -> list[Interaction]:
        return self.log.records[self.start :]

    @property
    def total_cost(self) -> int:
        return sum(r.cost for r in self._slice())

    @property
    def question_count(self) -> int:
        return len(self._slice())

    def cost_of(self, kinds: Iterable[QuestionKind]) -> int:
        wanted = set(kinds)
        return sum(r.cost for r in self._slice() if r.kind in wanted)
