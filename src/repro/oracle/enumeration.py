"""The enumeration black-box (Section 6.1).

Algorithm 3 must know when to stop posing ``COMPL(Q(D))`` questions.
The paper plugs in the statistical tools of Trushkowsky et al. [61]
("crowdsourced enumeration queries") as a black box that "notifies QOCO
once posing additional crowd questions [...] is no longer necessary,
because the query result is complete with high probability".

We provide two instantiations:

* :class:`ExactCompletion` — for perfect oracles: complete exactly when
  the oracle returns ``None``.
* :class:`Chao92Estimator` — the species-richness estimator underlying
  [61]: from the sample of answers received so far (with duplicates
  across crowd members) estimate the total number of distinct answers;
  declare completeness when the estimate no longer exceeds what we have
  seen, or after a run of "nothing missing" replies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Hashable, Optional


class CompletionEstimator(ABC):
    """Decides when a ``COMPL(Q(D))`` stream has been exhausted."""

    @abstractmethod
    def observe(self, item: Optional[Hashable]) -> None:
        """Feed the next crowd reply (``None`` = "nothing is missing")."""

    @abstractmethod
    def is_complete(self) -> bool:
        """Whether the result is complete with high confidence."""

    def reset(self) -> None:  # pragma: no cover - trivial default
        """Restart estimation (called when the result set changes)."""


class ExactCompletion(CompletionEstimator):
    """Complete as soon as one ``None`` arrives (perfect-oracle mode)."""

    def __init__(self) -> None:
        self._done = False

    def observe(self, item: Optional[Hashable]) -> None:
        if item is None:
            self._done = True

    def is_complete(self) -> bool:
        return self._done

    def reset(self) -> None:
        self._done = False


class Chao92Estimator(CompletionEstimator):
    """Chao92 coverage-based species-richness estimation.

    With ``n`` replies covering ``d`` distinct answers and ``f1``
    singletons, sample coverage is estimated as ``C = 1 - f1/n`` and the
    richness as ``S = d / C + (n-1)/n * f1^2 / (2*f2)`` (``f2`` =
    doubletons, guarded against zero).  We declare the result complete
    when the estimate is within *tolerance* of the distinct count, or
    after *patience* consecutive ``None`` replies — whichever comes
    first — and never before *min_samples* replies.
    """

    def __init__(
        self,
        min_samples: int = 3,
        patience: int = 2,
        tolerance: float = 0.5,
    ) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.min_samples = min_samples
        self.patience = patience
        self.tolerance = tolerance
        self._counts: Counter = Counter()
        self._samples = 0
        self._none_streak = 0

    # -- observation ------------------------------------------------------
    def observe(self, item: Optional[Hashable]) -> None:
        self._samples += 1
        if item is None:
            self._none_streak += 1
        else:
            self._none_streak = 0
            self._counts[item] += 1

    # -- estimation -------------------------------------------------------
    @property
    def distinct(self) -> int:
        return len(self._counts)

    @property
    def sample_count(self) -> int:
        return self._samples

    def estimate(self) -> float:
        """Estimated total number of distinct answers (Chao92)."""
        n = sum(self._counts.values())
        d = len(self._counts)
        if n == 0:
            return 0.0
        f1 = sum(1 for c in self._counts.values() if c == 1)
        f2 = sum(1 for c in self._counts.values() if c == 2)
        if f1 == n:
            # All singletons: coverage estimate degenerates; fall back to
            # the classic Chao84 lower bound.
            return d + f1 * (f1 - 1) / 2.0
        coverage = 1.0 - f1 / n
        adjustment = (n - 1) / n * (f1 * f1) / (2.0 * max(f2, 1))
        return d / coverage + adjustment

    def is_complete(self) -> bool:
        if self._none_streak >= self.patience:
            return True
        if self._samples < self.min_samples:
            return False
        return self.estimate() <= self.distinct + self.tolerance

    def reset(self) -> None:
        self._counts.clear()
        self._samples = 0
        self._none_streak = 0
