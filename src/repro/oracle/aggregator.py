"""The answer-aggregation black-box (Section 6.2).

"We use a simple estimation method where each question is posed to a
fixed-size sample of the crowd members and the answers are averaged
[...] using majority vote."  The aggregator is a black-box by design —
anything mapping (question, members) to a decision plugs in here.

:class:`MajorityVote` implements the paper's chosen instantiation,
including the early stop used in Section 7's accounting: "once two
experts give the same answer, a decision can be made and a third answer
is no longer needed."
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

#: Asks one crowd member the (closed) question; returns their boolean answer.
AskMember = Callable[[int], bool]


class Aggregator(ABC):
    """Decides a boolean question by polling crowd members."""

    @abstractmethod
    def decide(self, ask: AskMember, member_count: int) -> tuple[bool, int]:
        """Return ``(decision, answers_collected)``."""


class MajorityVote(Aggregator):
    """Fixed-size sample with majority vote and early stopping.

    Parameters
    ----------
    sample_size:
        How many members to poll at most (the paper uses 3).
    early_stop:
        Stop as soon as one side has a strict majority of the sample
        (2 of 3), so fewer answers may be collected than *sample_size*.
    """

    def __init__(self, sample_size: int = 3, early_stop: bool = True) -> None:
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        self.sample_size = sample_size
        self.early_stop = early_stop

    def decide(self, ask: AskMember, member_count: int) -> tuple[bool, int]:
        if member_count < 1:
            raise ValueError("crowd must have at least one member")
        needed = self.sample_size // 2 + 1
        yes = no = 0
        asked = 0
        while asked < self.sample_size:
            answer = ask(asked % member_count)
            asked += 1
            if answer:
                yes += 1
            else:
                no += 1
            if self.early_stop and (yes >= needed or no >= needed):
                break
        return yes > no, asked


class FirstAnswer(Aggregator):
    """Trust a single member — the degenerate aggregator (sample size 1)."""

    def decide(self, ask: AskMember, member_count: int) -> tuple[bool, int]:
        if member_count < 1:
            raise ValueError("crowd must have at least one member")
        return ask(0), 1
