"""A human as the oracle: terminal question-and-answer (the prototype UI).

The paper's QOCO prototype put crowd questions in front of people
through a web UI; this class does the same through the terminal, so the
library can be used for real interactive cleaning sessions:

* closed questions render as the paper writes them ("Is games(...)
  true?") and accept y/n;
* ``COMPL(α, Q)`` renders the partially instantiated body and prompts
  for one value per unbound variable (empty input = "not satisfiable");
* ``COMPL(Q(D))`` lists the current answers and prompts for a missing
  one as comma-separated values (empty input = "nothing is missing").

The I/O callables are injectable, so tests drive it with scripted input.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from ..db.io import coerce_value
from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var, term_str
from ..query.evaluator import Answer, Assignment
from .base import Oracle

Prompt = Callable[[str], str]
Show = Callable[[str], None]


class InteractiveOracle(Oracle):
    """Asks a human at the terminal."""

    def __init__(
        self,
        prompt: Optional[Prompt] = None,
        show: Optional[Show] = None,
    ) -> None:
        self.prompt = prompt if prompt is not None else input
        self.show = show if show is not None else print

    # -- closed questions --------------------------------------------------
    def _yes_no(self, question: str) -> bool:
        while True:
            reply = self.prompt(f"{question} [y/n] ").strip().lower()
            if reply in ("y", "yes", "true", "t"):
                return True
            if reply in ("n", "no", "false", "f"):
                return False
            self.show("please answer y or n")

    def verify_fact(self, fact: Fact) -> bool:
        return self._yes_no(f"Is {fact} true?")

    def verify_answer(self, query: Query, answer: Answer) -> bool:
        rendered = ", ".join(str(v) for v in answer)
        return self._yes_no(f"Is ({rendered}) a correct answer of {query.name}?")

    def verify_candidate(self, query: Query, partial: Mapping[Var, Constant]) -> bool:
        self.show(f"Candidate for {query.name}:")
        for atom in query.atoms:
            self.show(f"  {atom.substitute(dict(partial))}")
        return self._yes_no("Can this be completed into an all-true witness?")

    # -- open questions ------------------------------------------------------
    def complete_assignment(
        self, query: Query, partial: Mapping[Var, Constant]
    ) -> Optional[Assignment]:
        self.show(f"Complete a witness for {query.name}:")
        for atom in query.atoms:
            self.show(f"  {atom.substitute(dict(partial))}")
        for inequality in query.inequalities:
            self.show(f"  where {inequality.substitute(dict(partial))}")
        assignment: Assignment = dict(partial)
        unbound = sorted(
            (v for v in query.variables() if v not in assignment),
            key=lambda v: v.name,
        )
        for variable in unbound:
            reply = self.prompt(f"  {variable} = ").strip()
            if not reply:
                self.show("  (treated as: not satisfiable)")
                return None
            assignment[variable] = coerce_value(reply)
        return assignment

    def complete_result(
        self, query: Query, known_answers: Iterable[Answer]
    ) -> Optional[Answer]:
        known = sorted(known_answers, key=repr)
        self.show(f"Current answers of {query.name} ({len(known)}):")
        for answer in known:
            self.show(f"  {answer}")
        head = ", ".join(term_str(t) for t in query.head)
        reply = self.prompt(
            f"Name a missing answer ({head}) as comma-separated values "
            "(empty = none): "
        ).strip()
        if not reply:
            return None
        values = tuple(coerce_value(part.strip()) for part in reply.split(","))
        if len(values) != len(query.head):
            self.show(
                f"expected {len(query.head)} values, got {len(values)} — ignored"
            )
            return None
        return values
