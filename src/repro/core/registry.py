"""One registry for every pluggable strategy, resolvable by name.

Historically each strategy family kept its own ad-hoc dict
(``SPLIT_STRATEGIES``, ``DELETION_STRATEGIES``, the estimator table in
``repro.shard.wire``) and every entry point grew its own keyword for
passing instances around.  :class:`StrategyRegistry` unifies them: a
strategy *kind* (``"split"``, ``"deletion"``, ``"planner"``) maps names
to factories, and :meth:`resolve` turns whatever the user supplied — a
registry name (any case), a strategy class, an already-built instance,
or ``None`` — into the instance the cleaning loops run.

Names resolve case-insensitively, so the historical capitalised wire
names (``"MinCut"``, ``"QOCO-"``) and the lowercase config spellings
(``QOCOConfig(split="mincut")``) land on the same entry.

Strategy modules register themselves at import time; kinds whose
modules may not be imported yet (e.g. ``repro.plan`` registering the
``"bandit"`` planner) are listed in :data:`_KIND_MODULES` and imported
lazily on the first miss.
"""

from __future__ import annotations

import importlib
import threading
from typing import Any, Callable, Iterable, Optional


class RegistryError(ValueError):
    """An unknown strategy name or kind was requested."""


class StrategyRegistry:
    """kind -> name -> factory, with string/instance/class resolution."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Callable[[], Any]]] = {}
        self._display: dict[str, dict[str, str]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        kind: str,
        name: str,
        factory: Callable[[], Any],
        *,
        aliases: Iterable[str] = (),
    ) -> None:
        """Register *factory* under ``kind``/``name`` (plus *aliases*).

        *factory* is any zero-argument callable — usually the strategy
        class itself.  Re-registering a name overwrites it (last wins),
        which keeps module reloads harmless.
        """
        with self._lock:
            table = self._entries.setdefault(kind, {})
            display = self._display.setdefault(kind, {})
            for label in (name, *aliases):
                table[label.lower()] = factory
                display[label.lower()] = name
            display[name.lower()] = name

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def kinds(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def names(self, kind: str) -> list[str]:
        """The canonical registered names for *kind* (sorted)."""
        self._ensure_kind(kind)
        with self._lock:
            return sorted(set(self._display.get(kind, {}).values()))

    def resolve(self, kind: str, spec: Any) -> Any:
        """Turn *spec* into a strategy instance.

        * ``None`` passes through (the caller's "use the default");
        * a string is looked up case-insensitively under *kind*;
        * a class is instantiated with no arguments;
        * anything else is assumed to already be an instance.
        """
        if spec is None:
            return None
        if isinstance(spec, str):
            factory = self._lookup(kind, spec)
            return factory()
        if isinstance(spec, type):
            return spec()
        return spec

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _lookup(self, kind: str, name: str) -> Callable[[], Any]:
        key = name.lower()
        with self._lock:
            factory = self._entries.get(kind, {}).get(key)
        if factory is not None:
            return factory
        self._ensure_kind(kind)
        with self._lock:
            factory = self._entries.get(kind, {}).get(key)
        if factory is not None:
            return factory
        known = self.names(kind) if kind in self._entries else []
        raise RegistryError(
            f"unknown {kind} strategy {name!r}; registered names: {known}"
        )

    def _ensure_kind(self, kind: str) -> None:
        """Import the modules that register *kind*'s built-ins."""
        for module in _KIND_MODULES.get(kind, ()):
            importlib.import_module(module)


#: Modules that register each kind's built-in strategies on import.
#: Resolution imports them lazily so the registry itself stays a leaf
#: module (no import cycles with the strategy modules it serves).
_KIND_MODULES: dict[str, tuple[str, ...]] = {
    "split": ("repro.core.split",),
    "deletion": ("repro.core.deletion", "repro.core.heuristics"),
    "planner": ("repro.plan.planner",),
    "repair": ("repro.constraints.repairer",),
}

#: The process-wide registry every strategy module registers into.
REGISTRY = StrategyRegistry()


def resolve_strategy(kind: str, spec: Any) -> Any:
    """Module-level convenience for :meth:`StrategyRegistry.resolve`."""
    return REGISTRY.resolve(kind, spec)


__all__ = ["REGISTRY", "RegistryError", "StrategyRegistry", "resolve_strategy"]
