"""Cleaning reports and measurement helpers shared by the experiments.

The report type now lives in :mod:`repro.core.report` as the unified
:class:`~repro.core.report.Report`; this module keeps the historical
``CleaningReport`` import path as a thin alias.
"""

from __future__ import annotations

from .report import CleaningReport, Report, ReportLike

__all__ = ["CleaningReport", "Report", "ReportLike"]
