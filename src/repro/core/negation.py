"""Cleaning queries with safe negation (the §9 "negation" extension).

Negation makes the two target actions two-sided:

* a **wrong answer** can be removed by *deleting* a false positive fact
  (Section 4) **or** by *inserting* a true fact that a negated atom
  should have matched — each valid assignment of the wrong answer
  offers both kinds of options, and the false-options form a hitting
  set over the assignments exactly as before;
* a **missing answer** can be blocked by a *false fact* matching a
  negated atom — deleting the blocker adds the answer — in addition to
  the Section 5 case of missing positive facts.

Three option kinds destroy an assignment of a wrong answer:

* ``delete f`` — a positive witness fact, if the crowd says it is false
  (one closed question);
* ``insert g`` — a fully ground negated atom's fact, if the crowd says
  it is true (one closed question);
* ``complete a`` — a negated atom with local wildcards: the crowd is
  asked to *complete* a matching true fact (one open question; "not
  satisfiable" rules the option out).

The greedy structure, the option-frequency heuristic and the singleton
shortcut of Algorithm 1 carry over with "option" generalizing "fact"
(completion options are never inferred — their values must come from
the crowd).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Literal, Optional

from ..db.database import Database
from ..db.edits import Edit, delete, insert
from ..db.tuples import Fact
from ..oracle.base import AccountingOracle
from ..query.ast import Atom, Query, Var
from ..query.evaluator import Answer, Evaluator, witness_of
from ..query.subquery import embed_answer
from .deletion import DeletionError
from .insertion import InsertionConfig, InsertionError, crowd_add_missing_answer
from .split import SplitStrategy


@dataclass(frozen=True)
class Option:
    """One way to destroy an assignment of a wrong answer."""

    action: Literal["delete", "insert", "complete"]
    fact: Optional[Fact] = None
    atom: Optional[Atom] = None  # for "complete": partially ground

    def edit(self) -> Edit:
        """The edit for a decided delete/insert option."""
        assert self.fact is not None and self.action != "complete"
        return delete(self.fact) if self.action == "delete" else insert(self.fact)

    def __str__(self) -> str:
        if self.action == "complete":
            return f"complete {self.atom}"
        sign = "-" if self.action == "delete" else "+"
        return f"{self.fact}{sign}"


def _assignment_options(query: Query, assignment) -> frozenset[Option]:
    """The destroy-options of one valid assignment."""
    options = {
        Option("delete", fact) for fact in witness_of(query, assignment)
    }
    for atom in query.negated_atoms:
        partial = atom.substitute(assignment)
        if partial.is_ground():
            options.add(
                Option("insert", Fact(partial.relation, tuple(partial.terms)))  # type: ignore[arg-type]
            )
        else:
            options.add(Option("complete", atom=partial))
    return frozenset(options)


def _wildcard_query(atom: Atom) -> Query:
    """A one-atom query whose head is the atom's wildcard variables."""
    head = tuple(sorted(atom.variables(), key=lambda v: v.name))
    return Query(head=head, atoms=(atom,), name=f"neg:{atom.relation}")


def _resolve_option(
    option: Option, oracle: AccountingOracle
) -> Optional[Edit]:
    """Ask the crowd about an option; return its edit if it applies."""
    if option.action == "delete":
        assert option.fact is not None
        return None if oracle.verify_fact(option.fact) else option.edit()
    if option.action == "insert":
        assert option.fact is not None
        return option.edit() if oracle.verify_fact(option.fact) else None
    # complete: an open question over the wildcard variables
    assert option.atom is not None
    query = _wildcard_query(option.atom)
    completion = oracle.complete_assignment(query, {})
    if completion is None:
        return None
    ground = option.atom.substitute(completion)
    return insert(Fact(ground.relation, tuple(ground.terms)))  # type: ignore[arg-type]


def remove_wrong_answer_with_negation(
    query: Query,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    rng: Optional[random.Random] = None,
) -> list[Edit]:
    """Generalized Algorithm 1 over delete/insert/complete options.

    Mutates *database*; returns the applied edits.
    """
    rng = rng if rng is not None else random.Random()
    sets: list[frozenset[Option]] = []
    seen: set[frozenset[Option]] = set()
    for assignment in Evaluator(query, database).assignments(
        _answer_partial(query, answer)
    ):
        options = _assignment_options(query, assignment)
        if options not in seen:
            seen.add(options)
            sets.append(options)

    edits: list[Edit] = []
    while sets:
        # Singleton inference (Theorem 4.5 analog): a set reduced to one
        # boolean option must be resolved by it; completion options still
        # need the crowd to supply the values.
        singles = sorted(
            {
                next(iter(s))
                for s in sets
                if len(s) == 1 and next(iter(s)).action != "complete"
            },
            key=str,
        )
        if singles:
            for option in singles:
                edits.append(option.edit())
                oracle.remember_fact(option.fact, option.action == "insert")
            chosen = set(singles)
            sets = [s for s in sets if not (s & chosen)]
            continue
        if any(not s for s in sets):
            raise DeletionError(
                f"answer {answer!r} has an assignment with no applicable option"
            )
        counts: Counter = Counter()
        for s in sets:
            counts.update(s)
        option = max(counts, key=lambda o: (counts[o], str(o)))
        edit = _resolve_option(option, oracle)
        if edit is not None:
            edits.append(edit)
            sets = [s for s in sets if option not in s]
        else:
            sets = [s - {option} for s in sets]
            if any(not s for s in sets):
                raise DeletionError(
                    f"answer {answer!r} has an assignment whose options were "
                    "all rejected"
                )

    database.apply(edits)
    return edits


def add_missing_answer_with_negation(
    query: Query,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    split: Optional[SplitStrategy] = None,
    rng: Optional[random.Random] = None,
    config: Optional[InsertionConfig] = None,
    max_blocker_candidates: int = 16,
) -> list[Edit]:
    """Add a missing answer under negation.

    First hunts for *blocked* witnesses: assignments of the positive
    part already in ``D`` whose negated atoms match (false) facts —
    deleting a false blocker is usually the one-question fix.  Falls
    back to Algorithm 2 for genuinely missing positive facts.
    """
    rng = rng if rng is not None else random.Random()
    embedded = embed_answer(query, answer)
    edits: list[Edit] = []

    if _try_unblock(embedded, database, oracle, edits, max_blocker_candidates):
        return edits

    # Positive facts are missing: run Algorithm 2 (its evaluator and the
    # oracle both respect the negated atoms), then clear any blockers the
    # new witness surfaced.
    edits += crowd_add_missing_answer(
        query, database, answer, oracle, split=split, rng=rng, config=config
    )
    if _answer_present(embedded, database):
        return edits
    if _try_unblock(embedded, database, oracle, edits, max_blocker_candidates):
        return edits
    raise InsertionError(f"could not add answer {answer!r} under negation")


def _answer_present(embedded: Query, database: Database) -> bool:
    return next(Evaluator(embedded, database).assignments(), None) is not None


def _positive_part(embedded: Query) -> Query:
    return Query(
        head=embedded.head,
        atoms=embedded.atoms,
        inequalities=embedded.inequalities,
        name=f"{embedded.name}+",
    )


def _matching_blockers(
    atom: Atom, assignment, database: Database
) -> list[Fact]:
    """All database facts matching a negated atom under *assignment*
    (wildcards free, repeated wildcards consistent)."""
    partial = atom.substitute(dict(assignment))
    pattern = [
        None if isinstance(term, Var) else term for term in partial.terms
    ]
    wildcards: dict[Var, list[int]] = {}
    for position, term in enumerate(partial.terms):
        if isinstance(term, Var):
            wildcards.setdefault(term, []).append(position)
    matches = []
    for fact in database.match(atom.relation, pattern):
        if all(
            len({fact.values[i] for i in positions}) == 1
            for positions in wildcards.values()
        ):
            matches.append(fact)
    return sorted(matches, key=repr)


def _try_unblock(
    embedded: Query,
    database: Database,
    oracle: AccountingOracle,
    edits: list[Edit],
    cap: int,
) -> bool:
    """Find a positive-supported assignment whose blockers are false."""
    if _answer_present(embedded, database):
        return True
    positive = _positive_part(embedded)
    count = 0
    for assignment in Evaluator(positive, database).assignments():
        if count >= cap:
            break
        blockers: list[Fact] = []
        for atom in embedded.negated_atoms:
            blockers += _matching_blockers(atom, assignment, database)
        if not blockers:
            continue  # would already satisfy the embedded query
        count += 1
        if not oracle.verify_candidate(embedded, assignment):
            continue  # not the true witness
        for blocker in sorted(set(blockers), key=repr):
            if not oracle.verify_fact(blocker):
                edit = delete(blocker)
                edit.apply(database)
                edits.append(edit)
        if _answer_present(embedded, database):
            return True
    return False


def _answer_partial(query: Query, answer: Answer):
    from ..query.evaluator import answer_to_partial

    partial = answer_to_partial(query, answer)
    if partial is None:
        raise DeletionError(f"answer {answer!r} does not match head of {query.name}")
    return partial
