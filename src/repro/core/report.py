"""The unified cleaning report.

Every cleaning entry point — :class:`~repro.core.qoco.QOCO`,
:class:`~repro.core.parallel.ParallelQOCO`,
:class:`~repro.core.ucq.UCQCleaner`, the dispatch engine's
:func:`~repro.dispatch.engine.dispatch_clean`, and the server's
sessions — returns one :class:`Report` type with a consistent surface:
``summary()``, ``rounds``, ``wall_clock``, and ``total_cost`` are always
present (zero-valued where the run has no round structure or simulated
clock).  ``CleaningReport`` and ``ParallelReport`` remain as thin
aliases for source compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..db.edits import Edit, EditKind
from ..oracle.questions import InteractionLog
from ..query.evaluator import Answer


@runtime_checkable
class ReportLike(Protocol):
    """The minimal read surface shared by every cleaning outcome."""

    query_name: str
    rounds: int
    wall_clock: float
    converged: bool

    @property
    def total_cost(self) -> int: ...

    def summary(self) -> str: ...


@dataclass
class Report:
    """The outcome of one cleaning run (one query)."""

    query_name: str
    edits: list[Edit] = field(default_factory=list)
    iterations: int = 0
    wrong_answers_removed: list[Answer] = field(default_factory=list)
    missing_answers_added: list[Answer] = field(default_factory=list)
    converged: bool = True
    log: InteractionLog = field(default_factory=InteractionLog)
    #: crowd rounds posted (each round costs one crowd latency); 0 for
    #: the strictly sequential algorithms, which have no round structure
    rounds: int = 0
    #: simulated wall-clock seconds of a dispatched run (repro.dispatch);
    #: 0.0 when questions were answered synchronously
    wall_clock: float = 0.0
    #: widest round posted (parallel/dispatched runs; 0 when sequential)
    peak_width: int = 0

    @property
    def deletions(self) -> list[Edit]:
        return [e for e in self.edits if e.kind is EditKind.DELETE]

    @property
    def insertions(self) -> list[Edit]:
        return [e for e in self.edits if e.kind is EditKind.INSERT]

    @property
    def total_cost(self) -> int:
        return self.log.total_cost

    def summary(self) -> str:
        text = (
            f"{self.query_name}: {len(self.wrong_answers_removed)} wrong removed, "
            f"{len(self.missing_answers_added)} missing added, "
            f"{len(self.deletions)}-/{len(self.insertions)}+ edits, "
            f"{self.log.total_cost} question units in {self.iterations} iteration(s)"
        )
        if self.rounds:
            text += f", {self.rounds} round(s)"
        if self.wall_clock:
            text += f", {self.wall_clock:.0f}s simulated wall-clock"
        if not self.converged:
            text += " [did not converge]"
        return text


#: Source-compatible aliases: the sequential and parallel loops used to
#: return distinct report classes; both are the unified :class:`Report`.
CleaningReport = Report
ParallelReport = Report
