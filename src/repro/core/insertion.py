"""Adding a missing answer (Section 5, Algorithm 2).

Given a missing answer ``t ∈ Q(D_G) − Q(D)``, the algorithm embeds it
into the query (``Q|t``), inserts the ground atoms of ``Q|t`` outright
(they must hold in the ground truth), and then hunts for a witness by
recursively splitting ``Q|t`` into subqueries: every valid assignment of
a subquery over the *current* database is a candidate partial assignment
for the full witness; the crowd verifies candidates and completes the
satisfiable one.  If no candidate pans out, it falls back to asking the
crowd for a whole witness (the naive task).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..db.database import Database
from ..db.edits import Edit, insert
from ..oracle.base import AccountingOracle
from ..query.ast import Query
from ..query.evaluator import Answer, Assignment, Evaluator, atom_pattern, witness_of
from ..query.subquery import embed_answer, ground_atoms
from ..telemetry import TELEMETRY as _TELEMETRY
from .split import ProvenanceSplit, SplitStrategy


class InsertionError(RuntimeError):
    """Raised when no witness for the missing answer could be obtained
    (only possible with an imperfect crowd rejecting every completion)."""


@dataclass
class InsertionConfig:
    """Tuning knobs for Algorithm 2.

    ``max_candidates_per_subquery`` bounds how many of a subquery's valid
    assignments are presented to the crowd before the algorithm prefers
    splitting further (guards against unselective subqueries flooding
    the crowd with candidates).  ``max_subqueries`` bounds the total
    queue work before falling back to the naive task.
    """

    max_candidates_per_subquery: int = 12
    max_subqueries: int = 64


def crowd_add_missing_answer(
    query: Query,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    split: Optional[SplitStrategy] = None,
    rng: Optional[random.Random] = None,
    config: Optional[InsertionConfig] = None,
    present: Optional[Callable[[], bool]] = None,
) -> list[Edit]:
    """Algorithm 2: insert facts so that *answer* appears in ``Q(D)``.

    Mutates *database* and returns the applied insertion edits.  Raises
    :class:`InsertionError` if the crowd fails to provide any witness.

    *present*, when given, replaces the loop guard ``Q|t(D) ≠ ∅`` with a
    caller-supplied membership probe (``Q|t(D) ≠ ∅ ⟺ t ∈ Q(D)``, so a
    maintained answer set answers it in O(1) — the probe must track the
    database the edits land in).
    """
    split = split if split is not None else ProvenanceSplit()
    rng = rng if rng is not None else random.Random()
    config = config if config is not None else InsertionConfig()
    tel = _TELEMETRY

    with tel.span("insertion.add_answer", split=split.__class__.__name__):
        tel.count("insertion.invocations")
        embedded = embed_answer(query, answer)
        edits: list[Edit] = []
        if present is None:
            present = lambda: _answer_present(embedded, database)  # noqa: E731

        # Lines 1-2: ground atoms of Q|t must hold in D_G — insert them.
        for fact in ground_atoms(embedded):
            if fact not in database:
                edit = insert(fact)
                edit.apply(database)
                edits.append(edit)
                tel.count("insertion.ground_inserts")

        if present():
            return edits

        queue: deque[Query] = deque(split.split(embedded, database, rng))
        asked: set[frozenset] = set()
        processed = 0

        while queue and not present():
            if processed >= config.max_subqueries:
                break
            # Most selective subquery first: the one with the fewest candidate
            # assignments costs the fewest crowd questions to rule in or out.
            index = min(
                range(len(queue)),
                key=lambda i: _candidate_count(
                    queue[i], database, config.max_candidates_per_subquery
                ),
            )
            queue.rotate(-index)
            current = queue.popleft()
            processed += 1
            tel.count("insertion.subqueries_processed")
            found = _try_subquery(
                embedded, current, database, oracle, asked, config, edits
            )
            if found:
                return edits
            if split.can_split(current):
                queue.extend(split.split(current, database, rng))

        if present():
            return edits

        # Line 18: fall back to asking for a whole witness.
        tel.count("insertion.fallback_completions")
        full = oracle.complete_assignment(embedded, {})
        if full is None:
            raise InsertionError(f"crowd provided no witness for answer {answer!r}")
        _insert_witness(embedded, full, database, edits)
        return edits


def _answer_present(embedded: Query, database: Database) -> bool:
    """Loop guard ``Q|t(D) ≠ ∅``."""
    return next(Evaluator(embedded, database).assignments(), None) is not None


def _candidate_count(subquery: Query, database: Database, cap: int) -> int:
    """Number of valid assignments of *subquery*, counted up to *cap*."""
    count = 0
    for _ in Evaluator(subquery, database).assignments():
        count += 1
        if count >= cap:
            break
    return count


def _try_subquery(
    embedded: Query,
    subquery: Query,
    database: Database,
    oracle: AccountingOracle,
    asked: set[frozenset],
    config: InsertionConfig,
    edits: list[Edit],
) -> bool:
    """Lines 6-15: present the subquery's assignments as candidates.

    Candidates are ranked before the crowd sees them: the paper's
    premise is that ``D`` is mostly clean, so the candidate closest to a
    full witness (most atoms of ``Q|t`` individually satisfiable under
    it) is most likely the right one.  Ranking costs only local index
    lookups and sharply cuts crowd questions.
    """
    evaluator = Evaluator(subquery, database)
    embedded_vars = embedded.variables()

    candidates: list[Assignment] = []
    seen_here: set[frozenset] = set()
    for assignment in evaluator.assignments():
        candidate = {v: c for v, c in assignment.items() if v in embedded_vars}
        key = frozenset(candidate.items())
        if key in asked or key in seen_here:
            continue
        seen_here.add(key)
        candidates.append(candidate)
        if len(candidates) >= 4 * config.max_candidates_per_subquery:
            break

    candidates.sort(
        key=lambda c: (
            -_near_witness_score(embedded, c, database),
            repr(sorted(c.items(), key=repr)),
        )
    )

    for candidate in candidates[: config.max_candidates_per_subquery]:
        asked.add(frozenset(candidate.items()))
        _TELEMETRY.count("insertion.candidates_presented")
        if not oracle.verify_candidate(embedded, candidate):
            continue
        if set(candidate) >= embedded_vars:
            # A total assignment of Q|t whose witness the crowd affirmed.
            _insert_witness(embedded, candidate, database, edits)
            return True
        completion = oracle.complete_assignment(embedded, candidate)
        if completion is not None:
            _insert_witness(embedded, completion, database, edits)
            return True
    return False


def _near_witness_score(
    embedded: Query, candidate: Assignment, database: Database
) -> int:
    """How many atoms of ``Q|t`` have at least one matching fact in ``D``
    under *candidate* — a cheap proxy for "this partial assignment is one
    small completion away from a witness"."""
    score = 0
    for atom in embedded.atoms:
        pattern = atom_pattern(atom, candidate)
        if next(database.match(atom.relation, pattern), None) is not None:
            score += 1
    return score


def _insert_witness(
    embedded: Query, assignment: Assignment, database: Database, edits: list[Edit]
) -> None:
    """Insert the witness facts of a total assignment not already in D."""
    witness = witness_of(embedded, assignment)
    for fact in sorted(witness, key=repr):
        if fact not in database:
            edit = insert(fact)
            edit.apply(database)
            edits.append(edit)
            _TELEMETRY.count("insertion.witness_inserts")
