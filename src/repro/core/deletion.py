"""Removing a wrong answer (Section 4, Algorithm 1) and its baselines.

The witnesses of the wrong answer form a set system over facts; the
false facts to delete form a hitting set of it.  QOCO's greedy strategy
asks about the most frequent fact first and — via Theorem 4.5 — stops
asking as soon as a unique minimal hitting set exists (the singleton
rule), inferring the remaining deletions for free.

Baselines (Section 7.2):

* ``QOCO−`` — same greedy order but without the unique-minimal-hitting-
  set detection: it keeps verifying facts until every witness is
  destroyed.
* ``Random`` — the naive baseline, which "verifies all tuples of all
  witnesses" in random order.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from ..db.database import Database
from ..db.edits import Edit, delete
from ..db.tuples import Fact
from ..oracle.base import AccountingOracle
from ..provenance.witness import most_frequent_fact
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator
from ..telemetry import TELEMETRY as _TELEMETRY


class DeletionError(RuntimeError):
    """Raised when a wrong answer cannot be removed (e.g. crowd insists
    every fact of some witness is true)."""


class DeletionStrategy(ABC):
    """How to pick the next fact to verify, and whether to use Thm 4.5."""

    name: str = "abstract"
    #: Apply the singleton rule (unique-minimal-hitting-set inference)?
    infer_singletons: bool = False

    @abstractmethod
    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        """The next fact to ask the crowd about."""


class QOCODeletion(DeletionStrategy):
    """Algorithm 1: most-frequent fact + singleton inference."""

    name = "QOCO"
    infer_singletons = True

    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        fact = most_frequent_fact(sets)
        assert fact is not None
        return fact


class QOCOMinusDeletion(DeletionStrategy):
    """QOCO without Theorem 4.5: greedy order, no free inference."""

    name = "QOCO-"
    infer_singletons = False

    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        fact = most_frequent_fact(sets)
        assert fact is not None
        return fact


class RandomDeletion(DeletionStrategy):
    """Uniformly random fact among the remaining witnesses' tuples."""

    name = "Random"
    infer_singletons = False

    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        pool = sorted({f for s in sets for f in s}, key=repr)
        return rng.choice(pool)


def crowd_remove_wrong_answer(
    query: Query,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    strategy: Optional[DeletionStrategy] = None,
    rng: Optional[random.Random] = None,
    apply: bool = True,
    witnesses: Optional[list[frozenset]] = None,
) -> list[Edit]:
    """Algorithm 1: derive (and by default apply) deletion edits that
    remove *answer* from ``Q(D)``.

    Returns the list of deletion edits.  With a perfect oracle the edits
    are guaranteed to destroy every witness; with an imperfect crowd a
    witness may survive (all its facts "verified" true), in which case a
    :class:`DeletionError` is raised and the caller's iterative loop is
    expected to retry.

    *witnesses* overrides the witness system (used by the UCQ extension,
    which feeds the union of the per-disjunct systems).
    """
    strategy = strategy if strategy is not None else QOCODeletion()
    rng = rng if rng is not None else random.Random()
    tel = _TELEMETRY

    with tel.span("deletion.remove_answer", strategy=strategy.name):
        tel.count("deletion.invocations")
        if witnesses is None:
            witnesses = [
                frozenset(w) for w in Evaluator(query, database).witnesses(answer)
            ]
        sets: list[frozenset] = list(witnesses)
        if tel.enabled:
            tel.observe("deletion.witnesses_per_answer", len(sets))
        # Facts already known false (from earlier questions this run) destroy
        # their witnesses for free; known-true facts can be pre-pruned.
        sets, edits = _prune_with_knowledge(sets, oracle)

        if isinstance(strategy, RandomDeletion):
            edits += _verify_everything(sets, oracle, rng)
            if apply:
                database.apply(edits)
            return edits

        while sets:
            if strategy.infer_singletons:
                sets, inferred = _consume_singletons(sets, oracle)
                edits += inferred
                if not sets:
                    break
            if any(not s for s in sets):
                raise DeletionError(
                    f"answer {answer!r} has a witness whose facts were all deemed true"
                )
            fact = strategy.choose(sets, rng)
            tel.count("deletion.facts_asked")
            if oracle.verify_fact(fact):
                sets = [s - {fact} for s in sets]
                if any(not s for s in sets):
                    raise DeletionError(
                        f"answer {answer!r} has a witness whose facts were all deemed true"
                    )
            else:
                edits.append(delete(fact))
                sets = [s for s in sets if fact not in s]

        if apply:
            database.apply(edits)
        return edits


def _prune_with_knowledge(
    sets: list[frozenset], oracle: AccountingOracle
) -> tuple[list[frozenset], list[Edit]]:
    """Apply cached oracle knowledge before asking anything."""
    edits: list[Edit] = []
    pruned: list[frozenset] = []
    known_false = set()
    for s in sets:
        for fact in s:
            if oracle.known_fact_value(fact) is False:
                known_false.add(fact)
    for s in sets:
        if s & known_false:
            continue
        trimmed = frozenset(
            f for f in s if oracle.known_fact_value(f) is not True
        )
        pruned.append(trimmed)
    edits += [delete(f) for f in sorted(known_false, key=repr)]
    return pruned, edits


def _consume_singletons(
    sets: list[frozenset], oracle: AccountingOracle
) -> tuple[list[frozenset], list[Edit]]:
    """Algorithm 1 lines 2-4: delete singleton facts without asking.

    Because the wrong answer has at least one false fact per witness and
    all other facts of a singleton's witness were verified true, the
    singleton's fact must be false (Theorem 4.5) — remember it as such.
    """
    edits: list[Edit] = []
    changed = True
    while changed:
        changed = False
        singles = sorted(
            {next(iter(s)) for s in sets if len(s) == 1}, key=repr
        )
        if not singles:
            break
        for fact in singles:
            edits.append(delete(fact))
            oracle.remember_fact(fact, False)
            _TELEMETRY.count("deletion.singleton_inferences")
        survivors = [s for s in sets if not (s & set(singles))]
        changed = len(survivors) != len(sets)
        sets = survivors
    return sets, edits


def _verify_everything(
    sets: list[frozenset], oracle: AccountingOracle, rng: random.Random
) -> list[Edit]:
    """The Random baseline: verify every distinct witness fact."""
    pool = sorted({f for s in sets for f in s}, key=repr)
    rng.shuffle(pool)
    edits: list[Edit] = []
    remaining = list(sets)
    for fact in pool:
        if oracle.verify_fact(fact):
            remaining = [s - {fact} for s in remaining]
        else:
            edits.append(delete(fact))
            remaining = [s for s in remaining if fact not in s]
    # Any set still present had every member verified true — the witness
    # cannot be destroyed (possible only with a lying crowd).
    if remaining:
        raise DeletionError("witnesses survived full verification")
    return edits


#: Registry used by the experiment harness and the wire codec.
DELETION_STRATEGIES: dict[str, type[DeletionStrategy]] = {
    "QOCO": QOCODeletion,
    "QOCO-": QOCOMinusDeletion,
    "Random": RandomDeletion,
}

# String-name resolution (QOCOConfig(deletion="qoco"), wire configs)
# goes through the unified strategy registry.
from .registry import REGISTRY as _REGISTRY  # noqa: E402

for _name, _cls in DELETION_STRATEGIES.items():
    _REGISTRY.register("deletion", _name.lower(), _cls, aliases=(_name,))
