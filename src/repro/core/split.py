"""Query split strategies (Section 5.2).

``Split()`` is "the heart of" the insertion algorithm: it breaks a query
into two subqueries whose assignments over the (mostly clean) database
become candidate partial assignments for the missing witness.

* :class:`NaiveSplit`      — never splits (upper-bound baseline).
* :class:`RandomSplit`     — random bipartition of the body atoms.
* :class:`MinCutSplit`     — global min cut of the weighted query graph
  (Figure 2 left), keeping strongly connected variables together.
* :class:`ProvenanceSplit` — splits at the picky join reported by the
  WhyNot?-style analysis (Figure 2 right).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..db.database import Database
from ..mincut.stoer_wagner import minimum_cut
from ..provenance.whynot import find_picky_join
from ..query.ast import Query
from ..query.graph import build_query_graph
from ..query.subquery import split_by_partition


class SplitStrategy(ABC):
    """Produces two subqueries from a query with >= 2 body atoms."""

    name: str = "abstract"

    @abstractmethod
    def split(
        self, query: Query, database: Database, rng: random.Random
    ) -> list[Query]:
        """The subqueries to enqueue (empty when splitting is disabled)."""

    def can_split(self, query: Query) -> bool:
        return len(query.atoms) > 1


class NaiveSplit(SplitStrategy):
    """No splitting: the algorithm falls straight through to asking the
    crowd for a whole witness — the Figure 3b upper bound."""

    name = "Naive"

    def split(self, query: Query, database: Database, rng: random.Random) -> list[Query]:
        return []

    def can_split(self, query: Query) -> bool:
        return False


class RandomSplit(SplitStrategy):
    """Uniformly random bipartition with both sides non-empty."""

    name = "Random"

    def split(self, query: Query, database: Database, rng: random.Random) -> list[Query]:
        n = len(query.atoms)
        if n < 2:
            return []
        while True:
            left = [i for i in range(n) if rng.random() < 0.5]
            if 0 < len(left) < n:
                break
        first, second = split_by_partition(query, left)
        return [first, second]


class MinCutSplit(SplitStrategy):
    """Split along a global minimum cut of the query graph.

    Edge weights count shared variables plus shared inequalities, so the
    cut minimizes the number of variables that end up straddling the two
    subqueries and the inequalities lost to the split.
    """

    name = "MinCut"

    def split(self, query: Query, database: Database, rng: random.Random) -> list[Query]:
        n = len(query.atoms)
        if n < 2:
            return []
        graph = build_query_graph(query)
        edges = {(u, v): float(w) for u, v, w in graph.edges()}
        _, side_a, _ = minimum_cut(list(range(n)), edges)
        left = sorted(side_a)
        first, second = split_by_partition(query, left)
        return [first, second]


class ProvenanceSplit(SplitStrategy):
    """Split at the picky join found by the WhyNot? analysis.

    The left side is a maximal satisfiable prefix of a left-deep plan
    over the database, so it is guaranteed to have candidate assignments
    — the property that makes this the paper's best performer.
    """

    name = "Provenance"

    def __init__(self, fallback: SplitStrategy | None = None) -> None:
        self.fallback = fallback if fallback is not None else RandomSplit()

    def split(self, query: Query, database: Database, rng: random.Random) -> list[Query]:
        n = len(query.atoms)
        if n < 2:
            return []
        picky = find_picky_join(query, database)
        if not picky.right or len(picky.left) == n:
            # No picky operator (or everything blocked): defer to fallback.
            return self.fallback.split(query, database, rng)
        first, second = split_by_partition(query, list(picky.left))
        return [first, second]


#: Registry used by the experiment harness and the wire codec.
SPLIT_STRATEGIES: dict[str, type[SplitStrategy]] = {
    "Naive": NaiveSplit,
    "Random": RandomSplit,
    "MinCut": MinCutSplit,
    "Provenance": ProvenanceSplit,
}

# String-name resolution (QOCOConfig(split="mincut"), wire configs, the
# planner's arm table) goes through the unified strategy registry.
from .registry import REGISTRY as _REGISTRY  # noqa: E402

for _name, _cls in SPLIT_STRATEGIES.items():
    _REGISTRY.register("split", _name.lower(), _cls, aliases=(_name,))
