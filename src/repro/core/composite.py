"""Composite-question deletion (the paper's §9 extension).

"We plan to consider richer crowd interactions by allowing composite
crowd questions where, for example, the correctness of several tuples is
posed in a single question.  Composite questions can potentially reduce
the number of questions posed in general."

This module implements that extension for the deletion problem: instead
of verifying the single most frequent witness fact per round, QOCO packs
the *k* most frequent facts into one composite question.  Everything
else — witness bookkeeping, the Theorem 4.5 singleton rule — is
unchanged, so the number of *interactions* drops roughly by a factor of
k while the number of elementary judgments stays the same (see
``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

import random
from typing import Optional

from ..db.database import Database
from ..db.edits import Edit, delete
from ..oracle.base import AccountingOracle
from ..provenance.witness import fact_frequencies
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator
from .deletion import DeletionError, _consume_singletons, _prune_with_knowledge


def crowd_remove_wrong_answer_composite(
    query: Query,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    batch_size: int = 3,
    rng: Optional[random.Random] = None,
    witnesses: Optional[list[frozenset]] = None,
) -> list[Edit]:
    """Algorithm 1 with composite questions of up to *batch_size* facts.

    Facts are still ranked by witness frequency; the top *batch_size*
    are posed as one question.  Mutates *database*; returns the edits.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    rng = rng if rng is not None else random.Random()

    if witnesses is None:
        witnesses = [
            frozenset(w) for w in Evaluator(query, database).witnesses(answer)
        ]
    sets: list[frozenset] = list(witnesses)
    sets, edits = _prune_with_knowledge(sets, oracle)

    while sets:
        sets, inferred = _consume_singletons(sets, oracle)
        edits += inferred
        if not sets:
            break
        if any(not s for s in sets):
            raise DeletionError(
                f"answer {answer!r} has a witness whose facts were all deemed true"
            )
        batch = _top_frequent(sets, batch_size)
        replies = oracle.verify_facts(batch)
        survivors = []
        false_facts = {fact for fact, truthful in replies.items() if not truthful}
        true_facts = {fact for fact, truthful in replies.items() if truthful}
        edits += [delete(fact) for fact in sorted(false_facts, key=repr)]
        for s in sets:
            if s & false_facts:
                continue  # witness destroyed
            survivors.append(s - true_facts)
        if any(not s for s in survivors):
            raise DeletionError(
                f"answer {answer!r} has a witness whose facts were all deemed true"
            )
        sets = survivors

    database.apply(edits)
    return edits


def _top_frequent(sets: list[frozenset], batch_size: int) -> list:
    """The *batch_size* facts hitting the most witnesses."""
    counts = fact_frequencies(sets)
    ranked = sorted(counts, key=lambda f: (-counts[f], repr(f)))
    return ranked[:batch_size]
