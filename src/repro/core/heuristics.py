"""Alternative fact-selection heuristics for Algorithm 1 (Section 4).

"Our algorithm employs a greedy heuristic, asking the crowd first about
tuples that occur in the highest number of witnesses.  This heuristic
could be replaced by others, such as asking the crowd first about
influential tuples [40] or, tuples with high causality/responsibility
[46], or tuples which are least trustworthy (assuming that they have
trust scores)."

This module supplies those drop-in replacements:

* :class:`ResponsibilityDeletion` — ranks facts by causal
  responsibility (Meliou et al. [46]): a fact's responsibility for the
  wrong answer is ``1 / (1 + |Γ|)`` where ``Γ`` is a smallest
  *contingency set* — facts whose removal makes the fact counterfactual
  (i.e. the remaining witnesses all contain it).  We compute ``|Γ|``
  with the greedy hitting-set cover of the witnesses avoiding the fact.
* :class:`TrustScoreDeletion` — asks about the least trustworthy fact
  first, given a trust-score provider (e.g. source reputation).

All plug into :func:`repro.core.deletion.crowd_remove_wrong_answer`
unchanged, including the Theorem 4.5 singleton rule.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping

from ..db.tuples import Fact
from ..hitting.hitting_set import greedy_hitting_set
from .deletion import DeletionStrategy

#: Maps a fact to its trust in [0, 1] (lower = more suspicious).
TrustProvider = Callable[[Fact], float]


class ResponsibilityDeletion(DeletionStrategy):
    """Highest-responsibility fact first (causality-based ranking)."""

    name = "Responsibility"
    infer_singletons = True

    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        pool = sorted({f for s in sets for f in s}, key=repr)
        best = max(pool, key=lambda f: (self.responsibility(f, sets), repr(f)))
        return best

    @staticmethod
    def responsibility(fact: Fact, sets: list[frozenset]) -> float:
        """``1 / (1 + |Γ|)`` with Γ a (greedy) minimal contingency set."""
        missing = [s for s in sets if fact not in s]
        if not missing:
            return 1.0  # already counterfactual: in every witness
        try:
            contingency = greedy_hitting_set(missing)
        except ValueError:
            return 0.0  # some witness avoids the fact and cannot be hit
        return 1.0 / (1.0 + len(contingency))


class TrustScoreDeletion(DeletionStrategy):
    """Least trustworthy fact first.

    *trust* maps facts to scores in [0, 1]; unknown facts default to
    *default_trust*.  A dict works as well as a callable.
    """

    name = "Trust"
    infer_singletons = True

    def __init__(
        self,
        trust: TrustProvider | Mapping[Fact, float],
        default_trust: float = 0.5,
    ) -> None:
        if isinstance(trust, Mapping):
            mapping = dict(trust)
            self._trust: TrustProvider = lambda f: mapping.get(f, default_trust)
        else:
            self._trust = trust
        self.default_trust = default_trust

    def choose(self, sets: list[frozenset], rng: random.Random) -> Fact:
        pool = sorted({f for s in sets for f in s}, key=repr)
        return min(pool, key=lambda f: (self._trust(f), repr(f)))


def frequency_trust(database_counts: Mapping[Fact, int], ceiling: int = 5) -> TrustProvider:
    """A simple trust provider: facts corroborated by more sources (higher
    counts) are more trustworthy, saturating at *ceiling*."""

    def trust(fact: Fact) -> float:
        return min(database_counts.get(fact, 0), ceiling) / ceiling

    return trust


# Registry names: ``QOCOConfig(deletion="responsibility")`` works out of
# the box; ``"trust"`` builds a provider-less strategy (every unknown
# fact scores ``default_trust``) — pass an instance to supply scores.
from .registry import REGISTRY as _REGISTRY  # noqa: E402

_REGISTRY.register(
    "deletion", "responsibility", ResponsibilityDeletion, aliases=("Responsibility",)
)
_REGISTRY.register(
    "deletion", "trust", lambda: TrustScoreDeletion({}), aliases=("Trust",)
)
