"""The parallelized main loop (Section 6.2 and the paper's Appendix B).

"We would like to be able to maximize the use of all available crowd
members at any point, to speed up the computation.  Thus, we run the
deletion and insertion parts in parallel ...  We further use parallel
foreach loops, in both deletion and insertion components.  We verify the
correctness of all tuples in Q(D) at the same time, or post together
multiple completion questions."

This module restructures Algorithms 1-3 into *rounds*: every active task
(one per wrong/missing answer) contributes its next question to the
round, the whole round is posted to the crowd together, and the answers
advance every task at once.  The number of rounds is the wall-clock
proxy (each round costs one crowd latency regardless of how many
questions it carries) — the quantity the crowd simulator prices.

Tasks are cooperative generators yielding question requests:

* ``("verify_fact", fact)``                → bool
* ``("verify_candidate", query, partial)`` → bool
* ``("complete", query, partial)``         → assignment or None
* ``("remember", fact, value)``            → None (free inference, no slot)
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..db.database import Database
from ..db.edits import Edit, delete, insert
from ..oracle.base import AccountingOracle
from ..query.ast import Query
from ..query.backend import BackendEvaluator, NaiveBackend, resolve_backend
from ..query.evaluator import Answer, Evaluator, answer_to_partial
from ..query.incremental import IncrementalAnswers, supports_incremental
from ..query.subquery import embed_answer, ground_atoms
from ..telemetry import TELEMETRY as _TELEMETRY
from .deletion import DeletionError
from .insertion import (
    InsertionConfig,
    InsertionError,
    _candidate_count,
    _insert_witness,
    _near_witness_score,
)
from .qoco import QOCOConfig, resolve_config, resolve_planner
from .registry import REGISTRY
from .report import ParallelReport
from .split import SplitStrategy

Request = tuple
Task = Generator[Request, object, list[Edit]]


# ---------------------------------------------------------------------------
# task generators
# ---------------------------------------------------------------------------


def removal_task(witnesses: list[frozenset]) -> Task:
    """Algorithm 1 as a round-per-question generator."""
    sets = list(witnesses)
    edits: list[Edit] = []
    from ..provenance.witness import most_frequent_fact

    while sets:
        # singleton inference (Theorem 4.5) — free, no crowd slot
        singles = sorted({next(iter(s)) for s in sets if len(s) == 1}, key=repr)
        if singles:
            for fact in singles:
                edits.append(delete(fact))
                yield ("remember", fact, False)
            sets = [s for s in sets if not (s & set(singles))]
            continue
        if any(not s for s in sets):
            raise DeletionError("a witness's facts were all deemed true")
        fact = most_frequent_fact(sets)
        truthful = yield ("verify_fact", fact)
        if truthful:
            sets = [s - {fact} for s in sets]
            if any(not s for s in sets):
                raise DeletionError("a witness's facts were all deemed true")
        else:
            edits.append(delete(fact))
            sets = [s for s in sets if fact not in s]
    return edits


def insertion_task(
    query: Query,
    database: Database,
    answer: Answer,
    split: SplitStrategy,
    rng: random.Random,
    config: InsertionConfig,
) -> Task:
    """Algorithm 2 as a round-per-question generator.

    Mutates *database* when the witness is determined (the same shared-
    database semantics as the sequential algorithm).
    """
    from collections import deque

    embedded = embed_answer(query, answer)
    edits: list[Edit] = []
    for fact in ground_atoms(embedded):
        if fact not in database:
            edit = insert(fact)
            edit.apply(database)
            edits.append(edit)

    def present() -> bool:
        return next(Evaluator(embedded, database).assignments(), None) is not None

    if present():
        return edits

    queue = deque(split.split(embedded, database, rng))
    asked: set[frozenset] = set()
    processed = 0
    embedded_vars = embedded.variables()

    while queue and not present():
        if processed >= config.max_subqueries:
            break
        index = min(
            range(len(queue)),
            key=lambda i: _candidate_count(
                queue[i], database, config.max_candidates_per_subquery
            ),
        )
        queue.rotate(-index)
        current = queue.popleft()
        processed += 1

        candidates = []
        seen_here: set[frozenset] = set()
        for assignment in Evaluator(current, database).assignments():
            candidate = {v: c for v, c in assignment.items() if v in embedded_vars}
            key = frozenset(candidate.items())
            if key in asked or key in seen_here:
                continue
            seen_here.add(key)
            candidates.append(candidate)
            if len(candidates) >= 4 * config.max_candidates_per_subquery:
                break
        candidates.sort(
            key=lambda c: (
                -_near_witness_score(embedded, c, database),
                repr(sorted(c.items(), key=repr)),
            )
        )
        for candidate in candidates[: config.max_candidates_per_subquery]:
            asked.add(frozenset(candidate.items()))
            affirmed = yield ("verify_candidate", embedded, candidate)
            if not affirmed:
                continue
            if set(candidate) >= embedded_vars:
                _insert_witness(embedded, candidate, database, edits)
                return edits
            completion = yield ("complete", embedded, candidate)
            if completion is not None:
                _insert_witness(embedded, completion, database, edits)
                return edits
        if split.can_split(current):
            queue.extend(split.split(current, database, rng))

    if present():
        return edits
    completion = yield ("complete", embedded, {})
    if completion is None:
        raise InsertionError(f"crowd provided no witness for {answer!r}")
    _insert_witness(embedded, completion, database, edits)
    return edits


def _metered_task(task: Task, callback: Callable[[int, int], None]) -> Task:
    """Forward *task* transparently, reporting its question count on exit.

    Counts every non-free yield (``remember`` requests cost no crowd
    slot) and invokes ``callback(questions, questions)`` once the task
    finishes — normally or with a deletion/insertion error.  The wrapper
    forwards the generator protocol unchanged, so scheduling and answers
    are bit-identical to running the bare task.
    """
    questions = 0
    try:
        answer = None
        request = next(task)
        while True:
            if request[0] != "remember":
                questions += 1
            answer = yield request
            request = task.send(answer)
    except StopIteration as stop:
        callback(questions, questions)
        return stop.value
    except (DeletionError, InsertionError):
        callback(questions, questions)
        raise


# ---------------------------------------------------------------------------
# the round scheduler
# ---------------------------------------------------------------------------


@dataclass
class _Running:
    task: Task
    pending: Optional[Request] = None
    result: Optional[list[Edit]] = None
    failed: bool = False


class RoundScheduler:
    """Advances every active task one question per round."""

    def __init__(self, oracle: AccountingOracle) -> None:
        self.oracle = oracle
        self.rounds = 0
        self.peak_width = 0

    def tick(self, width: int) -> None:
        """Account one crowd round carrying *width* questions."""
        self.rounds += 1
        self.peak_width = max(self.peak_width, width)
        tel = _TELEMETRY
        if tel.enabled:
            tel.count("parallel.rounds")
            tel.observe("parallel.round_width", width)

    def run(self, tasks: list[Task]) -> list[Optional[list[Edit]]]:
        """Run tasks to completion; results align with *tasks* (``None``
        marks a task that failed with :class:`DeletionError`)."""
        running = [_Running(task) for task in tasks]
        _TELEMETRY.count("parallel.tasks", len(tasks))
        for item in running:
            self._advance(item, None)
        while any(item.pending is not None for item in running):
            batch = [item for item in running if item.pending is not None]
            self.tick(len(batch))
            # "post together": collect the whole round before advancing
            answers = self.answer_batch([item.pending for item in batch])
            for item, answer in zip(batch, answers):
                self._advance(item, answer)
        return [None if item.failed else (item.result or []) for item in running]

    def answer_batch(self, requests: list[Request]) -> list:
        """Answer one round's worth of requests, in order.

        The synchronous default consults the accounting oracle one
        request at a time; :class:`repro.dispatch.DispatchRoundScheduler`
        overrides this to route the whole round through the live
        dispatch engine (workers, latency, faults, dedup, budgets).
        """
        return [self._answer(request) for request in requests]

    # -- internals -------------------------------------------------------
    def _advance(self, item: _Running, answer) -> None:
        try:
            while True:
                request = (
                    item.task.send(answer) if answer is not None or item.pending
                    else next(item.task)
                )
                if request[0] == "remember":
                    _, fact, value = request
                    self.oracle.remember_fact(fact, value)
                    answer = None
                    item.pending = ("remember",)  # mark as mid-task
                    continue
                item.pending = request
                return
        except StopIteration as stop:
            item.pending = None
            item.result = stop.value if stop.value is not None else []
        except (DeletionError, InsertionError):
            item.pending = None
            item.failed = True

    def _answer(self, request: Request):
        kind = request[0]
        if kind == "verify_fact":
            return self.oracle.verify_fact(request[1])
        if kind == "verify_candidate":
            return self.oracle.verify_candidate(request[1], request[2])
        if kind == "complete":
            return self.oracle.complete_assignment(request[1], request[2])
        if kind == "verify_answer":
            return self.oracle.verify_answer(request[1], request[2])
        if kind == "complete_result":
            return self.oracle.complete_result(request[1], request[2])
        raise ValueError(f"unknown request {request!r}")


# ---------------------------------------------------------------------------
# the parallel main loop
# ---------------------------------------------------------------------------


class ParallelQOCO:
    """Algorithm 3 with the Appendix-B parallel modifications.

    Configured by the same :class:`~repro.core.qoco.QOCOConfig` as the
    sequential loop (third positional argument); the historical
    per-class keywords (``split_strategy=``, ``insertion_config=``,
    ``completion_width=``, ...) remain as compat shims that override the
    corresponding config fields.
    """

    def __init__(
        self,
        database: Database,
        oracle: AccountingOracle,
        config: Optional[QOCOConfig] = None,
        **overrides,
    ) -> None:
        if config is not None and not isinstance(config, QOCOConfig):
            # the third positional argument used to be split_strategy
            warnings.warn(
                "passing split_strategy positionally to ParallelQOCO is "
                "deprecated; pass a QOCOConfig or split=...",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides.setdefault("split", config)
            config = None
        self.database = database
        self.oracle = (
            oracle if isinstance(oracle, AccountingOracle) else AccountingOracle(oracle)
        )
        self.config = resolve_config(config, **overrides)
        self.backend = resolve_backend(self.config.backend)
        self.split_strategy: SplitStrategy = REGISTRY.resolve(
            "split", self.config.split
        )
        self.planner = resolve_planner(self.config.planner, seed=self.config.seed)
        self.insertion_config = self.config.insertion
        self.completion_width = self.config.completion_width
        self.max_iterations = self.config.max_iterations
        self.rng = random.Random(self.config.seed)
        self.use_incremental = self.config.use_incremental
        #: builds the round scheduler for one clean() — the seam where
        #: repro.dispatch plugs in its live engine (workers/faults/budgets)
        self.scheduler_factory = self.config.scheduler_factory or RoundScheduler
        self._engine: Optional[IncrementalAnswers] = None

    def clean(self, query: Query) -> ParallelReport:
        report = ParallelReport(query_name=query.name, log=self.oracle.log)
        scheduler = self.scheduler_factory(self.oracle)
        verified: set[Answer] = set()
        if self.use_incremental and supports_incremental(query):
            self._engine = IncrementalAnswers(
                query, self.database, evaluator_factory=self._make_evaluator
            )
        try:
            span = _TELEMETRY.span("parallel.clean", query=query.name)
            with span:
                self._clean_loop(query, report, scheduler, verified)
        finally:
            if self._engine is not None:
                self._engine.close()
                self._engine = None
        report.rounds = scheduler.rounds
        report.peak_width = scheduler.peak_width
        # dispatched schedulers carry the simulated wall-clock and may
        # have degraded (budget exhausted / questions lost to faults)
        report.wall_clock = getattr(scheduler, "wall_clock", 0.0)
        if getattr(scheduler, "degraded", False):
            report.converged = False
        return report

    def _clean_loop(
        self,
        query: Query,
        report: ParallelReport,
        scheduler: RoundScheduler,
        verified: set[Answer],
    ) -> None:
        first = True
        while first or (self._answers(query) - verified):
            if report.iterations >= self.max_iterations:
                report.converged = False
                break
            first = False
            report.iterations += 1
            _TELEMETRY.count("parallel.iterations")

            # Wave 1: verify all unverified answers at the same time.
            answers = sorted(self._answers(query) - verified, key=repr)
            wrong: list[Answer] = []
            if answers:
                scheduler.tick(len(answers))
                replies = scheduler.answer_batch(
                    [("verify_answer", query, answer) for answer in answers]
                )
                for answer, truthful in zip(answers, replies):
                    if truthful:
                        verified.add(answer)
                    else:
                        wrong.append(answer)

            # Wave 2: all removals in parallel.
            if wrong:
                engine = self._engine
                evaluator = (
                    None
                    if engine is not None
                    else self._make_evaluator(query, self.database)
                )
                tasks = []
                for answer in wrong:
                    if engine is not None:
                        witnesses = list(engine.witnesses(answer))
                    else:
                        witnesses = [frozenset(w) for w in evaluator.witnesses(answer)]
                    tasks.append(removal_task(witnesses))
                for answer, edits in zip(wrong, scheduler.run(tasks)):
                    if edits is None:
                        report.converged = False
                        continue
                    if edits:
                        self.database.apply(edits)
                        report.edits += edits
                        report.wrong_answers_removed.append(answer)

            # Waves 3+4, repeated: post `completion_width` completion
            # questions together, insert the found answers in parallel,
            # until a wave comes back empty.
            for _ in range(self.max_iterations * 4):
                missing: list[Answer] = []
                known = set(self._answers(query))
                posted = 0
                for _ in range(self.completion_width):
                    (found,) = scheduler.answer_batch(
                        [("complete_result", query, frozenset(known))]
                    )
                    posted += 1
                    if found is None:
                        break
                    known.add(found)
                    if not self._answer_alive(query, found):
                        missing.append(found)
                scheduler.tick(posted)
                if not missing:
                    break
                tasks = []
                for answer in missing:
                    split = self.split_strategy
                    if self.planner is not None:
                        choice = self.planner.choose(query)
                        split = choice.strategy
                    task = insertion_task(
                        query, self.database, answer, split,
                        self.rng, self.insertion_config,
                    )
                    if self.planner is not None:
                        # The parallel scheduler batches oracle calls, so
                        # per-task cost is metered by question count.
                        planner, episode = self.planner, choice
                        task = _metered_task(
                            task,
                            lambda cost, questions, p=planner, c=episode: p.observe(
                                c, cost=cost, questions=questions
                            ),
                        )
                    tasks.append(task)
                for answer, edits in zip(missing, scheduler.run(tasks)):
                    if edits is None:
                        report.converged = False
                        continue
                    report.edits += edits
                    report.missing_answers_added.append(answer)
                    verified.add(answer)

    def _make_evaluator(self, query: Query, database: Database):
        """An evaluator on the configured backend (see QOCO)."""
        if isinstance(self.backend, NaiveBackend):
            return Evaluator(query, database)
        return BackendEvaluator(query, database, self.backend)

    def _answers(self, query: Query) -> set[Answer]:
        if self._engine is not None and self._engine.query is query:
            return self._engine.answers()
        return self.backend.evaluate(query, self.database)

    def _answer_alive(self, query: Query, answer: Answer) -> bool:
        """Targeted ``answer ∈ Q(D)`` membership check (see QOCO)."""
        if self._engine is not None and self._engine.query is query:
            return answer in self._engine
        partial = answer_to_partial(query, answer)
        if partial is None:
            return False
        return self.backend.is_satisfiable(query, self.database, partial)
