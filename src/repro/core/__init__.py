"""QOCO's cleaning algorithms (Algorithms 1-3) and split strategies."""

from .deletion import (
    DELETION_STRATEGIES,
    DeletionError,
    DeletionStrategy,
    QOCODeletion,
    QOCOMinusDeletion,
    RandomDeletion,
    crowd_remove_wrong_answer,
)
from .insertion import InsertionConfig, InsertionError, crowd_add_missing_answer
from .composite import crowd_remove_wrong_answer_composite
from .constraints import ConstraintCleaner, ConstraintRepairError, RepairReport
from .heuristics import ResponsibilityDeletion, TrustScoreDeletion, frequency_trust
from .negation import (
    add_missing_answer_with_negation,
    remove_wrong_answer_with_negation,
)
from .parallel import ParallelQOCO, RoundScheduler
from .qoco import QOCO, QOCOConfig, resolve_config, resolve_planner
from .registry import REGISTRY, RegistryError, StrategyRegistry, resolve_strategy
from .report import CleaningReport, ParallelReport, Report, ReportLike
from .ucq import (
    UCQCleaner,
    UnionQOCO,
    add_missing_answer_union,
    remove_wrong_answer_union,
)
from .split import (
    SPLIT_STRATEGIES,
    MinCutSplit,
    NaiveSplit,
    ProvenanceSplit,
    RandomSplit,
    SplitStrategy,
)

__all__ = [
    "CleaningReport",
    "ConstraintCleaner",
    "ConstraintRepairError",
    "RepairReport",
    "ResponsibilityDeletion",
    "TrustScoreDeletion",
    "crowd_remove_wrong_answer_composite",
    "frequency_trust",
    "DELETION_STRATEGIES",
    "DeletionError",
    "DeletionStrategy",
    "InsertionConfig",
    "InsertionError",
    "MinCutSplit",
    "NaiveSplit",
    "ParallelQOCO",
    "ParallelReport",
    "ProvenanceSplit",
    "RoundScheduler",
    "QOCO",
    "QOCOConfig",
    "QOCODeletion",
    "QOCOMinusDeletion",
    "RandomDeletion",
    "RandomSplit",
    "REGISTRY",
    "RegistryError",
    "Report",
    "ReportLike",
    "SPLIT_STRATEGIES",
    "SplitStrategy",
    "StrategyRegistry",
    "UCQCleaner",
    "UnionQOCO",
    "resolve_config",
    "resolve_planner",
    "resolve_strategy",
    "add_missing_answer_union",
    "add_missing_answer_with_negation",
    "remove_wrong_answer_with_negation",
    "crowd_add_missing_answer",
    "crowd_remove_wrong_answer",
    "remove_wrong_answer_union",
]
