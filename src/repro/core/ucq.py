"""Cleaning under unions of conjunctive queries (the Section 2 extension).

The CQ algorithms lift to UCQs almost verbatim:

* **Deletion** — the wrong answer's witness system is the union of the
  per-disjunct witness systems; Algorithm 1 runs on the combined system
  unchanged (the greedy heuristic and Theorem 4.5 are oblivious to where
  a witness came from).
* **Insertion** — the missing answer needs a witness under *one*
  disjunct.  For each disjunct we ask a single closed question — "is t
  an answer of this disjunct w.r.t. D_G?" — and run Algorithm 2 on the
  first disjunct the crowd affirms (ordering disjuncts by how much of
  their embedded body is already satisfiable keeps the expected number
  of probes low).
* **The main loop** — identical to Algorithm 3 with the UCQ's answers
  and witnesses.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional

from ..db.database import Database
from ..db.edits import Edit
from ..oracle.base import AccountingOracle
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator, answer_to_partial
from ..query.subquery import embed_answer
from ..query.union import UnionQuery
from .deletion import (
    DeletionError,
    DeletionStrategy,
    crowd_remove_wrong_answer,
)
from .insertion import InsertionConfig, InsertionError, crowd_add_missing_answer
from .qoco import QOCOConfig, resolve_config, resolve_planner
from .registry import REGISTRY
from .report import CleaningReport
from .split import SplitStrategy


def remove_wrong_answer_union(
    union: UnionQuery,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    strategy: Optional[DeletionStrategy] = None,
    rng: Optional[random.Random] = None,
) -> list[Edit]:
    """Algorithm 1 over the combined witness system of a UCQ answer.

    The wrong answer must lose every witness under every disjunct, so we
    feed Algorithm 1 the union of the per-disjunct witness systems.
    """
    witnesses = [frozenset(w) for w in union.witnesses(database, answer)]
    return crowd_remove_wrong_answer(
        union.disjuncts[0],
        database,
        answer,
        oracle,
        strategy=strategy,
        rng=rng,
        witnesses=witnesses,
    )


def add_missing_answer_union(
    union: UnionQuery,
    database: Database,
    answer: Answer,
    oracle: AccountingOracle,
    split: Optional[SplitStrategy] = None,
    rng: Optional[random.Random] = None,
    config: Optional[InsertionConfig] = None,
) -> list[Edit]:
    """Find a disjunct that truly produces *answer* and run Algorithm 2.

    Disjuncts are probed most-promising first (largest satisfiable part
    of the embedded body over the current database); each probe is one
    closed question.
    """
    rng = rng if rng is not None else random.Random()
    candidates = _rank_disjuncts(union, database, answer)
    if not candidates:
        raise InsertionError(f"answer {answer!r} matches no disjunct head")

    last_error: Optional[InsertionError] = None
    for disjunct in candidates:
        partial = answer_to_partial(disjunct, answer)
        if partial is None:
            continue
        if not oracle.verify_candidate(disjunct, partial):
            continue  # not an answer of this disjunct in D_G
        try:
            return crowd_add_missing_answer(
                disjunct, database, answer, oracle,
                split=split, rng=rng, config=config,
            )
        except InsertionError as error:
            last_error = error
    raise last_error or InsertionError(
        f"no disjunct of {union.name} produces answer {answer!r} in D_G"
    )


def _rank_disjuncts(
    union: UnionQuery, database: Database, answer: Answer
) -> list[Query]:
    """Disjuncts ordered by how close they are to producing *answer*."""

    def satisfiable_atoms(disjunct: Query) -> int:
        try:
            embedded = embed_answer(disjunct, answer)
        except Exception:
            return -1
        count = 0
        for index in range(len(embedded.atoms)):
            from ..query.subquery import subquery

            single = subquery(embedded, [index])
            if next(Evaluator(single, database).assignments(), None) is not None:
                count += 1
        return count

    ranked = [
        (satisfiable_atoms(disjunct), index, disjunct)
        for index, disjunct in enumerate(union.disjuncts)
    ]
    return [d for score, _, d in sorted(ranked, key=lambda r: (-r[0], r[1])) if score >= 0]


class UCQCleaner:
    """Algorithm 3 over a union of conjunctive queries.

    Takes the same :class:`~repro.core.qoco.QOCOConfig` as the CQ loops
    (third positional argument); the historical per-class keywords stay
    as compat shims that override the corresponding config fields.
    """

    def __init__(
        self,
        database: Database,
        oracle: AccountingOracle,
        config: Optional[QOCOConfig] = None,
        **overrides,
    ) -> None:
        if config is not None and not isinstance(config, QOCOConfig):
            # the third positional argument used to be deletion_strategy
            warnings.warn(
                "passing deletion_strategy positionally to the UCQ cleaner "
                "is deprecated; pass a QOCOConfig or deletion=...",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides.setdefault("deletion", config)
            config = None
        self.database = database
        self.oracle = (
            oracle if isinstance(oracle, AccountingOracle) else AccountingOracle(oracle)
        )
        self.config = resolve_config(config, **overrides)
        self.deletion_strategy: DeletionStrategy = REGISTRY.resolve(
            "deletion", self.config.deletion
        )
        self.split_strategy: SplitStrategy = REGISTRY.resolve(
            "split", self.config.split
        )
        self.planner = resolve_planner(self.config.planner, seed=self.config.seed)
        self.estimator_factory = self.config.estimator_factory
        self.max_iterations = self.config.max_iterations
        self.rng = random.Random(self.config.seed)

    def clean(self, union: UnionQuery) -> CleaningReport:
        report = CleaningReport(query_name=union.name, log=self.oracle.log)
        verified: set[Answer] = set()
        first = True
        while first or (union.answers(self.database) - verified):
            if report.iterations >= self.max_iterations:
                report.converged = False
                break
            if not first:
                self.oracle.forget()
            first = False
            report.iterations += 1
            report.converged = True
            self._deletion_phase(union, verified, report)
            self._insertion_phase(union, verified, report)
        return report

    # -- phases ------------------------------------------------------------
    def _deletion_phase(
        self, union: UnionQuery, verified: set[Answer], report: CleaningReport
    ) -> None:
        for answer in sorted(union.answers(self.database) - verified, key=repr):
            if answer not in union.answers(self.database):
                continue
            if self._verify_union_answer(union, answer):
                verified.add(answer)
                continue
            try:
                edits = remove_wrong_answer_union(
                    union, self.database, answer, self.oracle,
                    self.deletion_strategy, self.rng,
                )
            except DeletionError:
                report.converged = False
                continue
            report.edits += edits
            report.wrong_answers_removed.append(answer)

    def _insertion_phase(
        self, union: UnionQuery, verified: set[Answer], report: CleaningReport
    ) -> None:
        estimator = self.estimator_factory()
        probes = 0
        while (
            not estimator.is_complete()
            and probes < self.config.max_completions_per_phase
        ):
            current = union.answers(self.database)
            missing = self._complete_union_result(union, current)
            probes += 1
            estimator.observe(missing)
            if missing is None:
                continue
            if missing in current:
                continue
            split = self.split_strategy
            choice = None
            if self.planner is not None:
                choice = self.planner.choose(union)
                split = choice.strategy
            cost_before = self.oracle.log.total_cost
            questions_before = self.oracle.log.question_count
            try:
                edits = add_missing_answer_union(
                    union, self.database, missing, self.oracle,
                    split, self.rng,
                )
            except InsertionError:
                report.converged = False
                if choice is not None:
                    self.planner.observe(
                        choice,
                        cost=self.oracle.log.total_cost - cost_before,
                        questions=self.oracle.log.question_count - questions_before,
                    )
                continue
            if choice is not None:
                self.planner.observe(
                    choice,
                    cost=self.oracle.log.total_cost - cost_before,
                    questions=self.oracle.log.question_count - questions_before,
                )
            report.edits += edits
            report.missing_answers_added.append(missing)
            verified.add(missing)

    # -- union-level questions ----------------------------------------------
    def _verify_union_answer(self, union: UnionQuery, answer: Answer) -> bool:
        """``TRUE(Q, t)?`` for a UCQ: true under some disjunct of D_G.

        One closed question per disjunct, stopping at the first YES (and
        served from the cache on repeats).
        """
        return any(
            self.oracle.verify_answer(disjunct, answer)
            for disjunct in union.disjuncts
        )

    def _complete_union_result(
        self, union: UnionQuery, known: set[Answer]
    ) -> Optional[Answer]:
        """``COMPL(Q(D))`` for a UCQ: probe disjuncts for a missing answer."""
        for disjunct in union.disjuncts:
            missing = self.oracle.complete_result(disjunct, known)
            if missing is not None:
                return missing
        return None


class UnionQOCO(UCQCleaner):
    """Deprecated name for :class:`UCQCleaner`."""

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "UnionQOCO has been renamed to UCQCleaner; the old name will "
            "be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
