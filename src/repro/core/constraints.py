"""Constraint-driven cleaning (the paper's §9 extension, active side).

Constraints give QOCO a *query-free* error trigger: a violated key or
foreign key proves the database differs from the ground truth without
any user flagging a view error.  The crowd interaction follows the
Section 4/5 playbook:

* **key violation** ``{a, b}`` — since ``D_G`` satisfies the key, at
  least one fact is false: the pair is a two-element witness, handled
  with the same greedy most-frequent-first verification (and a fact
  found false resolves every violation it participates in at once);
* **FK violation** (dangling child) — either the child is false or the
  parent is missing: one ``TRUE(child)?`` question decides which; a
  missing parent is completed via ``COMPL`` over a one-atom query (the
  FK columns are already bound, so the crowd fills only the remaining
  attributes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..db.constraints import ConstraintSet, ForeignKeyViolation, KeyViolation
from ..db.database import Database
from ..db.edits import Edit, delete, insert
from ..db.tuples import Fact
from ..oracle.base import AccountingOracle
from ..provenance.witness import most_frequent_fact
from ..query.ast import Atom, Query, Var


class ConstraintRepairError(RuntimeError):
    """Raised when the crowd's answers cannot resolve a violation."""


@dataclass
class RepairReport:
    """Outcome of one constraint-repair run."""

    edits: list[Edit] = field(default_factory=list)
    resolved_key_violations: int = 0
    resolved_fk_violations: int = 0
    unresolved: list[str] = field(default_factory=list)


class ConstraintCleaner:
    """Repairs constraint violations by interacting with the oracle."""

    def __init__(
        self,
        database: Database,
        oracle: AccountingOracle,
        constraints: ConstraintSet,
        rng: Optional[random.Random] = None,
        max_rounds: int = 10,
    ) -> None:
        constraints.validate_against(database)
        self.database = database
        self.oracle = oracle
        self.constraints = constraints
        self.rng = rng if rng is not None else random.Random()
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def repair(self) -> RepairReport:
        """Resolve all violations (or record the unresolvable ones)."""
        report = RepairReport()
        for _ in range(self.max_rounds):
            progressed = False
            key_violations = self.constraints.key_violations(self.database)
            if key_violations:
                progressed |= self._repair_keys(key_violations, report)
            fk_violations = self.constraints.foreign_key_violations(self.database)
            if fk_violations:
                progressed |= self._repair_foreign_keys(fk_violations, report)
            if self.constraints.is_satisfied(self.database):
                break
            if not progressed:
                break
        for violation in self.constraints.violations(self.database):
            report.unresolved.append(str(violation))
        return report

    # ------------------------------------------------------------------
    def _repair_keys(
        self, violations: list[KeyViolation], report: RepairReport
    ) -> bool:
        """Hitting-set style resolution of conflicting pairs."""
        sets = [violation.facts for violation in violations]
        progressed = False
        while sets:
            fact = most_frequent_fact(sets)
            assert fact is not None
            if self.oracle.verify_fact(fact):
                # the true fact survives; its partners must be false
                partners = sorted(
                    {next(iter(s - {fact})) for s in sets if fact in s}, key=repr
                )
                resolved_any = False
                for partner in partners:
                    if self.oracle.verify_fact(partner):
                        report.unresolved.append(
                            f"both {fact} and {partner} affirmed despite key conflict"
                        )
                        continue
                    self._apply(delete(partner), report)
                    resolved_any = True
                removed = {s for s in sets if fact in s}
                report.resolved_key_violations += len(removed)
                sets = [s for s in sets if fact not in s]
                progressed |= resolved_any
            else:
                self._apply(delete(fact), report)
                report.resolved_key_violations += sum(1 for s in sets if fact in s)
                sets = [s for s in sets if fact not in s]
                progressed = True
        return progressed

    def _repair_foreign_keys(
        self, violations: list[ForeignKeyViolation], report: RepairReport
    ) -> bool:
        progressed = False
        for violation in violations:
            child = violation.child_fact
            if child not in self.database:
                continue  # fixed as a side effect of an earlier repair
            if not self.oracle.verify_fact(child):
                self._apply(delete(child), report)
                report.resolved_fk_violations += 1
                progressed = True
                continue
            parent_fact = self._complete_parent(violation)
            if parent_fact is None:
                report.unresolved.append(str(violation))
                continue
            self._apply(insert(parent_fact), report)
            report.resolved_fk_violations += 1
            progressed = True
        return progressed

    def _complete_parent(self, violation: ForeignKeyViolation) -> Optional[Fact]:
        """Ask the crowd to complete the missing parent tuple.

        Builds the one-atom query ``parent(bound..., v_i...)`` with the FK
        columns bound, and poses ``COMPL``; when the FK covers the whole
        parent tuple the fact is fully determined and no question is
        needed.
        """
        pattern = violation.parent_pattern(self.database)
        terms = tuple(
            value if value is not None else Var(f"v{i}")
            for i, value in enumerate(pattern)
        )
        atom = Atom(violation.foreign_key.parent, terms)
        if atom.is_ground():
            return Fact(atom.relation, tuple(atom.terms))  # type: ignore[arg-type]
        head = tuple(t for t in terms if isinstance(t, Var))
        query = Query(head=head, atoms=(atom,), name=f"fk:{atom.relation}")
        completion = self.oracle.complete_assignment(query, {})
        if completion is None:
            return None
        ground = atom.substitute(completion)
        return Fact(ground.relation, tuple(ground.terms))  # type: ignore[arg-type]

    def _apply(self, edit: Edit, report: RepairReport) -> None:
        if edit.apply(self.database):
            report.edits.append(edit)
