"""The main iterative cleaning loop (Section 6, Algorithm 3).

Alternates a deletion phase (verify every unverified answer of ``Q(D)``,
remove the wrong ones via Algorithm 1) with an insertion phase (pose
``COMPL(Q(D))`` questions until the enumeration black-box declares the
result complete, adding each missing answer via Algorithm 2), repeating
while unverified answers appear — fixing one error class can surface new
errors of the other class (Example 6.1), but Proposition 3.3 guarantees
every edit moves ``D`` toward ``D_G``, so the loop converges.
"""

from __future__ import annotations

import dataclasses
import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from ..db.database import Database
from ..oracle.base import AccountingOracle, Oracle
from ..oracle.enumeration import CompletionEstimator, ExactCompletion
from ..query.ast import Query
from ..query.backend import (
    BackendEvaluator,
    EvalBackend,
    NaiveBackend,
    resolve_backend,
)
from ..query.evaluator import Answer, Evaluator, answer_to_partial
from ..query.incremental import IncrementalAnswers, supports_incremental
from ..telemetry import TELEMETRY as _TELEMETRY
from .deletion import DeletionError, DeletionStrategy, crowd_remove_wrong_answer
from .insertion import InsertionConfig, InsertionError, crowd_add_missing_answer
from .registry import REGISTRY
from .session import CleaningReport
from .split import SplitStrategy


@dataclass(init=False)
class QOCOConfig:
    """Configuration shared by every cleaning loop.

    One config type drives :class:`QOCO`,
    :class:`~repro.core.parallel.ParallelQOCO`, and
    :class:`~repro.core.ucq.UCQCleaner`; fields a given loop has no use
    for (e.g. ``completion_width`` on the sequential loop) are simply
    ignored by it.

    Strategy fields accept registry *names* (resolved through
    :data:`repro.core.registry.REGISTRY`, case-insensitive) or built
    instances interchangeably::

        QOCOConfig(split="mincut", deletion="responsibility", planner="bandit")
        QOCOConfig(split=MinCutSplit(), deletion=ResponsibilityDeletion())

    Names travel the shard wire and the service API as-is; instances
    work everywhere in-process.  The pre-redesign spellings
    (``deletion_strategy=`` / ``split_strategy=`` keywords) are
    accepted with a :class:`DeprecationWarning`, and the read-only
    properties of the same names return the resolved instances.
    """

    #: Strategy for Algorithm 1 (deletion): a registry name
    #: (``"qoco"``, ``"qoco-"``, ``"random"``, ``"responsibility"``,
    #: ``"trust"``) or a :class:`DeletionStrategy` instance.
    deletion: Union[str, DeletionStrategy] = "qoco"
    #: Strategy for Algorithm 2's Split(): a registry name (``"naive"``,
    #: ``"random"``, ``"mincut"``, ``"provenance"``) or a
    #: :class:`SplitStrategy` instance.
    split: Union[str, SplitStrategy] = "provenance"
    #: Adaptive question planner for the insertion phase: ``None``
    #: (static ``split``), a registry name (``"bandit"``), or a
    #: :class:`repro.plan.BanditPlanner`-like instance.  When set, each
    #: missing-answer episode's split strategy is chosen per query shape
    #: from the planner's learned cost model; a planner pinned to a
    #: single arm is bit-identical to the corresponding static strategy
    #: (see ``docs/planner.md``).
    planner: Optional[Union[str, Any]] = None
    #: Factory for the enumeration black-box (fresh instance per phase).
    estimator_factory: Callable[[], CompletionEstimator] = ExactCompletion
    #: Algorithm 2 tuning.
    insertion: InsertionConfig = field(default_factory=InsertionConfig)
    #: Hard bound on outer iterations (convergence is guaranteed with a
    #: perfect oracle; imperfect crowds need a stop).
    max_iterations: int = 10
    #: Bound on COMPL(Q(D)) questions per insertion phase.
    max_completions_per_phase: int = 100
    #: Minimize the view definition first (Chandra–Merlin core): redundant
    #: body atoms inflate witnesses and crowd questions for free.
    minimize_query: bool = False
    #: Maintain ``Q(D)`` and every answer's witnesses incrementally under
    #: edits (delta rules) instead of re-running the evaluator per check.
    #: Semantics are bit-identical; query shapes the delta rules don't
    #: cover fall back to full evaluation automatically.
    use_incremental: bool = True
    #: Evaluation substrate for ``Q(D)`` reads, satisfiability probes and
    #: the incremental engine's delta enumeration: ``"naive"`` (the
    #: backtracking reference), ``"columnar"`` (vectorized numpy hash
    #: joins), ``"sql"`` (DuckDB/sqlite compilation) or any
    #: :class:`~repro.query.backend.EvalBackend` instance.  Non-reference
    #: backends transparently fall back to ``naive`` on query shapes
    #: outside their capability flags; results are identical either way.
    backend: Union[str, EvalBackend] = "naive"
    #: Random seed for the strategies' tie-breaking (and, derived, for
    #: the planner's exploration — see ``docs/planner.md``).
    seed: Optional[int] = None
    #: COMPL(Q(D)) questions posted together per parallel wave
    #: (ParallelQOCO only; the sequential loops ignore it).
    completion_width: int = 4
    #: Builds the round scheduler for one parallel clean() — the seam
    #: where ``repro.dispatch`` plugs in its live engine.  ``None``
    #: selects the synchronous ``RoundScheduler``.  ParallelQOCO only.
    scheduler_factory: Optional[Callable[..., Any]] = None

    def __init__(
        self,
        deletion: Union[str, DeletionStrategy] = "qoco",
        split: Union[str, SplitStrategy] = "provenance",
        planner: Optional[Union[str, Any]] = None,
        estimator_factory: Callable[[], CompletionEstimator] = ExactCompletion,
        insertion: Optional[InsertionConfig] = None,
        max_iterations: int = 10,
        max_completions_per_phase: int = 100,
        minimize_query: bool = False,
        use_incremental: bool = True,
        backend: Union[str, EvalBackend] = "naive",
        seed: Optional[int] = None,
        completion_width: int = 4,
        scheduler_factory: Optional[Callable[..., Any]] = None,
        **legacy: Any,
    ) -> None:
        for name, value in legacy.items():
            target = _LEGACY_CONFIG_ALIASES.get(name)
            if target is None:
                raise TypeError(
                    f"QOCOConfig() got an unexpected keyword argument {name!r}"
                )
            warnings.warn(
                f"QOCOConfig({name}=...) is deprecated; use {target}=... "
                f"(a registry name or a strategy instance)",
                DeprecationWarning,
                stacklevel=2,
            )
            if target == "deletion":
                deletion = value
            elif target == "split":
                split = value
            else:
                insertion = value
        self.deletion = deletion
        self.split = split
        self.planner = planner
        self.estimator_factory = estimator_factory
        self.insertion = insertion if insertion is not None else InsertionConfig()
        self.max_iterations = max_iterations
        self.max_completions_per_phase = max_completions_per_phase
        self.minimize_query = minimize_query
        self.use_incremental = use_incremental
        self.backend = backend
        self.seed = seed
        self.completion_width = completion_width
        self.scheduler_factory = scheduler_factory

    # -- pre-redesign read compatibility --------------------------------
    @property
    def deletion_strategy(self) -> DeletionStrategy:
        """The resolved deletion strategy (old field name, read-only)."""
        return REGISTRY.resolve("deletion", self.deletion)

    @property
    def split_strategy(self) -> SplitStrategy:
        """The resolved split strategy (old field name, read-only)."""
        return REGISTRY.resolve("split", self.split)


#: Pre-redesign keyword spellings still accepted (with a warning) by
#: ``QOCOConfig()`` and every entry point routed through
#: :func:`resolve_config`.
_LEGACY_CONFIG_ALIASES = {
    "deletion_strategy": "deletion",
    "split_strategy": "split",
    "insertion_config": "insertion",
}

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(QOCOConfig))


def resolve_config(config: Optional[QOCOConfig], **overrides: Any) -> QOCOConfig:
    """Merge per-call keyword overrides into *config*.

    The keyword-compat seam behind the unified constructor signatures:
    per-call kwargs (``max_iterations=...``, ``seed=...``,
    ``split="mincut"``, ...) become targeted field replacements on the
    shared :class:`QOCOConfig`.  ``None`` overrides are ignored, so
    plain ``Cleaner(db, oracle, config)`` passes through untouched.
    Pre-redesign keyword names (``split_strategy=``,
    ``deletion_strategy=``, ``insertion_config=``) are translated to
    the canonical fields with a :class:`DeprecationWarning`; unknown
    keywords raise :class:`TypeError`.
    """
    resolved = config if config is not None else QOCOConfig()
    actual: dict[str, Any] = {}
    for name, value in overrides.items():
        if value is None:
            continue
        target = _LEGACY_CONFIG_ALIASES.get(name)
        if target is not None:
            warnings.warn(
                f"the {name}= keyword is deprecated; use {target}=... "
                f"(a registry name or a strategy instance)",
                DeprecationWarning,
                stacklevel=3,
            )
            name = target
        if name not in _CONFIG_FIELDS:
            raise TypeError(f"unknown QOCOConfig override {name!r}")
        actual[name] = value
    if not actual:
        return resolved
    return dataclasses.replace(resolved, **actual)


def resolve_planner(spec: Any, *, seed: Optional[int] = None) -> Optional[Any]:
    """Build the planner a cleaning loop will drive, or ``None``.

    A string resolves through the registry (lazy-importing
    ``repro.plan``) and the fresh instance is seeded from the session
    seed, so every stochastic planner choice flows from ``--repro-seed``.
    An already-built instance is returned untouched — it may be shared
    across sessions (its cost model accumulates), so its RNG belongs to
    whoever constructed it.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        planner = REGISTRY.resolve("planner", spec)
        from ..plan.planner import derive_seed

        planner.reseed(derive_seed(seed, "planner"))
        return planner
    return REGISTRY.resolve("planner", spec)


class QOCO:
    """The QOCO cleaning system over one database and one oracle.

    Configure with a shared :class:`QOCOConfig` (third positional
    argument) or with per-field keyword overrides — ``QOCO(db, oracle,
    seed=7)`` is shorthand for ``QOCO(db, oracle, QOCOConfig(seed=7))``,
    and ``QOCO(db, oracle, split="mincut", planner="bandit")`` resolves
    strategy names through the registry.
    """

    def __init__(
        self,
        database: Database,
        oracle: Oracle,
        config: Optional[QOCOConfig] = None,
        **overrides: Any,
    ) -> None:
        self.database = database
        self.config = resolve_config(config, **overrides)
        self.deletion_strategy: DeletionStrategy = REGISTRY.resolve(
            "deletion", self.config.deletion
        )
        self.split_strategy: SplitStrategy = REGISTRY.resolve(
            "split", self.config.split
        )
        self.planner = resolve_planner(self.config.planner, seed=self.config.seed)
        self.backend = resolve_backend(self.config.backend)
        self.oracle = (
            oracle
            if isinstance(oracle, AccountingOracle)
            else AccountingOracle(oracle)
        )
        self.rng = random.Random(self.config.seed)
        #: The maintained-answer engine for the query being cleaned (set
        #: for the duration of :meth:`clean` when incremental mode is on).
        self._engine: Optional[IncrementalAnswers] = None

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------
    def clean(self, query: Query) -> CleaningReport:
        """Clean ``D`` w.r.t. *query* until ``Q(D) = Q(D_G)`` (with a
        perfect oracle) or the iteration bound is hit."""
        if self.config.minimize_query:
            from ..query.minimize import minimize

            query = minimize(query)
        report = CleaningReport(query_name=query.name, log=self.oracle.log)
        verified: set[Answer] = set()

        if self.config.use_incremental and supports_incremental(query):
            self._engine = IncrementalAnswers(
                query, self.database, evaluator_factory=self._make_evaluator
            )
        try:
            with _TELEMETRY.span("qoco.clean", query=query.name):
                first_iteration = True
                while first_iteration or (self._answers(query) - verified):
                    if report.iterations >= self.config.max_iterations:
                        report.converged = False
                        break
                    if not first_iteration:
                        # Imperfect crowds: a wrong majority vote must not
                        # poison the retry — re-poll rather than trust the
                        # cached answer.
                        self.oracle.forget()
                    first_iteration = False
                    report.iterations += 1
                    report.converged = True
                    _TELEMETRY.count("qoco.iterations")
                    with _TELEMETRY.span("qoco.deletion_phase"):
                        self._deletion_phase(query, verified, report)
                    with _TELEMETRY.span("qoco.insertion_phase"):
                        self._insertion_phase(query, verified, report)
        finally:
            if self._engine is not None:
                self._engine.close()
                self._engine = None
        return report

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _make_evaluator(self, query: Query, database: Database):
        """An evaluator on the configured backend (the seam the
        incremental engine's delta rules enumerate through)."""
        if isinstance(self.backend, NaiveBackend):
            return Evaluator(query, database)
        return BackendEvaluator(query, database, self.backend)

    def _answers(self, query: Query) -> set[Answer]:
        if self._engine is not None and self._engine.query is query:
            return self._engine.answers()
        return self.backend.evaluate(query, self.database)

    def _answer_alive(self, query: Query, answer: Answer) -> bool:
        """Whether *answer* is still in ``Q(D)`` — a targeted membership
        check (maintained set, else a satisfiability probe of the
        answer's partial assignment), never a full re-enumeration."""
        if self._engine is not None and self._engine.query is query:
            return answer in self._engine
        partial = answer_to_partial(query, answer)
        if partial is None:
            return False
        return self.backend.is_satisfiable(query, self.database, partial)

    def _witnesses(self, query: Query, answer: Answer) -> Optional[list[frozenset]]:
        """Maintained witness sets for *answer*, or ``None`` to let
        Algorithm 1 enumerate them itself (no engine for this query)."""
        if self._engine is not None and self._engine.query is query:
            return list(self._engine.witnesses(answer))
        return None

    def _deletion_phase(
        self, query: Query, verified: set[Answer], report: CleaningReport
    ) -> None:
        """Algorithm 3, lines 2-6.

        One evaluation (or maintained-set read) for the sweep; whether a
        later answer survived an earlier removal's side effects is a
        targeted :meth:`_answer_alive` check, not a fresh ``Q(D)``.
        """
        for answer in sorted(self._answers(query) - verified, key=repr):
            if not self._answer_alive(query, answer):
                continue  # removed as a side effect of an earlier deletion
            if self.oracle.verify_answer(query, answer):
                verified.add(answer)
                _TELEMETRY.count("qoco.answers_verified")
                continue
            _TELEMETRY.count("qoco.wrong_answers")
            try:
                edits = crowd_remove_wrong_answer(
                    query,
                    self.database,
                    answer,
                    self.oracle,
                    strategy=self.deletion_strategy,
                    rng=self.rng,
                    witnesses=self._witnesses(query, answer),
                )
            except DeletionError:
                report.converged = False
                continue
            report.edits += edits
            report.wrong_answers_removed.append(answer)

    def _insertion_phase(
        self, query: Query, verified: set[Answer], report: CleaningReport
    ) -> None:
        """Algorithm 3, lines 7-9."""
        estimator = self.config.estimator_factory()
        completions = 0
        while (
            not estimator.is_complete()
            and completions < self.config.max_completions_per_phase
        ):
            current = self._answers(query)
            missing = self.oracle.complete_result(query, current)
            completions += 1
            estimator.observe(missing)
            if missing is None:
                continue
            if missing in current:
                continue  # the crowd named an answer we already have
            # ``Q|t(D) ≠ ∅ ⟺ t ∈ Q(D)``: with a maintained answer set the
            # loop guard of Algorithm 2 becomes an O(1) membership probe.
            present = None
            if self._engine is not None and self._engine.query is query:
                engine = self._engine
                present = lambda m=missing: m in engine  # noqa: E731
            split = self.split_strategy
            choice = None
            if self.planner is not None:
                choice = self.planner.choose(query)
                split = choice.strategy
            cost_before = self.oracle.log.total_cost
            questions_before = self.oracle.log.question_count
            try:
                edits = crowd_add_missing_answer(
                    query,
                    self.database,
                    missing,
                    self.oracle,
                    split=split,
                    rng=self.rng,
                    config=self.config.insertion,
                    present=present,
                )
            except InsertionError:
                report.converged = False
                if choice is not None:
                    self.planner.observe(
                        choice,
                        cost=self.oracle.log.total_cost - cost_before,
                        questions=self.oracle.log.question_count - questions_before,
                    )
                continue
            if choice is not None:
                self.planner.observe(
                    choice,
                    cost=self.oracle.log.total_cost - cost_before,
                    questions=self.oracle.log.question_count - questions_before,
                )
            report.edits += edits
            report.missing_answers_added.append(missing)
            verified.add(missing)
            _TELEMETRY.count("qoco.missing_answers")
