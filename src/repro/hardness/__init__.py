"""NP-hardness reductions (Theorems 4.2 and 5.2) and a DPLL solver."""

from .reductions import (
    CleaningInstance,
    D_CONST,
    element_fact,
    hitting_set_to_deletion,
    one3sat_to_insertion,
    witness_to_sat_assignment,
)
from .sat import (
    Clause,
    Formula,
    SatError,
    clause_satisfying_rows,
    clause_variables,
    is_satisfying,
    solve,
    validate_formula,
)

__all__ = [
    "Clause",
    "CleaningInstance",
    "D_CONST",
    "Formula",
    "SatError",
    "clause_satisfying_rows",
    "clause_variables",
    "element_fact",
    "hitting_set_to_deletion",
    "is_satisfying",
    "one3sat_to_insertion",
    "solve",
    "validate_formula",
    "witness_to_sat_assignment",
]
