"""A small DPLL SAT solver.

Used to validate the One-3SAT → insertion-question reduction of
Theorem 5.2: the reduction maps a satisfiable 3CNF formula to a cleaning
instance, and the tests check that satisfying assignments and witnesses
for the missing answer correspond exactly.

Literals use the DIMACS convention: variable ``i`` (1-based) appears as
``+i``, its negation as ``-i``.  A clause is a tuple of literals; a
formula is a sequence of clauses.
"""

from __future__ import annotations

from typing import Optional, Sequence

Literal = int
Clause = tuple[Literal, ...]
Formula = Sequence[Clause]


class SatError(ValueError):
    """Raised for malformed formulas (zero literals, empty clauses...)."""


def validate_formula(formula: Formula) -> int:
    """Check the formula and return the number of variables."""
    max_var = 0
    for clause in formula:
        if not clause:
            raise SatError("empty clause")
        for literal in clause:
            if literal == 0:
                raise SatError("literal 0 is not allowed")
            max_var = max(max_var, abs(literal))
    return max_var


def _simplify(formula: list[Clause], literal: Literal) -> Optional[list[Clause]]:
    """Assign *literal* true; return the reduced formula or ``None`` on
    an empty clause (conflict)."""
    result: list[Clause] = []
    for clause in formula:
        if literal in clause:
            continue
        if -literal in clause:
            reduced = tuple(l for l in clause if l != -literal)
            if not reduced:
                return None
            result.append(reduced)
        else:
            result.append(clause)
    return result


def solve(formula: Formula) -> Optional[dict[int, bool]]:
    """A satisfying assignment ``{var: value}``, or ``None`` if UNSAT.

    All variables mentioned in the formula are assigned (unconstrained
    ones default to ``False``).
    """
    n_vars = validate_formula(formula)
    assignment: dict[int, bool] = {}

    def dpll(clauses: list[Clause]) -> bool:
        # Unit propagation.
        while True:
            unit = next((c[0] for c in clauses if len(c) == 1), None)
            if unit is None:
                break
            assignment[abs(unit)] = unit > 0
            reduced = _simplify(clauses, unit)
            if reduced is None:
                return False
            clauses = reduced
        if not clauses:
            return True
        # Pure literal elimination.
        literals = {l for c in clauses for l in c}
        pure = next((l for l in sorted(literals, key=abs) if -l not in literals), None)
        if pure is not None:
            assignment[abs(pure)] = pure > 0
            reduced = _simplify(clauses, pure)
            return reduced is not None and dpll(reduced)
        # Branch on the first literal of the first clause.
        literal = clauses[0][0]
        for choice in (literal, -literal):
            saved = dict(assignment)
            assignment[abs(choice)] = choice > 0
            reduced = _simplify(clauses, choice)
            if reduced is not None and dpll(reduced):
                return True
            assignment.clear()
            assignment.update(saved)
        return False

    if not dpll([tuple(c) for c in formula]):
        return None
    for var in range(1, n_vars + 1):
        assignment.setdefault(var, False)
    return assignment


def is_satisfying(formula: Formula, assignment: dict[int, bool]) -> bool:
    """Whether *assignment* satisfies every clause."""
    for clause in formula:
        if not any(
            assignment.get(abs(l), False) == (l > 0) for l in clause
        ):
            return False
    return True


def clause_satisfying_rows(clause: Clause) -> list[tuple[int, ...]]:
    """All 0/1 rows over the clause's variables that satisfy it.

    Columns follow the clause's literal order (by variable occurrence);
    a variable repeated in the clause gets one column.  Used by the
    Theorem 5.2 reduction to populate the ground truth relation of the
    clause (e.g. 7 of the 8 rows for a clause over 3 distinct vars).
    """
    variables: list[int] = []
    for literal in clause:
        var = abs(literal)
        if var not in variables:
            variables.append(var)
    rows = []
    for bits in range(2 ** len(variables)):
        values = {
            var: bool((bits >> i) & 1) for i, var in enumerate(variables)
        }
        if is_satisfying([clause], values):
            rows.append(tuple(int(values[v]) for v in variables))
    return rows


def clause_variables(clause: Clause) -> list[int]:
    """Distinct variables of a clause in literal order."""
    variables: list[int] = []
    for literal in clause:
        var = abs(literal)
        if var not in variables:
            variables.append(var)
    return variables
