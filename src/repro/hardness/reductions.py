"""The NP-hardness reductions of Theorems 4.2 and 5.2, as constructions.

These build actual cleaning instances (schema, dirty ``D``, ground truth
``D_G``, query, target answer) from Hitting-Set and One-3SAT inputs,
following the proofs in the paper's appendix verbatim.  The test suite
runs the cleaning algorithms on the constructed instances and checks the
correspondences the proofs claim:

* Theorem 4.2 — deletion-question sets for the answer ``(d)`` correspond
  to hitting sets of ``(U, S)``;
* Theorem 5.2 — witnesses for the missing answer ``(d)`` w.r.t. ``D_G``
  correspond to satisfying assignments of the 3CNF formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..db.database import Database
from ..db.schema import RelationSchema, Schema
from ..db.tuples import Constant, Fact
from ..query.ast import Atom, Query, Var
from .sat import Formula, clause_variables, clause_satisfying_rows, validate_formula

#: The distinguished constant of both reductions.
D_CONST = "d"


@dataclass(frozen=True)
class CleaningInstance:
    """A constructed EDIT GENERATION instance."""

    schema: Schema
    dirty: Database
    ground_truth: Database
    query: Query
    target_answer: tuple[Constant, ...]


def hitting_set_to_deletion(
    universe: Sequence[Hashable], sets: Sequence[frozenset]
) -> CleaningInstance:
    """Theorem 4.2: reduce Hitting Set ``(U, S)`` to answer deletion.

    * one unary relation ``R_i`` per element ``u_i`` with facts
      ``R_i(u_i)`` and ``R_i(d)``;
    * relation ``R(Z, A, X_1..X_|U|)`` holding the characteristic vector
      of every ``S_j`` (position *i* holds ``u_i`` if ``u_i ∈ S_j``,
      else ``d``);
    * ``D_G = {R_1(d), ..., R_|U|(d)}``;
    * ``Q(z) :- R(z, y, w_1..w_|U|), R_1(w_1), ..., R_|U|(w_|U|)``.

    ``(d)`` is then a wrong answer of ``Q(D)``, with one witness per
    ``S_j``, and minimal question sets removing it correspond to minimal
    hitting sets.
    """
    if not universe:
        raise ValueError("universe must be non-empty")
    if len(set(universe)) != len(universe):
        raise ValueError("universe has duplicate elements")
    elements = [str(u) for u in universe]
    for j, s in enumerate(sets):
        if not s:
            raise ValueError(f"set {j} is empty (instance unhittable)")
        if not set(str(e) for e in s) <= set(elements):
            raise ValueError(f"set {j} contains elements outside the universe")

    relations = [
        RelationSchema(f"r{i + 1}", ("x",)) for i in range(len(elements))
    ]
    wide = RelationSchema(
        "r", ("z", "a") + tuple(f"x{i + 1}" for i in range(len(elements)))
    )
    schema = Schema(relations + [wide])

    dirty = Database(schema)
    ground_truth = Database(schema)
    for i, element in enumerate(elements):
        dirty.insert(Fact(f"r{i + 1}", (element,)))
        dirty.insert(Fact(f"r{i + 1}", (D_CONST,)))
        ground_truth.insert(Fact(f"r{i + 1}", (D_CONST,)))
    for j, s in enumerate(sets):
        members = {str(e) for e in s}
        vector = tuple(
            element if element in members else D_CONST for element in elements
        )
        dirty.insert(Fact("r", (D_CONST, f"s{j + 1}") + vector))

    z, y = Var("z"), Var("y")
    ws = [Var(f"w{i + 1}") for i in range(len(elements))]
    atoms = [Atom("r", (z, y) + tuple(ws))]
    atoms += [Atom(f"r{i + 1}", (ws[i],)) for i in range(len(elements))]
    query = Query(head=(z,), atoms=tuple(atoms), name="hitting")

    return CleaningInstance(schema, dirty, ground_truth, query, (D_CONST,))


def element_fact(index: int, element: Hashable) -> Fact:
    """The fact ``R_{index+1}(u)`` whose deletion "hits" element *u*."""
    return Fact(f"r{index + 1}", (str(element),))


def one3sat_to_insertion(formula: Formula) -> CleaningInstance:
    """Theorem 5.2: reduce One-3SAT to answer insertion.

    * one relation ``R_i(A, vars of clause i)`` per clause;
    * ``D`` is empty; ``D_G`` holds, per clause, one fact
      ``R_i(d, values...)`` for every satisfying row of the clause;
    * ``Q(x) :- R_1(x, X...), ..., R_m(x, X...)`` with the SAT variables
      shared across clause atoms.

    ``(d)`` is a missing answer iff the formula is satisfiable, and each
    of its witnesses w.r.t. ``D_G`` encodes a satisfying assignment.
    """
    n_vars = validate_formula(formula)
    if n_vars == 0 or not formula:
        raise ValueError("formula must have at least one clause")

    relations = []
    for i, clause in enumerate(formula):
        columns = ("a",) + tuple(f"v{v}" for v in clause_variables(clause))
        relations.append(RelationSchema(f"c{i + 1}", columns))
    schema = Schema(relations)

    dirty = Database(schema)
    ground_truth = Database(schema)
    for i, clause in enumerate(formula):
        for row in clause_satisfying_rows(clause):
            ground_truth.insert(Fact(f"c{i + 1}", (D_CONST,) + row))

    x = Var("x")
    atoms = []
    for i, clause in enumerate(formula):
        terms: tuple = (x,) + tuple(Var(f"X{v}") for v in clause_variables(clause))
        atoms.append(Atom(f"c{i + 1}", terms))
    query = Query(head=(x,), atoms=tuple(atoms), name="one3sat")

    return CleaningInstance(schema, dirty, ground_truth, query, (D_CONST,))


def witness_to_sat_assignment(
    formula: Formula, assignment_values: dict[str, Constant]
) -> dict[int, bool]:
    """Decode a query assignment of the reduction back to a SAT assignment.

    *assignment_values* maps variable names (``"X3"``) to 0/1 constants.
    """
    result: dict[int, bool] = {}
    for clause in formula:
        for var in clause_variables(clause):
            name = f"X{var}"
            if name in assignment_values:
                result[var] = bool(assignment_values[name])
    return result
