"""Provenance semirings (Green, Karvounarakis, Tannen — the paper's [32]).

Section 2: "Observe that a witness can in fact be extracted from a
semiring of polynomials.  However, we use the term witness and witness
set since we do not require the full generality of a provenance
semiring."  This module supplies that full generality anyway: the
provenance polynomial of an answer (one monomial per valid assignment,
one indeterminate per base fact) and its evaluation under standard
semirings —

* **Boolean** — does the answer hold?
* **counting** (ℕ) — how many derivations (bag semantics)?
* **why** — the witness set, recovering exactly what the deletion
  algorithm consumes (property-tested against the evaluator);
* **trust / tropical-style** (min, max) — the confidence of the best
  derivation given per-fact trust scores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Generic, Mapping, TypeVar

from ..db.database import Database
from ..db.tuples import Fact
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator

Value = TypeVar("Value")


@dataclass(frozen=True)
class Monomial:
    """One derivation: the multiset of facts an assignment used.

    ``powers[f]`` counts how many body atoms mapped to ``f`` (a fact can
    support several atoms of a self-join).
    """

    powers: tuple[tuple[Fact, int], ...]

    @classmethod
    def from_facts(cls, facts: Mapping[Fact, int]) -> "Monomial":
        return cls(tuple(sorted(facts.items(), key=repr)))

    def facts(self) -> frozenset[Fact]:
        return frozenset(f for f, _ in self.powers)

    def degree(self) -> int:
        return sum(power for _, power in self.powers)

    def __str__(self) -> str:
        parts = [
            str(f) if power == 1 else f"{f}^{power}" for f, power in self.powers
        ]
        return " * ".join(parts) if parts else "1"


@dataclass(frozen=True)
class Polynomial:
    """A provenance polynomial: a bag of monomials (coefficients in ℕ)."""

    monomials: tuple[tuple[Monomial, int], ...]

    @classmethod
    def from_counter(cls, counts: Counter) -> "Polynomial":
        return cls(tuple(sorted(counts.items(), key=repr)))

    def __str__(self) -> str:
        parts = [
            str(m) if count == 1 else f"{count}*({m})"
            for m, count in self.monomials
        ]
        return " + ".join(parts) if parts else "0"

    def is_zero(self) -> bool:
        return not self.monomials


class Semiring(ABC, Generic[Value]):
    """A commutative semiring with a valuation of base facts."""

    @property
    @abstractmethod
    def zero(self) -> Value: ...

    @property
    @abstractmethod
    def one(self) -> Value: ...

    @abstractmethod
    def plus(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def times(self, a: Value, b: Value) -> Value: ...

    @abstractmethod
    def of_fact(self, fact: Fact) -> Value:
        """The valuation of a base fact (the tag of the indeterminate)."""

    # ------------------------------------------------------------------
    def evaluate(self, polynomial: Polynomial) -> Value:
        total = self.zero
        for monomial, coefficient in polynomial.monomials:
            term = self.one
            for fact, power in monomial.powers:
                value = self.of_fact(fact)
                for _ in range(power):
                    term = self.times(term, value)
            for _ in range(coefficient):
                total = self.plus(total, term)
        return total


class BooleanSemiring(Semiring[bool]):
    """Set semantics: is the answer derivable?"""

    zero = False
    one = True

    def plus(self, a, b):
        return a or b

    def times(self, a, b):
        return a and b

    def of_fact(self, fact):
        return True


class CountingSemiring(Semiring[int]):
    """Bag semantics: the number of derivations."""

    zero = 0
    one = 1

    def plus(self, a, b):
        return a + b

    def times(self, a, b):
        return a * b

    def of_fact(self, fact):
        return 1


class WhySemiring(Semiring[frozenset]):
    """Why-provenance: the set of witnesses (sets of fact-sets)."""

    zero = frozenset()
    one = frozenset({frozenset()})

    def plus(self, a, b):
        return a | b

    def times(self, a, b):
        return frozenset(x | y for x in a for y in b)

    def of_fact(self, fact):
        return frozenset({frozenset({fact})})


class TrustSemiring(Semiring[float]):
    """Best-derivation confidence: (max, min) over per-fact trust."""

    zero = 0.0
    one = 1.0

    def __init__(self, trust: Callable[[Fact], float] | Mapping[Fact, float], default: float = 1.0):
        if isinstance(trust, Mapping):
            mapping = dict(trust)
            self._trust = lambda f: mapping.get(f, default)
        else:
            self._trust = trust

    def plus(self, a, b):
        return max(a, b)

    def times(self, a, b):
        return min(a, b)

    def of_fact(self, fact):
        return self._trust(fact)


def provenance_polynomial(
    query: Query, database: Database, answer: Answer
) -> Polynomial:
    """The provenance polynomial of *answer*: one monomial per valid
    assignment, counting repeated fact uses across body atoms."""
    from ..query.evaluator import answer_to_partial

    partial = answer_to_partial(query, answer)
    if partial is None:
        return Polynomial(())
    counts: Counter = Counter()
    for assignment in Evaluator(query, database).assignments(partial):
        uses: Counter = Counter()
        for atom in query.atoms:
            ground = atom.substitute(assignment)
            uses[Fact(ground.relation, tuple(ground.terms))] += 1  # type: ignore[arg-type]
        counts[Monomial.from_facts(uses)] += 1
    return Polynomial.from_counter(counts)
