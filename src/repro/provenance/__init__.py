"""Provenance: witnesses, semiring polynomials, WhyNot? picky joins."""

from .semiring import (
    BooleanSemiring,
    CountingSemiring,
    Monomial,
    Polynomial,
    Semiring,
    TrustSemiring,
    WhySemiring,
    provenance_polynomial,
)
from .whynot import PickyJoin, find_picky_join
from .witness import (
    fact_frequencies,
    lineage,
    most_frequent_fact,
    remove_fact_from_all,
    why_provenance,
    witnesses_containing,
    witnesses_without,
)

__all__ = [
    "BooleanSemiring",
    "CountingSemiring",
    "Monomial",
    "PickyJoin",
    "Polynomial",
    "Semiring",
    "TrustSemiring",
    "WhySemiring",
    "fact_frequencies",
    "provenance_polynomial",
    "find_picky_join",
    "lineage",
    "most_frequent_fact",
    "remove_fact_from_all",
    "why_provenance",
    "witnesses_containing",
    "witnesses_without",
]
