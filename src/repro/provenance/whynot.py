"""Picky-operator detection à la WhyNot? (Tran & Chan [60]).

The Provenance split (Section 5.2) feeds ``Q|t`` — a query with no
projection and no answers — to a WhyNot?-style analysis and asks "why no
answers?".  The analysis walks a left-deep join plan over the body atoms
and reports the first join whose inputs both produce tuples but whose
output is empty (the *picky* join).  QOCO splits the query's atoms at
that join, which is the only piece of WhyNot?'s output the split needs.

Our detector grows a satisfiable prefix greedily: starting from a seed
atom, it repeatedly joins in the atom that keeps the partial plan
satisfiable (preferring connected atoms); the first atom that cannot be
added marks the frontier, and the query splits into (prefix, rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..db.database import Database
from ..query.ast import Query
from ..query.evaluator import Evaluator
from ..query.subquery import subquery


@dataclass(frozen=True)
class PickyJoin:
    """The output of the WhyNot? analysis on ``Q|t``.

    ``left`` is a maximal satisfiable set of atom indices; ``right`` is
    the complement.  ``blocking`` is the atom whose join emptied the
    result (``None`` when the whole query was satisfiable, i.e. no picky
    operator exists).
    """

    left: tuple[int, ...]
    right: tuple[int, ...]
    blocking: Optional[int]


def _satisfiable(query: Query, database: Database, indices: list[int]) -> bool:
    sub = subquery(query, indices)
    return next(Evaluator(sub, database).assignments(), None) is not None


def find_picky_join(query: Query, database: Database) -> PickyJoin:
    """Locate the picky join of *query* against *database*.

    The query is expected to be ``Q|t`` for a missing answer (so the full
    body is unsatisfiable); if it is satisfiable after all, ``blocking``
    is ``None`` and ``right`` is empty.
    """
    n = len(query.atoms)
    if n == 1:
        satisfiable = _satisfiable(query, database, [0])
        if satisfiable:
            return PickyJoin((0,), (), None)
        return PickyJoin((0,), (), 0)

    atom_vars = [a.variables() for a in query.atoms]

    # Seed: the first individually satisfiable atom (a single unsatisfiable
    # atom is itself the picky operator — the data is simply missing).
    seed = None
    for i in range(n):
        if _satisfiable(query, database, [i]):
            seed = i
            break
    if seed is None:
        return PickyJoin((0,), tuple(range(1, n)), 0)

    prefix = [seed]
    prefix_vars = set(atom_vars[seed])
    remaining = [i for i in range(n) if i != seed]
    blocking: Optional[int] = None

    while remaining:
        # Follow a left-deep plan: always join in the atom most connected
        # to the prefix (shared variables), then input order.  The first
        # join that empties the result is the picky operator — we stop
        # there rather than reordering around it, as the plan would.
        candidate = min(
            remaining, key=lambda i: (-len(atom_vars[i] & prefix_vars), i)
        )
        if _satisfiable(query, database, prefix + [candidate]):
            prefix.append(candidate)
            prefix_vars |= atom_vars[candidate]
            remaining.remove(candidate)
        else:
            blocking = candidate
            break

    prefix_set = set(prefix)
    right = tuple(i for i in range(n) if i not in prefix_set)
    return PickyJoin(tuple(sorted(prefix)), right, blocking)
