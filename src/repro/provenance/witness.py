"""Why-provenance of answers: witness sets and tuple frequencies.

Section 2 defines the witness of a valid assignment as the fact set
``α(body(Q))``; the witnesses of an answer are the witnesses of all its
valid assignments.  The deletion algorithm consumes them as a set system
(see :mod:`repro.hitting`), and its greedy heuristic ranks facts by how
many witnesses they occur in.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from ..db.database import Database
from ..db.tuples import Fact
from ..query.ast import Query
from ..query.evaluator import Answer, Evaluator, Witness


def why_provenance(query: Query, database: Database, answer: Answer) -> list[Witness]:
    """All distinct witnesses of *answer* in *database* (``wit(A(t,Q,D))``)."""
    return Evaluator(query, database).witnesses(answer)


def lineage(witnesses: Iterable[Witness]) -> set[Fact]:
    """Union of all witnesses: every fact contributing to the answer."""
    facts: set[Fact] = set()
    for witness in witnesses:
        facts |= witness
    return facts


def fact_frequencies(witnesses: Iterable[Witness]) -> Counter:
    """How many witnesses each fact appears in (the greedy ranking key)."""
    counts: Counter = Counter()
    for witness in witnesses:
        counts.update(witness)
    return counts


def most_frequent_fact(witnesses: Iterable[Witness]) -> Optional[Fact]:
    """The fact hitting the most witnesses (deterministic tie-break)."""
    counts = fact_frequencies(witnesses)
    if not counts:
        return None
    return max(counts, key=lambda f: (counts[f], repr(f)))


def witnesses_containing(witnesses: Iterable[Witness], fact: Fact) -> list[Witness]:
    """The witnesses that contain *fact*."""
    return [w for w in witnesses if fact in w]


def witnesses_without(witnesses: Iterable[Witness], fact: Fact) -> list[Witness]:
    """The witnesses that avoid *fact*."""
    return [w for w in witnesses if fact not in w]


def remove_fact_from_all(witnesses: Iterable[Witness], fact: Fact) -> list[frozenset]:
    """``{s \\ {fact} | s ∈ S}`` — Algorithm 1, line 8."""
    return [frozenset(w - {fact}) for w in witnesses]
