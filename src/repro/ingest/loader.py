"""Loading bare CSVs into :class:`~repro.db.database.Database`.

Unlike :func:`repro.db.io.load_csv` (a *directory* with a
``_schema.json`` sidecar), :func:`load_csv` here takes one headerful
CSV file, sniffs a typed schema from the data, optionally pushes the
table through a seeded :class:`~repro.ingest.noise.NoisePipeline`, and
returns a single-relation database ready for constraint repair.

:func:`table_to_csv_bytes` is the inverse for the *string* table — the
exact bytes :func:`write_csv` puts on disk — so determinism is testable
at the byte level: same table + same noise + same seed ⇒ identical
file.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from ..db.database import Database
from ..db.schema import Schema
from ..db.tuples import Fact
from ..telemetry import TELEMETRY as _TELEMETRY
from .noise import NoisePipeline, Table
from .sniffer import ColumnProfile, coerce_cell, sniffed_relation

PathLike = Union[str, Path]


class IngestError(ValueError):
    """Raised for unusable CSV input (no header, ragged rows)."""


def read_table(path: PathLike) -> tuple[list[str], Table]:
    """``(header, rows)`` of one CSV file; short rows are right-padded.

    Padding (rather than rejecting) matches how spreadsheet exports
    drop trailing empty cells; *long* rows are a real structural error
    and raise :class:`IngestError`.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if not header:
            raise IngestError(f"{path}: empty file (no header row)")
        rows: Table = []
        for number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) > len(header):
                raise IngestError(
                    f"{path}:{number}: row has {len(row)} cells, header has {len(header)}"
                )
            rows.append(row + [""] * (len(header) - len(row)))
    return list(header), rows


def table_to_csv_bytes(header: Sequence[str], rows: Sequence[Sequence[str]]) -> bytes:
    """The canonical CSV serialization (UTF-8, ``\\r\\n``, minimal quoting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue().encode("utf-8")


def write_csv(path: PathLike, header: Sequence[str], rows: Sequence[Sequence[str]]) -> None:
    """Write the canonical serialization to *path*."""
    Path(path).write_bytes(table_to_csv_bytes(header, rows))


def make_noisy_csv(
    source: PathLike,
    destination: PathLike,
    noise: NoisePipeline,
) -> Table:
    """Corrupt *source* through *noise* and write *destination*.

    Returns the noisy table.  Deterministic: the pipeline's seed fully
    decides the output bytes.
    """
    header, rows = read_table(source)
    dirty = noise.apply(rows)
    write_csv(destination, header, dirty)
    return dirty


def load_table(
    relation: str,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> tuple[Database, list[ColumnProfile]]:
    """An in-memory table as a one-relation database (with profiles)."""
    rel_schema, profiles = sniffed_relation(relation, header, rows)
    database = Database(Schema([rel_schema]))
    for row in rows:
        database.insert(Fact(relation, tuple(coerce_cell(cell) for cell in row)))
    return database, profiles


def load_csv(
    path: PathLike,
    *,
    relation: Optional[str] = None,
    noise: Optional[NoisePipeline] = None,
) -> Database:
    """Load one headerful CSV into a single-relation database.

    *relation* defaults to the file stem.  *noise* (a seeded
    :class:`NoisePipeline`) corrupts the table **before** loading —
    handy for generating reproducible dirty workloads without touching
    the file on disk.  Duplicate rows collapse under set semantics.
    """
    csv_path = Path(path)
    name = relation if relation is not None else csv_path.stem
    with _TELEMETRY.span("ingest.load_csv", relation=name):
        header, rows = read_table(csv_path)
        if noise is not None:
            rows = noise.apply(rows)
        database, profiles = load_table(name, header, rows)
    if _TELEMETRY.enabled:
        _TELEMETRY.count("ingest.rows", len(rows))
        _TELEMETRY.count("ingest.facts", len(database))
        for profile in profiles:
            _TELEMETRY.count(f"ingest.columns.{profile.kind}")
    return database


def sniff_csv(path: PathLike) -> list[ColumnProfile]:
    """Just the column profiles of one CSV (no database built)."""
    header, rows = read_table(path)
    return [p for p in sniffed_relation(Path(path).stem, header, rows)[1]]


__all__ = [
    "IngestError",
    "load_csv",
    "load_table",
    "make_noisy_csv",
    "read_table",
    "sniff_csv",
    "table_to_csv_bytes",
    "write_csv",
]
