"""Typed schema sniffing for bare CSV files.

:func:`repro.db.io.load_csv` needs a ``_schema.json`` sidecar; real
dirty CSVs arrive with nothing but a header row.  The sniffer examines
the data and infers a per-column type (``int``, ``float``, ``date``,
``text``) by majority vote over the non-null cells, producing a
:class:`~repro.db.schema.RelationSchema` whose domain tags carry the
inferred kind (``games.date:date``).

Sniffed types are *metadata*: cell coercion stays per-cell
(:func:`coerce_cell`, the same int→float→str ladder the CSV directory
format uses) and deliberately independent of the column verdict, so a
clean table and a noise-polluted copy of it coerce their untouched
cells identically — the property the ingest round-trip tests and the
repair benchmark rely on.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..db.io import coerce_value
from ..db.schema import RelationSchema
from ..db.tuples import Constant

#: Cell spellings treated as missing data (excluded from type voting).
NULL_TOKENS = frozenset({"", "-", "n/a", "na", "null", "none", "nil", "?"})

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
#: ISO dates plus the two ambiguous slash spellings MixedFormats emits.
_DATE_RES = (
    re.compile(r"^\d{4}-\d{2}-\d{2}$"),
    re.compile(r"^\d{2}/\d{2}/\d{4}$"),
    re.compile(r"^\d{4}/\d{2}/\d{2}$"),
)

#: Type lattice, most to least specific; a column takes the most
#: specific kind covering a majority of its non-null cells.
KINDS = ("int", "float", "date", "text")


def is_null(cell: str) -> bool:
    """Whether *cell* spells missing data."""
    return cell.strip().lower() in NULL_TOKENS


def cell_kind(cell: str) -> str:
    """The most specific kind one cell could belong to."""
    text = cell.strip()
    if _INT_RE.match(text):
        return "int"
    if _FLOAT_RE.match(text):
        return "float"
    if any(pattern.match(text) for pattern in _DATE_RES):
        return "date"
    return "text"


@dataclass(frozen=True)
class ColumnProfile:
    """What the sniffer learned about one column."""

    name: str
    kind: str
    total: int
    nulls: int
    #: per-kind cell counts over the non-null cells
    votes: tuple[tuple[str, int], ...]

    @property
    def null_rate(self) -> float:
        return self.nulls / self.total if self.total else 0.0

    def __str__(self) -> str:
        return f"{self.name}: {self.kind} ({self.nulls}/{self.total} null)"


def sniff_column(name: str, cells: Iterable[str], *, majority: float = 0.5) -> ColumnProfile:
    """Profile one column: majority vote over non-null cell kinds.

    ``int`` cells also vote ``float`` (every int parses as a float), so
    a column of ``3`` and ``3.5`` lands on ``float`` rather than
    ``text``.  A column with no clear majority — or all nulls — is
    ``text``.
    """
    votes: Counter[str] = Counter()
    total = 0
    nulls = 0
    for cell in cells:
        total += 1
        if is_null(cell):
            nulls += 1
            continue
        kind = cell_kind(cell)
        votes[kind] += 1
        if kind == "int":
            votes["float"] += 1
    populated = total - nulls
    chosen = "text"
    if populated:
        threshold = populated * majority
        for kind in ("int", "float", "date"):
            if votes.get(kind, 0) > threshold:
                chosen = kind
                break
    return ColumnProfile(
        name=name,
        kind=chosen,
        total=total,
        nulls=nulls,
        votes=tuple(sorted(votes.items())),
    )


def sniff_table(
    header: Sequence[str], rows: Sequence[Sequence[str]], *, majority: float = 0.5
) -> list[ColumnProfile]:
    """Profile every column of a header+rows table."""
    return [
        sniff_column(
            name,
            (row[position] if position < len(row) else "" for row in rows),
            majority=majority,
        )
        for position, name in enumerate(header)
    ]


def sniffed_relation(
    name: str,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    *,
    majority: float = 0.5,
) -> tuple[RelationSchema, list[ColumnProfile]]:
    """A typed :class:`RelationSchema` for the table, plus the profiles.

    Domain tags are ``relation.attribute:kind`` — unique per attribute
    (so the noise fabricators never blend columns) with the inferred
    kind readable off the tag.
    """
    profiles = sniff_table(header, rows, majority=majority)
    schema = RelationSchema(
        name,
        tuple(header),
        tuple(f"{name}.{p.name}:{p.kind}" for p in profiles),
    )
    return schema, profiles


def coerce_cell(cell: str) -> Constant:
    """Per-cell coercion: int, else float, else stripped string.

    Independent of the column's sniffed kind on purpose — see the
    module docstring.
    """
    return coerce_value(cell.strip())


__all__ = [
    "ColumnProfile",
    "KINDS",
    "NULL_TOKENS",
    "cell_kind",
    "coerce_cell",
    "is_null",
    "sniff_column",
    "sniff_table",
    "sniffed_relation",
]
