"""Dirty-CSV ingestion: typed sniffing plus seeded noise models.

The paper's pipeline starts from a database that is *already* loaded
and dirty; this package supplies the missing first mile.  A bare
headerful CSV goes through:

1. :mod:`repro.ingest.sniffer` — per-column type inference (int /
   float / date / text by majority vote) producing a typed
   :class:`~repro.db.schema.RelationSchema`;
2. :mod:`repro.ingest.noise` — optional seeded, composable corruption
   (:class:`TypePollution`, :class:`MixedFormats`, :class:`Outliers`,
   :class:`DuplicateRows`) whose output is byte-deterministic per seed;
3. :mod:`repro.ingest.loader` — :func:`load_csv` materializes the
   (possibly noisy) table as a one-relation
   :class:`~repro.db.database.Database`, ready for
   :func:`repro.constraints.repair`.

See ``docs/constraints.md`` for the end-to-end quickstart.
"""

from .loader import (
    IngestError,
    load_csv,
    load_table,
    make_noisy_csv,
    read_table,
    sniff_csv,
    table_to_csv_bytes,
    write_csv,
)
from .noise import (
    DuplicateRows,
    MixedFormats,
    NoiseModel,
    NoisePipeline,
    Outliers,
    TypePollution,
    standard_noise,
)
from .sniffer import ColumnProfile, cell_kind, coerce_cell, sniff_column, sniff_table, sniffed_relation

__all__ = [
    "ColumnProfile",
    "DuplicateRows",
    "IngestError",
    "MixedFormats",
    "NoiseModel",
    "NoisePipeline",
    "Outliers",
    "TypePollution",
    "cell_kind",
    "coerce_cell",
    "load_csv",
    "load_table",
    "make_noisy_csv",
    "read_table",
    "sniff_column",
    "sniff_csv",
    "sniff_table",
    "sniffed_relation",
    "standard_noise",
    "table_to_csv_bytes",
    "write_csv",
]
