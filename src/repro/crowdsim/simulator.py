"""Discrete-event simulation of crowd latency and parallelism (§6.2).

The paper parallelizes Algorithm 3 — "we verify the correctness of all
tuples in Q(D) at the same time, or post together multiple completion
questions" — and reports wall-clock behaviour for its real crowd ("60%
of the errors ... within an hour ... the whole experiment completed
within 3.5 hours").  This module reproduces that dimension: it replays
an :class:`~repro.oracle.questions.InteractionLog` against a pool of
simulated experts with stochastic response latencies, under either a
sequential or a parallel dispatch policy, and yields the timeline.

Dispatch model
--------------
* every closed question needs ``votes_per_closed`` expert answers (the
  majority-vote sample), open questions one answer plus verification
  already being separate log records;
* **sequential** policy: one question at a time, its votes in parallel
  (the system waits for the sample before moving on);
* **parallel** policy: maximal runs of *independent* questions (same
  question kind — the paper's parallel foreach loops) are dispatched
  together, bounded only by the expert pool.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..oracle.questions import CLOSED_KINDS, Interaction, InteractionLog

#: Samples one expert's response latency (seconds).
LatencySampler = Callable[[random.Random], float]


def lognormal_latency(median_seconds: float = 120.0, sigma: float = 0.8) -> LatencySampler:
    """A heavy-tailed human response-time model (log-normal)."""
    mu = math.log(median_seconds)

    def sample(rng: random.Random) -> float:
        return rng.lognormvariate(mu, sigma)

    return sample


@dataclass(frozen=True)
class AnswerEvent:
    """One expert answering one question once."""

    question_index: int
    expert: int
    start: float
    end: float


@dataclass(frozen=True)
class QuestionCompletion:
    """A question fully answered (all its votes in)."""

    question_index: int
    completed_at: float


@dataclass
class Timeline:
    """The simulated run: per-answer events and per-question completions."""

    answers: list[AnswerEvent] = field(default_factory=list)
    completions: list[QuestionCompletion] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        if not self.completions:
            return 0.0
        return max(c.completed_at for c in self.completions)

    def completion_fraction(self, at_time: float) -> float:
        """Fraction of questions answered by *at_time*."""
        if not self.completions:
            return 1.0
        done = sum(1 for c in self.completions if c.completed_at <= at_time)
        return done / len(self.completions)

    def time_to_fraction(self, fraction: float) -> float:
        """The moment the given fraction of questions was complete."""
        if not self.completions:
            return 0.0
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        ordered = sorted(c.completed_at for c in self.completions)
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[index]


class CrowdSimulator:
    """Replays an interaction log against a simulated expert pool."""

    def __init__(
        self,
        n_experts: int = 10,
        votes_per_closed: int = 3,
        latency: Optional[LatencySampler] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n_experts < 1:
            raise ValueError("need at least one expert")
        if votes_per_closed < 1:
            raise ValueError("need at least one vote per question")
        self.n_experts = n_experts
        self.votes_per_closed = votes_per_closed
        self.latency = latency if latency is not None else lognormal_latency()
        self.rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def replay(
        self, records: Sequence[Interaction] | InteractionLog, parallel: bool = True
    ) -> Timeline:
        """Simulate answering the logged questions in order."""
        if isinstance(records, InteractionLog):
            records = records.records
        batches = self._batches(records, parallel)
        timeline = Timeline()
        # expert availability: (free_at, expert_id)
        experts = [(0.0, i) for i in range(self.n_experts)]
        heapq.heapify(experts)
        clock = 0.0
        index = 0
        for batch in batches:
            batch_completions: list[float] = []
            for record in batch:
                votes = (
                    self.votes_per_closed if record.kind in CLOSED_KINDS else 1
                )
                ends = []
                for _ in range(votes):
                    free_at, expert = heapq.heappop(experts)
                    start = max(free_at, clock)
                    end = start + self.latency(self.rng)
                    heapq.heappush(experts, (end, expert))
                    timeline.answers.append(
                        AnswerEvent(index, expert, start, end)
                    )
                    ends.append(end)
                completed = max(ends)
                timeline.completions.append(QuestionCompletion(index, completed))
                batch_completions.append(completed)
                index += 1
            # The next batch depends on this one's answers.
            if batch_completions:
                clock = max(batch_completions)
        return timeline

    def _batches(
        self, records: Sequence[Interaction], parallel: bool
    ) -> list[list[Interaction]]:
        if not parallel:
            return [[record] for record in records]
        batches: list[list[Interaction]] = []
        for record in records:
            if batches and batches[-1][0].kind is record.kind:
                batches[-1].append(record)
            else:
                batches.append([record])
        return batches


def compare_policies(
    log: InteractionLog,
    n_experts: int = 10,
    votes_per_closed: int = 3,
    median_latency: float = 120.0,
    seed: int = 0,
) -> dict[str, Timeline]:
    """Replay a log under both policies with identical randomness setup."""
    result = {}
    for name, parallel in (("sequential", False), ("parallel", True)):
        simulator = CrowdSimulator(
            n_experts=n_experts,
            votes_per_closed=votes_per_closed,
            latency=lognormal_latency(median_latency),
            rng=random.Random(seed),
        )
        result[name] = simulator.replay(log, parallel=parallel)
    return result
