"""Discrete-event crowd latency/parallelism simulation (Section 6.2)."""

from .simulator import (
    AnswerEvent,
    CrowdSimulator,
    QuestionCompletion,
    Timeline,
    compare_policies,
    lognormal_latency,
)

__all__ = [
    "AnswerEvent",
    "CrowdSimulator",
    "QuestionCompletion",
    "Timeline",
    "compare_policies",
    "lognormal_latency",
]
