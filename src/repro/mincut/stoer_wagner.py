"""Stoer–Wagner global minimum cut.

The Min-Cut split strategy (Section 5.2, Figure 2 left) partitions the
query graph along a global min cut.  The paper cites Edmonds–Karp [20];
we implement the simpler Stoer–Wagner algorithm, which computes a global
minimum cut of an undirected weighted graph in O(V^3) — more than fast
enough for query graphs (a handful of atoms).

The implementation is self-contained; ``networkx`` is only used in the
test suite as an independent oracle.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, TypeVar

Node = TypeVar("Node", bound=Hashable)

#: Edge weights: ``{(u, v): w}`` with undirected semantics.
EdgeWeights = Mapping[tuple, float]


class GraphCutError(ValueError):
    """Raised when a min cut is requested of a graph with < 2 nodes."""


def minimum_cut(nodes: Sequence[Node], edges: EdgeWeights) -> tuple[float, set, set]:
    """Global minimum cut of an undirected weighted graph.

    Parameters
    ----------
    nodes:
        All vertices (isolated vertices allowed).
    edges:
        ``{(u, v): weight}``; order of the pair is irrelevant, duplicate
        orientations are summed.  Weights must be non-negative.

    Returns
    -------
    ``(cut_weight, side_a, side_b)`` — the two sides partition *nodes*.

    Notes
    -----
    Disconnected graphs return a 0-weight cut separating one component.
    """
    node_list = list(dict.fromkeys(nodes))
    if len(node_list) < 2:
        raise GraphCutError("minimum cut needs at least two nodes")

    # Dense adjacency over merged "super nodes"; each super node tracks
    # the original vertices merged into it.
    weights: dict[Node, dict[Node, float]] = {u: {} for u in node_list}
    for (u, v), w in edges.items():
        if u == v:
            continue
        if w < 0:
            raise GraphCutError(f"negative edge weight {w} on ({u!r}, {v!r})")
        if u not in weights or v not in weights:
            raise GraphCutError(f"edge ({u!r}, {v!r}) references unknown node")
        weights[u][v] = weights[u].get(v, 0.0) + w
        weights[v][u] = weights[v].get(u, 0.0) + w

    groups: dict[Node, set[Node]] = {u: {u} for u in node_list}
    best_weight = float("inf")
    best_side: set[Node] = set()
    active = list(node_list)

    while len(active) > 1:
        # Maximum adjacency (minimum cut phase) search.
        start = active[0]
        in_a = {start}
        order = [start]
        candidate_weight = {
            u: weights[start].get(u, 0.0) for u in active if u != start
        }
        while len(order) < len(active):
            # most tightly connected vertex
            next_node = max(
                candidate_weight, key=lambda u: (candidate_weight[u], repr(u))
            )
            order.append(next_node)
            in_a.add(next_node)
            del candidate_weight[next_node]
            for u, w in weights[next_node].items():
                if u in candidate_weight:
                    candidate_weight[u] += w
        s, t = order[-2], order[-1]
        cut_of_phase = sum(weights[t].values())
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_side = set(groups[t])
        # Merge t into s.
        groups[s] |= groups[t]
        for u, w in list(weights[t].items()):
            if u == s:
                continue
            weights[s][u] = weights[s].get(u, 0.0) + w
            weights[u][s] = weights[u].get(s, 0.0) + w
        for u in weights[t]:
            weights[u].pop(t, None)
        del weights[t]
        del groups[t]
        active.remove(t)

    side_a = best_side
    side_b = set(node_list) - side_a
    return best_weight, side_a, side_b
