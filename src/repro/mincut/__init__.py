"""Global minimum cut (used by the Min-Cut query split)."""

from .stoer_wagner import GraphCutError, minimum_cut

__all__ = ["GraphCutError", "minimum_cut"]
