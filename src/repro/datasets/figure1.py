"""The paper's Figure 1 running example, as a concrete instance pair.

Reconstructs the small World Cup fragment of Figure 1: the dirty
database ``D`` (with the dark-gray false tuples — Spain's fabricated
final wins, BRA/NED's wrong continents, Totti's phantom goal) and the
ground truth ``D_G`` (with the light-gray missing tuples — ``Teams(ITA,
EU)`` and the true 1978/1994/1998 finals).

Every worked example of the paper plays out on this pair:

* Example 2.1/2.2 — ``Q1(D) = {(GER), (ESP)}``;
* Example 4.6   — (ESP) is a wrong answer with six witnesses;
* Example 5.4   — (Pirlo) is missing because ``Teams(ITA, EU)`` is;
* Example 6.1   — inserting ``Teams(ITA, EU)`` surfaces the wrong
  answer (Totti) as a side effect.

The test suite asserts each of these narratives verbatim.
"""

from __future__ import annotations

from ..db.database import Database
from ..db.tuples import Fact, facts
from .worldcup import worldcup_schema

#: The six finals that are correct in both D and D_G.
TRUE_FINALS = [
    ("13.07.2014", "GER", "ARG", "Final", "1:0"),
    ("11.07.2010", "ESP", "NED", "Final", "1:0"),
    ("09.07.2006", "ITA", "FRA", "Final", "5:3"),
    ("30.06.2002", "BRA", "GER", "Final", "2:0"),
    ("08.07.1990", "GER", "ARG", "Final", "1:0"),
    ("11.07.1982", "ITA", "GER", "Final", "4:1"),
]

#: The dark-gray Games rows of Figure 1: Spain's fabricated wins.
FALSE_FINALS = [
    ("12.07.1998", "ESP", "NED", "Final", "4:2"),
    ("17.07.1994", "ESP", "NED", "Final", "3:1"),
    ("25.06.1978", "ESP", "NED", "Final", "1:0"),
]

#: What those finals actually were (present only in D_G).
MISSING_FINALS = [
    ("12.07.1998", "FRA", "BRA", "Final", "3:0"),
    ("17.07.1994", "BRA", "ITA", "Final", "3:2"),
    ("25.06.1978", "ARG", "NED", "Final", "3:1"),
]

TRUE_TEAMS = [("GER", "EU"), ("ESP", "EU"), ("FRA", "EU")]
FALSE_TEAMS = [("BRA", "EU"), ("NED", "SA")]
MISSING_TEAMS = [("ITA", "EU"), ("NED", "EU"), ("BRA", "SA"), ("ARG", "SA")]

PLAYERS = [
    ("Mario Goetze", "GER", 1992, "GER"),
    ("Andrea Pirlo", "ITA", 1979, "ITA"),
    ("Francesco Totti", "ITA", 1976, "ITA"),
]

TRUE_GOALS = [("Mario Goetze", "13.07.2014"), ("Andrea Pirlo", "09.07.2006")]
FALSE_GOALS = [("Francesco Totti", "09.07.2006")]

STAGES = [("Final", "KO"), ("Semifinal", "KO"), ("Group", "GROUP")]


def figure1_dirty() -> Database:
    """The dirty database ``D`` of Figure 1."""
    db = Database(worldcup_schema())
    for fact in facts("games", TRUE_FINALS) + facts("games", FALSE_FINALS):
        db.insert(fact)
    for fact in facts("teams", TRUE_TEAMS) + facts("teams", FALSE_TEAMS):
        db.insert(fact)
    for fact in facts("players", PLAYERS):
        db.insert(fact)
    for fact in facts("goals", TRUE_GOALS) + facts("goals", FALSE_GOALS):
        db.insert(fact)
    for fact in facts("stages", STAGES):
        db.insert(fact)
    return db


def figure1_ground_truth() -> Database:
    """The ground truth ``D_G`` of Figure 1."""
    db = Database(worldcup_schema())
    for fact in facts("games", TRUE_FINALS) + facts("games", MISSING_FINALS):
        db.insert(fact)
    for fact in facts("teams", TRUE_TEAMS) + facts("teams", MISSING_TEAMS):
        db.insert(fact)
    for fact in facts("players", PLAYERS):
        db.insert(fact)
    for fact in facts("goals", TRUE_GOALS):
        db.insert(fact)
    for fact in facts("stages", STAGES):
        db.insert(fact)
    return db


#: The Teams(ESP, EU) fact — true, and in every witness of the wrong
#: answer (ESP) (Example 4.6's ``t3``).
ESP_EU = Fact("teams", ("ESP", "EU"))

#: The fact whose absence hides (Pirlo) from Q2's output (Example 5.4).
ITA_EU = Fact("teams", ("ITA", "EU"))
