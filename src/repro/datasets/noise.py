"""Controlled noise injection (Section 7.2 parameters).

The paper dirties the cleaned Soccer ground truth along two axes:

* **degree of data cleanliness** — ``|D ∩ D_G| / (|D| + |D_G − D|)``,
  varied 60%..95%, default 80%;
* **noise skewness** — ``|D − D_G| / (|D − D_G| + |D_G − D|)``, i.e. the
  share of the noise that is *false* tuples (vs. missing true tuples).

:func:`make_dirty` realizes exact (cleanliness, skewness) targets by
solving for the number of facts to fabricate (F) and to remove (M).
:func:`inject_result_errors` instead plants an exact number of wrong and
missing *answers* for a given query (the knob behind Figures 3d-3f),
fabricating plausible witnesses by mutating real ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db.database import Database
from ..db.tuples import Constant, Fact
from ..query.ast import Query, Var
from ..query.evaluator import Answer, Evaluator, instantiate_head, witness_of


class NoiseError(RuntimeError):
    """Raised when a noise target cannot be realized."""


@dataclass(frozen=True)
class NoiseSpec:
    """Target noise levels; defaults are the paper's."""

    cleanliness: float = 0.8
    skewness: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.cleanliness <= 1.0:
            raise ValueError(f"cleanliness {self.cleanliness} outside (0, 1]")
        if not 0.0 <= self.skewness <= 1.0:
            raise ValueError(f"skewness {self.skewness} outside [0, 1]")

    def counts(self, ground_truth_size: int) -> tuple[int, int]:
        """``(false_count, missing_count)`` realizing the targets.

        Derivation: with ``G = |D_G|``, ``T = G - M`` true facts kept,
        cleanliness ``c = T / (G + F)`` and skewness ``s = F / (F + M)``.
        """
        g = ground_truth_size
        c, s = self.cleanliness, self.skewness
        if s >= 1.0:
            missing = 0
            false = round(g * (1 - c) / c)
        elif s <= 0.0:
            false = 0
            missing = round(g * (1 - c))
        else:
            missing = round(g * (1 - c) * (1 - s) / (1 - s + c * s))
            false = round(s / (1 - s) * missing)
        return false, missing


def measure_cleanliness(dirty: Database, ground_truth: Database) -> float:
    """``|D ∩ D_G| / (|D| + |D_G − D|)`` of an actual instance pair."""
    true_kept = sum(1 for f in dirty if f in ground_truth)
    missing = sum(1 for f in ground_truth if f not in dirty)
    return true_kept / (len(dirty) + missing)


def measure_skewness(dirty: Database, ground_truth: Database) -> float:
    """``|D − D_G| / (|D − D_G| + |D_G − D|)``; 1.0 for a clean pair."""
    false = sum(1 for f in dirty if f not in ground_truth)
    missing = sum(1 for f in ground_truth if f not in dirty)
    total = false + missing
    return false / total if total else 1.0


def measure_result_cleanliness(dirty: Database, ground_truth: Database, query) -> float:
    """§7.2's third knob: ``|Q(D) ∩ Q(D_G)| / (|Q(D)| + |Q(D_G) − Q(D)|)``."""
    dirty_answers = Evaluator(query, dirty).answers()
    true_answers = Evaluator(query, ground_truth).answers()
    numerator = len(dirty_answers & true_answers)
    denominator = len(dirty_answers) + len(true_answers - dirty_answers)
    return numerator / denominator if denominator else 1.0


def fabricate_fact(
    ground_truth: Database,
    forbidden: set[Fact],
    rng: random.Random,
    relation: str | None = None,
    max_tries: int = 200,
) -> Fact:
    """A plausible false fact: a real fact with one value swapped for
    another value of the same column, absent from D_G and *forbidden*."""
    facts = sorted(ground_truth, key=repr) if relation is None else sorted(
        ground_truth.facts(relation), key=repr
    )
    if not facts:
        raise NoiseError("cannot fabricate from an empty relation")
    for _ in range(max_tries):
        base = rng.choice(facts)
        position = rng.randrange(base.arity)
        pool = sorted(
            v
            for v in ground_truth.active_domain(base.relation, position)
            if v != base.values[position]
        )
        if not pool:
            continue
        candidate = base.replace(position, rng.choice(pool))
        if candidate not in ground_truth and candidate not in forbidden:
            return candidate
    raise NoiseError("exhausted attempts to fabricate a false fact")


def make_dirty(
    ground_truth: Database,
    spec: NoiseSpec | None = None,
    rng: random.Random | None = None,
    protected: set[Fact] | None = None,
) -> Database:
    """A dirty copy of *ground_truth* hitting the spec's noise targets.

    *protected* facts are never removed (useful to keep auxiliary
    classification relations intact, as the paper's noise targets the
    scraped data rather than static reference tables).
    """
    spec = spec if spec is not None else NoiseSpec()
    rng = rng if rng is not None else random.Random()
    protected = protected if protected is not None else set()

    false_count, missing_count = spec.counts(len(ground_truth))
    dirty = ground_truth.copy()

    removable = sorted((f for f in ground_truth if f not in protected), key=repr)
    if missing_count > len(removable):
        raise NoiseError(
            f"cannot remove {missing_count} facts; only {len(removable)} removable"
        )
    for fact in rng.sample(removable, missing_count):
        dirty.delete(fact)

    added: set[Fact] = set()
    for _ in range(false_count):
        fake = fabricate_fact(ground_truth, added, rng)
        added.add(fake)
        dirty.insert(fake)
    return dirty


# ---------------------------------------------------------------------------
# per-query result errors (Figures 3d-3f)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResultErrors:
    """What :func:`inject_result_errors` actually achieved."""

    dirty: Database
    wrong_answers: frozenset
    missing_answers: frozenset


def inject_result_errors(
    ground_truth: Database,
    query: Query,
    n_wrong: int,
    n_missing: int,
    rng: random.Random | None = None,
    max_tries: int = 400,
) -> ResultErrors:
    """Dirty the database so ``Q(D)`` has exact numbers of wrong and
    missing answers.

    Missing answers are created by deleting a greedy hitting set of each
    victim answer's witnesses; wrong answers by re-binding a head
    variable of a real witness to a value that yields an answer outside
    ``Q(D_G)`` and inserting the mutated facts.
    """
    rng = rng if rng is not None else random.Random()
    dirty = ground_truth.copy()
    true_answers = Evaluator(query, ground_truth).answers()
    if n_missing > len(true_answers):
        raise NoiseError(
            f"query has only {len(true_answers)} true answers; "
            f"cannot make {n_missing} missing"
        )

    _remove_answers(dirty, query, true_answers, n_missing, rng)
    _add_wrong_answers(dirty, ground_truth, query, true_answers, n_wrong, rng, max_tries)

    final = Evaluator(query, dirty).answers()
    return ResultErrors(
        dirty=dirty,
        wrong_answers=frozenset(final - true_answers),
        missing_answers=frozenset(true_answers - final),
    )


def _remove_answers(
    dirty: Database,
    query: Query,
    true_answers: set[Answer],
    n_missing: int,
    rng: random.Random,
) -> None:
    from ..hitting.hitting_set import greedy_hitting_set

    if n_missing <= 0:
        return
    # Victims with few witnesses first: removing them needs fewer fact
    # deletions.  Within a victim we delete a frequency-greedy hitting
    # set of its witnesses — typically one shared fact (a team's Teams
    # tuple, say) kills all witnesses at once, which is exactly the
    # paper's missing-data scenario (Example 5.4: Teams(ITA, EU) missing
    # makes every Italian player disappear from the output).
    evaluator = Evaluator(query, dirty)
    candidates = sorted(true_answers, key=repr)
    rng.shuffle(candidates)
    candidates.sort(key=lambda a: len(evaluator.witnesses(a)))
    for victim in candidates:
        missing_now = true_answers - Evaluator(query, dirty).answers()
        if len(missing_now) >= n_missing:
            break
        witnesses = Evaluator(query, dirty).witnesses(victim)
        if not witnesses:
            continue  # already gone as a side effect of an earlier removal
        for fact in greedy_hitting_set([frozenset(w) for w in witnesses]):
            dirty.delete(fact)


def _add_wrong_answers(
    dirty: Database,
    ground_truth: Database,
    query: Query,
    true_answers: set[Answer],
    n_wrong: int,
    rng: random.Random,
    max_tries: int,
) -> None:
    head_vars = [t for t in query.head if isinstance(t, Var)]
    if n_wrong > 0 and not head_vars:
        raise NoiseError("cannot fabricate wrong answers for a boolean query")
    base_assignments = list(Evaluator(query, ground_truth).assignments())
    if n_wrong > 0 and not base_assignments:
        raise NoiseError("query has no true witnesses to mutate")

    created: set[Answer] = set()
    missing_target = true_answers - Evaluator(query, dirty).answers()
    tries = 0
    while len(created) < n_wrong:
        tries += 1
        if tries > max_tries:
            raise NoiseError(
                f"could not fabricate {n_wrong} wrong answers "
                f"(made {len(created)} in {max_tries} tries)"
            )
        base = dict(rng.choice(base_assignments))
        variable = rng.choice(head_vars)
        # Replacement pool: values this variable takes in some column.
        pool = _variable_domain(ground_truth, query, variable)
        pool.discard(base[variable])
        if not pool:
            continue
        base[variable] = rng.choice(sorted(pool, key=repr))
        if not all(e.holds(base) for e in query.inequalities):
            continue
        answer = instantiate_head(query, base)
        if answer in true_answers or answer in created:
            continue
        # Insert the mutated witness facts tentatively; reject mutations
        # whose facts conspire to create *additional* wrong answers, so
        # the requested count is hit exactly.
        inserted = [
            fact for fact in witness_of(query, base) if fact not in dirty
        ]
        for fact in inserted:
            dirty.insert(fact)
        answers_now = Evaluator(query, dirty).answers()
        wrong_now = answers_now - true_answers
        missing_now = true_answers - answers_now
        # Reject mutations that create extra wrong answers or resurrect
        # answers we deliberately made missing.
        if wrong_now != created | {answer} or missing_now != missing_target:
            for fact in inserted:
                dirty.delete(fact)
            continue
        created.add(answer)


def _variable_domain(
    database: Database, query: Query, variable: Var
) -> set[Constant]:
    values: set[Constant] = set()
    for atom in query.atoms:
        for position, term in enumerate(atom.terms):
            if term == variable:
                values |= database.active_domain(atom.relation, position)
    return values
