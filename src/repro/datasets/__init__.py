"""Datasets: World Cup and DBGroup generators, controlled noise."""

from .dbgroup import DBGroupConfig, dbgroup_database, dbgroup_schema, seeded_errors
from .figure1 import figure1_dirty, figure1_ground_truth
from .noise import (
    NoiseError,
    NoiseSpec,
    ResultErrors,
    fabricate_fact,
    inject_result_errors,
    make_dirty,
    measure_cleanliness,
    measure_result_cleanliness,
    measure_skewness,
)
from .worldcup import (
    FINALS,
    KNOCKOUT_STAGES,
    TEAMS,
    THIRD_PLACE,
    WorldCupConfig,
    inject_fake_champions,
    worldcup_database,
    worldcup_partition_spec,
    worldcup_schema,
    worldcup_years,
)

__all__ = [
    "DBGroupConfig",
    "FINALS",
    "KNOCKOUT_STAGES",
    "NoiseError",
    "NoiseSpec",
    "ResultErrors",
    "TEAMS",
    "THIRD_PLACE",
    "WorldCupConfig",
    "dbgroup_database",
    "dbgroup_schema",
    "fabricate_fact",
    "figure1_dirty",
    "figure1_ground_truth",
    "inject_fake_champions",
    "inject_result_errors",
    "make_dirty",
    "measure_cleanliness",
    "measure_result_cleanliness",
    "measure_skewness",
    "seeded_errors",
    "worldcup_database",
    "worldcup_partition_spec",
    "worldcup_schema",
    "worldcup_years",
]
