"""The DBGroup database (Section 7.1).

The paper's first case study is its own research-group database (~2000
tuples, maintained for a decade) with four grant-report queries.  We
synthesize a database of the same shape — members, publications,
authorship, invited events, conference travel, grant topics — plus the
small auxiliary relations that make the report queries expressible as
conjunctive queries.  :func:`seeded_errors` plants the kind of mistakes
the paper discovered (wrong keynote, wrongly-funded members, missing
trips), so the case-study experiment can measure what QOCO finds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..db.database import Database
from ..db.edits import Edit, delete, insert
from ..db.schema import RelationSchema, Schema
from ..db.tuples import Fact

GRANTS = ("ERC", "ISF", "BSF")
TOPICS_BY_GRANT = {
    "ERC": ("crowdsourcing", "data-cleaning", "provenance", "crowd-mining"),
    "ISF": ("query-optimization", "streams", "graphs"),
    "BSF": ("privacy", "probabilistic-data", "text"),
}
STATUSES = ("student", "postdoc", "faculty", "alumni")
CURRENT_STATUSES = ("student", "postdoc", "faculty")
EVENT_KINDS = ("keynote", "tutorial", "talk")
INVITED_KINDS = ("keynote", "tutorial")
CONFERENCES = ("SIGMOD", "VLDB", "PODS", "ICDE", "EDBT", "ICDT", "WWW", "KDD")
RECENT_YEARS = (2013, 2014, 2015)
ALL_YEARS = tuple(range(2005, 2016))

_MEMBER_NAMES = (
    "Noa Levi", "Amir Cohen", "Yael Mizrahi", "Eitan Peretz", "Tamar Avram",
    "Omer Biton", "Shira Katz", "Daniel Friedman", "Maya Golan", "Ron Azulay",
    "Lior Shapiro", "Dana Harel", "Gil Oren", "Rivka Segal", "Adam Weiss",
    "Talia Mor", "Yoav Barak", "Michal Sela", "Nadav Stern", "Efrat Gabay",
    "Boaz Rosen", "Hila Navon", "Oren Malka", "Sigal Dagan", "Erez Tal",
    "Anat Sharon", "Uri Shaked", "Vered Alon", "Yaniv Doron", "Orly Paz",
    "Itay Zohar", "Gali Baruch", "Moti Eden", "Nurit Carmel", "Asaf Regev",
    "Dorit Yaron", "Eli Brosh", "Ruth Amit", "Tomer Gavish", "Shani Lavi",
    "Ariel Kedem", "Bat-El Noy", "Ohad Zur", "Keren Raviv", "Nir Dekel",
    "Yifat Argaman", "Roi Ashur", "Smadar Ilan", "Tal Binyamin", "Gadi Naor",
)

_TITLE_WORDS = (
    "Scalable", "Interactive", "Crowd-Powered", "Declarative", "Adaptive",
    "Provenance-Aware", "Query-Driven", "Incremental", "Distributed",
    "Probabilistic", "Efficient", "Principled",
)
_TITLE_OBJECTS = (
    "Data Cleaning", "View Maintenance", "Query Answering", "Entity Resolution",
    "Schema Matching", "Crowd Mining", "Stream Processing", "Graph Analytics",
    "Data Integration", "Why-Not Explanations", "Top-k Search", "Data Repair",
)


def dbgroup_schema() -> Schema:
    """The DBGroup database schema (members, publications, events...)."""
    return Schema(
        [
            RelationSchema(
                "members", ("name", "status", "funding"), ("member", "status", "grant")
            ),
            RelationSchema(
                "publications", ("pid", "title", "year", "topic"),
                ("pid", "title", "year", "topic"),
            ),
            RelationSchema("authored", ("member", "pid"), ("member", "pid")),
            RelationSchema(
                "events", ("eid", "kind", "topic", "year", "member"),
                ("eid", "kind", "topic", "year", "member"),
            ),
            RelationSchema(
                "trips", ("member", "conference", "year", "sponsor"),
                ("member", "conference", "year", "grant"),
            ),
            RelationSchema("topics", ("topic", "grant"), ("topic", "grant")),
            RelationSchema("event_kinds", ("kind", "cls"), ("kind", "cls")),
            RelationSchema("statuses", ("status", "cls"), ("status", "cls")),
            RelationSchema("recent_years", ("year",), ("year",)),
        ]
    )


@dataclass(frozen=True)
class DBGroupConfig:
    seed: int = 11
    n_members: int = 50
    n_publications: int = 420
    n_events: int = 160
    n_trips: int = 260
    max_authors: int = 3


def dbgroup_database(config: DBGroupConfig | None = None) -> Database:
    """Generate the ground-truth DBGroup database (~2000 tuples)."""
    config = config if config is not None else DBGroupConfig()
    rng = random.Random(config.seed)
    db = Database(dbgroup_schema())

    # Auxiliary classification relations.
    for grant, topics in TOPICS_BY_GRANT.items():
        for topic in topics:
            db.insert(Fact("topics", (topic, grant)))
    for kind in EVENT_KINDS:
        cls = "invited" if kind in INVITED_KINDS else "contributed"
        db.insert(Fact("event_kinds", (kind, cls)))
    for status in STATUSES:
        cls = "current" if status in CURRENT_STATUSES else "past"
        db.insert(Fact("statuses", (status, cls)))
    for year in RECENT_YEARS:
        db.insert(Fact("recent_years", (year,)))

    # Members.
    members = list(_MEMBER_NAMES[: config.n_members])
    all_topics = [t for topics in TOPICS_BY_GRANT.values() for t in topics]
    for name in members:
        status = rng.choice(STATUSES)
        funding = rng.choice(GRANTS + ("none",))
        db.insert(Fact("members", (name, status, funding)))

    # Publications and authorship.
    for pid in range(1, config.n_publications + 1):
        title = f"{rng.choice(_TITLE_WORDS)} {rng.choice(_TITLE_OBJECTS)} {pid}"
        year = rng.choice(ALL_YEARS)
        topic = rng.choice(all_topics)
        db.insert(Fact("publications", (f"p{pid}", title, year, topic)))
        for author in rng.sample(members, rng.randint(1, config.max_authors)):
            db.insert(Fact("authored", (author, f"p{pid}")))

    # Events (keynotes / tutorials / talks).
    for eid in range(1, config.n_events + 1):
        kind = rng.choice(EVENT_KINDS)
        topic = rng.choice(all_topics)
        year = rng.choice(ALL_YEARS)
        member = rng.choice(members)
        db.insert(Fact("events", (f"e{eid}", kind, topic, year, member)))

    # Conference travel.
    seen_trips: set[tuple] = set()
    while len(seen_trips) < config.n_trips:
        trip = (
            rng.choice(members),
            rng.choice(CONFERENCES),
            rng.choice(ALL_YEARS),
            rng.choice(GRANTS),
        )
        if trip in seen_trips:
            continue
        seen_trips.add(trip)
        db.insert(Fact("trips", trip))

    return db


def seeded_errors(
    ground_truth: Database, seed: int = 23
) -> tuple[Database, list[Edit]]:
    """A dirty copy of the DBGroup DB with the Section 7.1 error profile.

    Plants: 1 fabricated keynote and 4 members wrongly recorded as
    ERC-funded (wrong answers), and removes 1 keynote, 1 member's ERC
    funding record and 5 ERC-sponsored recent trips (missing answers).
    Returns the dirty database and the corruption edits applied to the
    ground truth (so tests can check QOCO undoes exactly these).
    """
    rng = random.Random(seed)
    dirty = ground_truth.copy()
    corruption: list[Edit] = []

    def apply(edit: Edit) -> None:
        if edit.apply(dirty):
            corruption.append(edit)

    # Wrong: a keynote that never happened, on an ERC topic in a recent year.
    apply(insert(Fact("events", ("e999", "keynote", "crowdsourcing", 2014, "Noa Levi"))))

    # Wrong: four members wrongly marked as ERC-funded (their true funding
    # rows removed, false ERC rows inserted => both a wrong and a missing
    # answer source for Q2).
    candidates = sorted(
        f for f in ground_truth.facts("members") if f.values[2] != "ERC"
    )
    rng.shuffle(candidates)
    for member_fact in candidates[:4]:
        name, status, funding = member_fact.values
        apply(delete(member_fact))
        apply(insert(Fact("members", (name, status, "ERC"))))

    # Missing: a real invited keynote dropped.
    keynotes = sorted(
        f
        for f in ground_truth.facts("events")
        if f.values[1] == "keynote" and f.values[3] in RECENT_YEARS
    )
    if keynotes:
        apply(delete(keynotes[0]))

    # Missing: one member's ERC funding row dropped entirely.
    erc_members = sorted(
        f
        for f in ground_truth.facts("members")
        if f.values[2] == "ERC" and f.values[1] in CURRENT_STATUSES
    )
    if erc_members:
        apply(delete(erc_members[0]))

    # Missing: five ERC-sponsored recent student trips dropped.
    student_names = {
        f.values[0] for f in ground_truth.facts("members") if f.values[1] == "student"
    }
    erc_trips = sorted(
        f
        for f in ground_truth.facts("trips")
        if f.values[3] == "ERC"
        and f.values[2] in RECENT_YEARS
        and f.values[0] in student_names
    )
    for trip in erc_trips[:5]:
        apply(delete(trip))

    return dirty, corruption
