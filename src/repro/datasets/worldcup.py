"""The Soccer (World Cup) database generator (Section 7.2).

The paper scraped ~5000 tuples about World Cup games from soccer sites,
cleaned them against FIFA's official data to obtain a ground truth, and
then injected controlled noise.  We reproduce the *ground truth* side
with a deterministic generator that embeds the real World Cup finals and
third-place games (1930-2014) and synthesizes a coherent surrounding
tournament (semifinals consistent with the podium, quarterfinals, round
of 16, group games), players, goal scorers consistent with every score,
and club affiliations — at the same scale.

Relations
---------
* ``games(date, winner, runner_up, stage, result)``
* ``teams(team, continent)``
* ``players(name, team, birth_year, birth_place)``
* ``goals(player, date)``
* ``clubs(player, club)``
* ``stages(stage, phase)`` — lets conjunctive queries select "knockout"
  without disjunction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..db.database import Database
from ..db.schema import RelationSchema, Schema
from ..db.tuples import Fact

# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

STAGE_FINAL = "Final"
STAGE_THIRD = "ThirdPlace"
STAGE_SEMI = "Semifinal"
STAGE_QUARTER = "Quarterfinal"
STAGE_ROUND16 = "Round16"
STAGE_GROUP = "Group"

KNOCKOUT_STAGES = (
    STAGE_FINAL,
    STAGE_THIRD,
    STAGE_SEMI,
    STAGE_QUARTER,
    STAGE_ROUND16,
)


def worldcup_schema() -> Schema:
    """The Soccer database schema."""
    return Schema(
        [
            RelationSchema(
                "games",
                ("date", "winner", "runner_up", "stage", "result"),
                ("date", "team", "team", "stage", "result"),
            ),
            RelationSchema("teams", ("team", "continent"), ("team", "continent")),
            RelationSchema(
                "players",
                ("name", "team", "birth_year", "birth_place"),
                ("player", "team", "year", "team"),
            ),
            RelationSchema("goals", ("player", "date"), ("player", "date")),
            RelationSchema("clubs", ("player", "club"), ("player", "club")),
            RelationSchema("stages", ("stage", "phase"), ("stage", "phase")),
        ]
    )


# ---------------------------------------------------------------------------
# embedded real data
# ---------------------------------------------------------------------------

#: (year, date, winner, runner-up, regulation score "w:r").  For finals
#: decided on penalties we follow the paper's own convention (its Figure 1
#: records the 2006 final as "5:3") and store the deciding score.
FINALS: tuple[tuple[int, str, str, str, str], ...] = (
    (1930, "30.07.1930", "URU", "ARG", "4:2"),
    (1934, "10.06.1934", "ITA", "TCH", "2:1"),
    (1938, "19.06.1938", "ITA", "HUN", "4:2"),
    (1950, "16.07.1950", "URU", "BRA", "2:1"),
    (1954, "04.07.1954", "GER", "HUN", "3:2"),
    (1958, "29.06.1958", "BRA", "SWE", "5:2"),
    (1962, "17.06.1962", "BRA", "TCH", "3:1"),
    (1966, "30.07.1966", "ENG", "GER", "4:2"),
    (1970, "21.06.1970", "BRA", "ITA", "4:1"),
    (1974, "07.07.1974", "GER", "NED", "2:1"),
    (1978, "25.06.1978", "ARG", "NED", "3:1"),
    (1982, "11.07.1982", "ITA", "GER", "3:1"),
    (1986, "29.06.1986", "ARG", "GER", "3:2"),
    (1990, "08.07.1990", "GER", "ARG", "1:0"),
    (1994, "17.07.1994", "BRA", "ITA", "3:2"),
    (1998, "12.07.1998", "FRA", "BRA", "3:0"),
    (2002, "30.06.2002", "BRA", "GER", "2:0"),
    (2006, "09.07.2006", "ITA", "FRA", "5:3"),
    (2010, "11.07.2010", "ESP", "NED", "1:0"),
    (2014, "13.07.2014", "GER", "ARG", "1:0"),
)

#: (year, winner, loser, score) of the third-place games (none in 1930/1950).
THIRD_PLACE: tuple[tuple[int, str, str, str], ...] = (
    (1934, "GER", "AUT", "3:2"),
    (1938, "BRA", "SWE", "4:2"),
    (1954, "AUT", "URU", "3:1"),
    (1958, "FRA", "GER", "6:3"),
    (1962, "CHI", "YUG", "1:0"),
    (1966, "POR", "URS", "2:1"),
    (1970, "GER", "URU", "1:0"),
    (1974, "POL", "BRA", "1:0"),
    (1978, "BRA", "ITA", "2:1"),
    (1982, "POL", "FRA", "3:2"),
    (1986, "FRA", "BEL", "4:2"),
    (1990, "ITA", "ENG", "2:1"),
    (1994, "SWE", "BUL", "4:0"),
    (1998, "CRO", "NED", "2:1"),
    (2002, "TUR", "KOR", "3:2"),
    (2006, "GER", "POR", "3:1"),
    (2010, "GER", "URU", "3:2"),
    (2014, "NED", "BRA", "3:0"),
)

#: Team -> confederation continent tag (paper's Teams relation).
TEAMS: dict[str, str] = {
    # Europe
    "GER": "EU", "ITA": "EU", "FRA": "EU", "ESP": "EU", "NED": "EU",
    "ENG": "EU", "POR": "EU", "SWE": "EU", "HUN": "EU", "TCH": "EU",
    "AUT": "EU", "POL": "EU", "BEL": "EU", "CRO": "EU", "BUL": "EU",
    "ROU": "EU", "SUI": "EU", "DEN": "EU", "URS": "EU", "YUG": "EU",
    "SCO": "EU", "IRL": "EU", "GRE": "EU", "TUR": "EU", "RUS": "EU",
    "CZE": "EU", "SRB": "EU", "UKR": "EU", "NOR": "EU", "WAL": "EU",
    # South America
    "URU": "SA", "ARG": "SA", "BRA": "SA", "CHI": "SA", "COL": "SA",
    "PER": "SA", "PAR": "SA", "ECU": "SA", "BOL": "SA",
    # North/Central America
    "USA": "NA", "MEX": "NA", "CRC": "NA", "HON": "NA", "JAM": "NA",
    # Asia
    "KOR": "AS", "JPN": "AS", "KSA": "AS", "IRN": "AS", "AUS": "AS",
    "CHN": "AS", "PRK": "AS",
    # Africa
    "CMR": "AF", "NGA": "AF", "GHA": "AF", "SEN": "AF", "CIV": "AF",
    "MAR": "AF", "TUN": "AF", "EGY": "AF", "RSA": "AF", "ALG": "AF",
    # Oceania
    "NZL": "OC",
}

#: A few real players pinned to their teams; the rest are synthesized.
FAMOUS_PLAYERS: tuple[tuple[str, str, int, str], ...] = (
    ("Mario Goetze", "GER", 1992, "GER"),
    ("Miroslav Klose", "GER", 1978, "POL"),
    ("Thomas Mueller", "GER", 1989, "GER"),
    ("Andrea Pirlo", "ITA", 1979, "ITA"),
    ("Francesco Totti", "ITA", 1976, "ITA"),
    ("Marco Materazzi", "ITA", 1973, "ITA"),
    ("Zinedine Zidane", "FRA", 1972, "FRA"),
    ("Andres Iniesta", "ESP", 1984, "ESP"),
    ("Pele", "BRA", 1940, "BRA"),
    ("Ronaldo", "BRA", 1976, "BRA"),
    ("Diego Maradona", "ARG", 1960, "ARG"),
    ("Lionel Messi", "ARG", 1987, "ARG"),
    ("Arjen Robben", "NED", 1984, "NED"),
    ("Johan Cruyff", "NED", 1947, "NED"),
)

#: Scorers we pin to famous finals: date -> list of (player, team).
PINNED_GOALS: dict[str, tuple[tuple[str, str], ...]] = {
    "13.07.2014": (("Mario Goetze", "GER"),),
    "11.07.2010": (("Andres Iniesta", "ESP"),),
    "09.07.2006": (("Marco Materazzi", "ITA"), ("Zinedine Zidane", "FRA")),
}

_FIRST_NAMES = (
    "Luis", "Carlos", "Diego", "Juan", "Pedro", "Miguel", "Sergio", "Pablo",
    "Hans", "Karl", "Fritz", "Stefan", "Lukas", "Jonas", "Felix", "Max",
    "Marco", "Paolo", "Luca", "Andrea", "Giorgio", "Fabio", "Matteo",
    "Pierre", "Michel", "Antoine", "Hugo", "Olivier", "Thierry", "Karim",
    "Johan", "Dirk", "Ruud", "Wesley", "Daley", "Sven", "Erik", "Lars",
    "Tomas", "Pavel", "Jan", "Marek", "Andrzej", "Piotr", "Zoltan",
    "James", "Harry", "Gary", "Bobby", "Frank", "Steven", "Ashley",
    "Kwame", "Samuel", "Didier", "Yaya", "Sadio", "Ahmed", "Omar",
    "Hiro", "Kenji", "Min-ho", "Ji-sung", "Wei", "Brad", "Tim",
)

_LAST_NAMES = (
    "Silva", "Santos", "Gomez", "Fernandez", "Rodriguez", "Lopez", "Perez",
    "Gonzalez", "Martinez", "Torres", "Ramos", "Vargas", "Castro",
    "Mueller", "Schmidt", "Weber", "Wagner", "Becker", "Hoffmann",
    "Rossi", "Bianchi", "Ferrari", "Romano", "Esposito", "Conti",
    "Dubois", "Moreau", "Laurent", "Girard", "Bonnet", "Rousseau",
    "Jansen", "Visser", "Smit", "Meijer", "Mulder", "Bakker",
    "Novak", "Horvat", "Kovacs", "Nagy", "Kowalski", "Nowak",
    "Johnson", "Williams", "Brown", "Taylor", "Wilson", "Davies",
    "Mensah", "Diallo", "Toure", "Keita", "Diop", "Traore",
    "Tanaka", "Sato", "Kim", "Park", "Chen", "Wang", "Okafor",
)

_CLUBS = (
    "Real Madrid", "Barcelona", "Atletico", "Bayern", "Dortmund", "Schalke",
    "Juventus", "Milan", "Inter", "Roma", "Napoli", "PSG", "Marseille",
    "Lyon", "Ajax", "PSV", "Feyenoord", "Porto", "Benfica", "Sporting",
    "Manchester United", "Liverpool", "Arsenal", "Chelsea", "Tottenham",
    "Boca Juniors", "River Plate", "Flamengo", "Santos FC", "Penarol",
    "Nacional", "Galatasaray", "Fenerbahce", "Celtic", "Rangers",
    "Anderlecht", "Club Brugge", "Red Star", "Dinamo", "Legia",
)


@dataclass(frozen=True)
class WorldCupConfig:
    """Generator knobs; defaults target the paper's ~5000 tuples.

    ``replicas`` scales the *fact* relations (games/goals) toward the
    million-tuple regime used by the sharding benchmarks: replica ``r``
    clones every game and goal with its year shifted by
    ``r * replica_year_stride``, so each replica is a fresh block of
    blocking-key (year) values and partitioning stays balanced.  The
    dimension relations (teams/players/clubs/stages) are shared across
    replicas, exactly like the replicated relations of a
    :class:`~repro.shard.partition.PartitionSpec`.
    """

    seed: int = 7
    players_per_team: int = 23
    group_games_per_cup: int = 12
    clubs_per_player: float = 1.2
    replicas: int = 1
    replica_year_stride: int = 100


def _parse_score(result: str) -> tuple[int, int]:
    """Regulation goals from a result string ("3:1", "1:1 (5:3p)")."""
    head = result.split(" ")[0]
    left, right = head.split(":")
    return int(left), int(right)


def _date(day: int, month: int, year: int) -> str:
    return f"{day:02d}.{month:02d}.{year}"


class _Generator:
    def __init__(self, config: WorldCupConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.schema = worldcup_schema()
        self.db = Database(self.schema)
        self.players_by_team: dict[str, list[str]] = {}
        self.player_birth: dict[str, int] = {}

    # -- helpers -----------------------------------------------------------
    def _score(self, max_margin: int = 3) -> str:
        loser = self.rng.randint(0, 2)
        winner = loser + self.rng.randint(1, max_margin)
        return f"{winner}:{loser}"

    def _participants(self, year: int) -> list[str]:
        """A deterministic per-year pool of participating teams."""
        pool = sorted(TEAMS)
        year_rng = random.Random(self.config.seed * 10_000 + year)
        fixed: set[str] = set()
        for y, _date_, winner, runner_up, _score_ in FINALS:
            if y == year:
                fixed |= {winner, runner_up}
        for y, winner, loser, _score_ in THIRD_PLACE:
            if y == year:
                fixed |= {winner, loser}
        size = 16 if year < 1982 else 24 if year < 1998 else 32
        others = [t for t in pool if t not in fixed]
        year_rng.shuffle(others)
        chosen = sorted(fixed) + others[: max(0, size - len(fixed))]
        return chosen

    # -- relations ---------------------------------------------------------
    def teams(self) -> None:
        for team, continent in sorted(TEAMS.items()):
            self.db.insert(Fact("teams", (team, continent)))

    def stages(self) -> None:
        for stage in KNOCKOUT_STAGES:
            self.db.insert(Fact("stages", (stage, "KO")))
        self.db.insert(Fact("stages", (STAGE_GROUP, "GROUP")))

    def players(self) -> None:
        used: set[str] = set()
        for name, team, birth_year, birth_place in FAMOUS_PLAYERS:
            self.db.insert(Fact("players", (name, team, birth_year, birth_place)))
            self.players_by_team.setdefault(team, []).append(name)
            self.player_birth[name] = birth_year
            used.add(name)
        for team in sorted(TEAMS):
            roster = self.players_by_team.setdefault(team, [])
            while len(roster) < self.config.players_per_team:
                name = (
                    f"{self.rng.choice(_FIRST_NAMES)} {self.rng.choice(_LAST_NAMES)}"
                )
                if name in used:
                    continue
                used.add(name)
                birth_year = self.rng.randint(1905, 1995)
                birth_place = (
                    team if self.rng.random() < 0.9 else self.rng.choice(sorted(TEAMS))
                )
                self.db.insert(Fact("players", (name, team, birth_year, birth_place)))
                roster.append(name)
                self.player_birth[name] = birth_year

    def clubs(self) -> None:
        for team in sorted(self.players_by_team):
            for player in self.players_by_team[team]:
                count = 1 + (1 if self.rng.random() < self.config.clubs_per_player - 1 else 0)
                for club in self.rng.sample(_CLUBS, count):
                    self.db.insert(Fact("clubs", (player, club)))

    def games(self) -> None:
        for year, date, winner, runner_up, score in FINALS:
            self._add_game(date, winner, runner_up, STAGE_FINAL, score, year)
            self._tournament_rounds(year, date, winner, runner_up)

    def replicate(self) -> None:
        """Clone games/goals into shifted-year replicas (see config)."""
        if self.config.replicas <= 1:
            return
        base_games = sorted(self.db.facts("games"), key=repr)
        base_goals = sorted(self.db.facts("goals"), key=repr)
        for replica in range(1, self.config.replicas):
            offset = replica * self.config.replica_year_stride
            for f in base_games:
                self.db.insert(
                    Fact("games", (_shift_year(f.values[0], offset), *f.values[1:]))
                )
            for f in base_goals:
                self.db.insert(
                    Fact("goals", (f.values[0], _shift_year(f.values[1], offset)))
                )

    def _tournament_rounds(self, year: int, final_date: str, winner: str, runner_up: str) -> None:
        day, month, _ = (int(p) for p in final_date.split("."))
        third = next(
            ((w, l, s) for y, w, l, s in THIRD_PLACE if y == year), None
        )
        semi_losers: list[str] = []
        if third is not None:
            third_winner, third_loser, third_score = third
            self._add_game(
                _offset_date(final_date, -1), third_winner, third_loser,
                STAGE_THIRD, third_score, year,
            )
            semi_losers = [third_winner, third_loser]
        participants = self._participants(year)
        # Semifinals consistent with the podium.
        if semi_losers:
            self._add_game(
                _offset_date(final_date, -4), winner, semi_losers[0],
                STAGE_SEMI, self._score(), year,
            )
            self._add_game(
                _offset_date(final_date, -3), runner_up, semi_losers[1],
                STAGE_SEMI, self._score(), year,
            )
        semifinalists = [winner, runner_up] + semi_losers
        # Quarterfinals: semifinalists beat four other participants.
        others = [t for t in participants if t not in semifinalists]
        self.rng.shuffle(others)
        qf_losers = others[:4]
        for i, qf_winner in enumerate(semifinalists[: len(qf_losers)]):
            self._add_game(
                _offset_date(final_date, -7 - i), qf_winner, qf_losers[i],
                STAGE_QUARTER, self._score(), year,
            )
        # Round of 16 from 1986 on.
        r16_pool = others[4:]
        if year >= 1986 and len(r16_pool) >= 4:
            quarterfinalists = semifinalists + qf_losers
            r16_losers = r16_pool[:8]
            for i, r16_loser in enumerate(r16_losers):
                r16_winner = quarterfinalists[i % len(quarterfinalists)]
                self._add_game(
                    _offset_date(final_date, -12 - i), r16_winner, r16_loser,
                    STAGE_ROUND16, self._score(), year,
                )
        # A sample of (decisive) group games.
        for i in range(self.config.group_games_per_cup):
            home, away = self.rng.sample(participants, 2)
            self._add_game(
                _offset_date(final_date, -20 - i), home, away,
                STAGE_GROUP, self._score(2), year,
            )

    def _add_game(
        self, date: str, winner: str, runner_up: str, stage: str, score: str, year: int
    ) -> None:
        self.db.insert(Fact("games", (date, winner, runner_up, stage, score)))
        self._add_goals(date, winner, runner_up, score, year)

    def _add_goals(self, date: str, winner: str, runner_up: str, score: str, year: int) -> None:
        winner_goals, loser_goals = _parse_score(score)
        pinned = PINNED_GOALS.get(date, ())
        for player, _team in pinned:
            self.db.insert(Fact("goals", (player, date)))
        pinned_by_team: dict[str, int] = {}
        for _player, team in pinned:
            pinned_by_team[team] = pinned_by_team.get(team, 0) + 1
        for team, count in ((winner, winner_goals), (runner_up, loser_goals)):
            remaining = count - pinned_by_team.get(team, 0)
            for _ in range(max(0, remaining)):
                scorer = self._pick_scorer(team, year)
                if scorer is not None:
                    self.db.insert(Fact("goals", (scorer, date)))

    def _pick_scorer(self, team: str, year: int) -> str | None:
        roster = [
            p
            for p in self.players_by_team.get(team, [])
            if 17 <= year - self.player_birth[p] <= 40
        ]
        if not roster:
            roster = self.players_by_team.get(team, [])
        if not roster:
            return None
        return self.rng.choice(roster)


def _shift_year(date: str, offset: int) -> str:
    """Shift a DD.MM.YYYY date string by whole years."""
    day, month, year = (int(p) for p in date.split("."))
    return _date(day, month, year + offset)


def _offset_date(date: str, delta_days: int) -> str:
    """Shift a DD.MM.YYYY date by a few days (calendar-naive but stable)."""
    day, month, year = (int(p) for p in date.split("."))
    day += delta_days
    while day < 1:
        month -= 1
        if month < 1:
            month = 12
            year -= 1
        day += 30
    while day > 30:
        month += 1
        if month > 12:
            month = 1
            year += 1
        day -= 30
    return _date(day, month, year)


def worldcup_constraints():
    """Keys and foreign keys the Soccer ground truth satisfies.

    Used by the §9 constraint-cleaning extension: the generated data has
    one game per date, one continent per team, unique player names, and
    referential integrity from games/goals/players/clubs into their
    parent relations.
    """
    from ..db.constraints import ConstraintSet, ForeignKey, Key

    return ConstraintSet(
        keys=[
            Key("games", (0,)),     # date identifies the game
            Key("teams", (0,)),     # one continent per team
            Key("players", (0,)),   # unique player names
        ],
        foreign_keys=[
            ForeignKey("games", (1,), "teams", (0,)),    # winner is a team
            ForeignKey("games", (2,), "teams", (0,)),    # runner-up is a team
            ForeignKey("games", (3,), "stages", (0,)),   # stage classified
            ForeignKey("players", (1,), "teams", (0,)),  # player's team exists
            ForeignKey("goals", (0,), "players", (0,)),  # scorer is a player
            ForeignKey("goals", (1,), "games", (0,)),    # goal in a real game
            ForeignKey("clubs", (0,), "players", (0,)),  # club member exists
        ],
    )


def worldcup_database(config: WorldCupConfig | None = None) -> Database:
    """Generate the ground-truth Soccer database (~5000 tuples at the
    default config; scale with ``replicas``)."""
    generator = _Generator(config if config is not None else WorldCupConfig())
    generator.teams()
    generator.stages()
    generator.players()
    generator.clubs()
    generator.games()
    generator.replicate()
    return generator.db


def worldcup_years(config: WorldCupConfig | None = None) -> list[int]:
    """Every tournament year in the (possibly replicated) database."""
    config = config if config is not None else WorldCupConfig()
    base = [year for year, *_ in FINALS]
    return [
        year + replica * config.replica_year_stride
        for replica in range(max(1, config.replicas))
        for year in base
    ]


def worldcup_partition_spec():
    """The natural blocking-key spec for Soccer: partition the fact
    relations (games/goals) by tournament year; the dimension relations
    (teams/players/clubs/stages) replicate."""
    from ..shard.partition import KeySpec, PartitionSpec

    return PartitionSpec(
        (KeySpec("games", 0, "year"), KeySpec("goals", 1, "year"))
    )


def inject_fake_champions(
    database: Database, years: Iterable[int], *, games_per_year: int = 2
) -> int:
    """Deletion-only noise for the sharding benchmarks.

    For each chosen *year*, invent a team ``ZZ<year>`` and record it
    winning ``games_per_year`` knockout games that never happened.  Every
    injected fact is false under the pristine ground truth, and every
    witness it creates is confined to *year*'s shard (the fake team's
    ``teams`` tuple replicates everywhere but only joins fake games of
    its own year), so a sharded clean removes exactly the same facts a
    single-process clean does — the digest-equality property the
    benchmark asserts.  Returns the number of inserted facts.
    """
    inserted = 0
    for year in years:
        fake = f"ZZ{year}"
        inserted += database.insert(Fact("teams", (fake, "EU")))
        for i in range(games_per_year):
            date = _date(1 + i, 1, year)
            inserted += database.insert(
                Fact("games", (date, fake, "BRA", STAGE_FINAL, "9:0"))
            )
    return inserted
