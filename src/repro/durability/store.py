"""The durability store: one directory = one durable server instance.

Layout::

    <dir>/checkpoint.json   latest full snapshot (atomic tmp+rename)
    <dir>/wal.log           commit/charge records since that snapshot

Two record types flow through the WAL, both carrying a monotone ``seq``
that continues across checkpoints:

* ``commit`` — one committed cleaning session: its serialized edit
  sequence, tenant id, ledger delta (question-unit cost), and the
  answer-board verdicts published since the previous record;
* ``charge`` — a ledger delta from a session that spent crowd answers
  but did not commit (conflict-replay exhaustion, a raised run), plus
  any board verdicts it published — paid answers stay durable even when
  the edits do not land.

Checkpoints subsume the log: :meth:`DurabilityStore.checkpoint` writes
the snapshot to a temp file, fsyncs it, atomically renames it over
``checkpoint.json``, fsyncs the directory, and only then truncates the
WAL.  A crash between the rename and the truncate leaves stale records
(``seq <= checkpoint.seq``) in the log; recovery skips them by sequence
number, so every crash window is covered.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..telemetry import TELEMETRY as _TELEMETRY
from .codec import canonical_json
from .wal import (
    SYNC_POLICIES,
    WalError,
    WalReadResult,
    WalWriter,
    encode_record,
    read_wal,
)

PathLike = Union[str, Path]

CHECKPOINT_FILE = "checkpoint.json"
CHECKPOINT_TMP = "checkpoint.json.tmp"
WAL_FILE = "wal.log"


class DurabilityError(RuntimeError):
    """A durability-layer failure (bad directory, corrupt checkpoint, ...)."""


def _fsync_directory(directory: Path) -> None:
    """Make a rename inside *directory* durable (POSIX best effort)."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


class DurabilityStore:
    """Owns the checkpoint file and the WAL of one durable directory."""

    def __init__(
        self,
        directory: PathLike,
        *,
        sync: str = "always",
        resume: bool = False,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise WalError(f"unknown sync policy {sync!r}; pick one of {SYNC_POLICIES}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = sync
        self.checkpoint_path = self.directory / CHECKPOINT_FILE
        self.wal_path = self.directory / WAL_FILE
        if not resume and self.has_state():
            raise DurabilityError(
                f"{self.directory} already holds durable state; recover it with "
                "repro.durability.recover(...) / recover_manager(...) instead of "
                "attaching a fresh server"
            )
        self._writer = WalWriter(self.wal_path, sync=sync)
        self.last_seq = 0
        self.checkpoint_seq = 0
        self.records_since_checkpoint = 0
        #: optional log-shipping hooks (:mod:`repro.service.replication`):
        #: ``on_append(seq, frame_bytes, record)`` fires after the record
        #: is durable locally (per the sync policy), with the exact framed
        #: bytes that hit the log; ``on_checkpoint(seq)`` fires after a
        #: checkpoint has subsumed (and truncated) the log.
        self.on_append: Optional[Any] = None
        self.on_checkpoint: Optional[Any] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """Does this directory already hold a checkpoint or log records?"""
        if self.checkpoint_path.exists():
            return True
        return self.wal_path.exists() and self.wal_path.stat().st_size > 0

    def read_log(self) -> WalReadResult:
        return read_wal(self.wal_path)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        self.last_seq += 1
        return self.last_seq

    def append(self, record: dict[str, Any]) -> int:
        """Append one sequenced record; durable per the sync policy."""
        if "seq" not in record:
            record = dict(record, seq=self.next_seq())
        else:
            self.last_seq = max(self.last_seq, int(record["seq"]))
        frame = encode_record(record)
        size = self._writer.append_frame(frame)
        self.records_since_checkpoint += 1
        if _TELEMETRY.enabled:
            _TELEMETRY.count(f"durability.{record.get('type', 'unknown')}_records")
        if self.on_append is not None:
            self.on_append(int(record["seq"]), frame, record)
        return size

    def sync(self) -> None:
        self._writer.sync()

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def write_checkpoint(self, state: dict[str, Any]) -> int:
        """Atomically replace the snapshot, then truncate the WAL.

        *state* is the serialized server state (database, ledger, board);
        the store stamps it with ``seq`` so recovery knows which log
        suffix is still relevant.  Returns the checkpoint size in bytes.
        """
        start = time.perf_counter()
        document = dict(state)
        document.setdefault("type", "checkpoint")
        document["seq"] = self.last_seq
        payload = canonical_json(document).encode("utf-8")
        tmp_path = self.directory / CHECKPOINT_TMP
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if self.sync_policy != "never":
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.checkpoint_path)
        if self.sync_policy != "never":
            _fsync_directory(self.directory)
        # the snapshot is durable: the log records it subsumes may go
        self._writer.truncate()
        self.checkpoint_seq = self.last_seq
        self.records_since_checkpoint = 0
        if self.on_checkpoint is not None:
            self.on_checkpoint(self.checkpoint_seq)
        if _TELEMETRY.enabled:
            _TELEMETRY.count("durability.checkpoints")
            _TELEMETRY.observe("durability.checkpoint_bytes", len(payload))
            _TELEMETRY.observe(
                "durability.checkpoint_s", time.perf_counter() - start
            )
        return len(payload)

    def read_checkpoint(self) -> Optional[dict[str, Any]]:
        """The latest snapshot, or ``None`` for a virgin directory."""
        if not self.checkpoint_path.exists():
            return None
        try:
            with open(self.checkpoint_path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DurabilityError(
                f"corrupt checkpoint at {self.checkpoint_path}: {error}"
            ) from error
        if not isinstance(document, dict) or document.get("type") != "checkpoint":
            raise DurabilityError(
                f"{self.checkpoint_path} is not a durability checkpoint"
            )
        return document

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "DurabilityStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = [
    "CHECKPOINT_FILE",
    "DurabilityError",
    "DurabilityStore",
    "WAL_FILE",
]
